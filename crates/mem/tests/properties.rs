//! Property-based tests for the memory substrates, checking them against
//! simple reference models.

use std::collections::{HashMap, HashSet, VecDeque};

use proptest::prelude::*;

use pimdsm_mem::{AttractionMemory, CacheCfg, KeyedQueue, SetAssocCache};

#[derive(Debug, Clone)]
enum QueueOp {
    PushBack(u16),
    PopFront,
    Remove(u16),
    MoveToBack(u16),
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u16..64).prop_map(QueueOp::PushBack),
        Just(QueueOp::PopFront),
        (0u16..64).prop_map(QueueOp::Remove),
        (0u16..64).prop_map(QueueOp::MoveToBack),
    ]
}

proptest! {
    /// KeyedQueue behaves exactly like a VecDeque that forbids duplicates.
    #[test]
    fn keyed_queue_matches_reference(ops in proptest::collection::vec(queue_op(), 0..200)) {
        let mut q = KeyedQueue::new();
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                QueueOp::PushBack(k) => {
                    if !model.contains(&k) {
                        model.push_back(k);
                        q.push_back(k);
                    }
                }
                QueueOp::PopFront => {
                    prop_assert_eq!(q.pop_front(), model.pop_front());
                }
                QueueOp::Remove(k) => {
                    let had = model.iter().position(|&x| x == k).map(|i| {
                        model.remove(i);
                    });
                    prop_assert_eq!(q.remove(&k), had.is_some());
                }
                QueueOp::MoveToBack(k) => {
                    let had = model.iter().position(|&x| x == k).map(|i| {
                        model.remove(i);
                        model.push_back(k);
                    });
                    prop_assert_eq!(q.move_to_back(&k), had.is_some());
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.front().copied(), model.front().copied());
            let order: Vec<u16> = q.iter().copied().collect();
            let model_order: Vec<u16> = model.iter().copied().collect();
            prop_assert_eq!(order, model_order);
        }
    }

    /// The cache never exceeds its capacity, keeps at most `ways` lines
    /// per set, and everything it reports present was inserted and not
    /// since evicted or removed.
    #[test]
    fn cache_respects_geometry(
        lines in proptest::collection::vec(0u64..512, 1..300),
        ways in 1u32..8,
        sets in 1u64..16,
        hashed in any::<bool>(),
    ) {
        let mut cfg = CacheCfg::new(sets * ways as u64 * 64, ways, 6);
        if hashed {
            cfg = cfg.with_hashed_index();
        }
        let mut cache = SetAssocCache::new(cfg);
        let mut live: HashSet<u64> = HashSet::new();
        for line in lines {
            if let Some(v) = cache.insert(line, (), |_| 0) {
                prop_assert!(live.remove(&v.line), "evicted a line that was not live");
            }
            live.insert(line);
            prop_assert!(live.len() <= (sets * ways as u64) as usize);
            prop_assert_eq!(cache.len(), live.len());
            prop_assert!(cache.contains(line), "inserted line must be resident");
        }
        for (line, _) in cache.iter() {
            prop_assert!(live.contains(&line));
        }
    }

    /// Cache get/remove agree with a reference map filtered by residency.
    #[test]
    fn cache_payloads_match_reference(
        ops in proptest::collection::vec((0u64..64, 0u32..1000), 1..200)
    ) {
        // Large enough that nothing is ever evicted: pure map semantics.
        let mut cache = SetAssocCache::new(CacheCfg::new(64 * 64, 4, 6));
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (line, val) in ops {
            prop_assert!(cache.insert(line, val, |_| 0).is_none());
            model.insert(line, val);
            prop_assert_eq!(cache.peek(line), model.get(&line));
        }
        for (line, val) in &model {
            prop_assert_eq!(cache.get(*line).map(|v| *v), Some(*val));
        }
    }

    /// The attraction memory keeps at most `onchip` lines on chip, and
    /// every resident line has a residency.
    #[test]
    fn attraction_memory_onchip_bound(
        lines in proptest::collection::vec(0u64..256, 1..200),
        onchip in 0usize..16,
    ) {
        let mut am: AttractionMemory<u8> =
            AttractionMemory::new(CacheCfg::new(64 * 64, 4, 6).with_hashed_index(), onchip);
        for line in lines {
            am.insert(line, 0, |_| 0);
            am.touch(line);
        }
        let mut on = 0;
        let mut resident = 0;
        for (l, _) in am.iter() {
            resident += 1;
            match am.residency(l) {
                Some(pimdsm_mem::Residency::OnChip) => on += 1,
                Some(pimdsm_mem::Residency::OffChip) => {}
                None => prop_assert!(false, "resident line without residency"),
            }
        }
        prop_assert!(on <= onchip);
        prop_assert_eq!(resident, am.len());
    }
}
