//! Bandwidth-limited DRAM device model.

use pimdsm_engine::{Cycle, Timeline};

/// A DRAM module with a fixed access latency and a shared data port of
/// `bytes_per_cycle` bandwidth (Table 1: 32 B per CPU clock).
///
/// Contention is modeled on the data port: concurrent accesses serialize
/// their transfer time, so a burst of line fills sees queueing delay on top
/// of the raw latency.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::Dram;
///
/// let mut d = Dram::new(37, 32);
/// // 64-byte line: 2 transfer cycles after the 37-cycle access.
/// assert_eq!(d.access(0, 64), 39);
/// // A second access right behind it queues on the port.
/// assert_eq!(d.access(0, 64), 41);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    latency: Cycle,
    bytes_per_cycle: u64,
    port: Timeline,
    accesses: u64,
}

impl Dram {
    /// Creates a DRAM with `latency` cycles to first data and a port moving
    /// `bytes_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: Cycle, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "DRAM needs nonzero bandwidth");
        Dram {
            latency,
            bytes_per_cycle,
            port: Timeline::new(),
            accesses: 0,
        }
    }

    /// Performs an access of `bytes` starting at `now`; returns the
    /// completion cycle.
    #[inline]
    pub fn access(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.accesses += 1;
        let transfer = bytes.div_ceil(self.bytes_per_cycle);
        let start = self.port.acquire(now, transfer);
        start + self.latency + transfer
    }

    /// Raw access latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Busy cycles on the data port (for utilization reports).
    pub fn port_busy(&self) -> Cycle {
        self.port.busy_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_is_latency_bound() {
        let mut d = Dram::new(37, 32);
        assert_eq!(d.access(100, 64), 139);
        assert_eq!(d.accesses(), 1);
    }

    #[test]
    fn port_contention_serializes_transfers() {
        let mut d = Dram::new(10, 32);
        let t1 = d.access(0, 128); // 4 transfer cycles
        let t2 = d.access(0, 128);
        assert_eq!(t1, 14);
        assert_eq!(t2, 18); // queued 4 cycles behind the first transfer
        assert_eq!(d.port_busy(), 8);
    }

    #[test]
    fn large_transfer_dominates_latency() {
        let mut d = Dram::new(10, 1);
        // 64 bytes at 1 B/cycle: 10-cycle latency + 64 transfer cycles.
        assert_eq!(d.access(0, 64), 74);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        Dram::new(10, 0);
    }
}
