//! The paper's tagged local memory organized as a cache.
//!
//! Section 2.1.1: each line of the node's local memory (both the on-chip
//! DRAM and the off-chip extension) carries state and an address tag, and
//! the whole local memory behaves as a large set-associative cache — an
//! *attraction memory*. The on- and off-chip portions hold exclusive data;
//! when the processor references a line found off-chip, that line swaps
//! with an on-chip line at memory-line grain (managed in hardware as in
//! Saulsbury et al.).
//!
//! [`AttractionMemory`] composes a [`SetAssocCache`] (tags + state) with a
//! global LRU of *on-chip* lines: touching an off-chip resident line
//! promotes it on-chip, demoting the least-recently-used on-chip line. The
//! caller charges the corresponding latency (the paper's 37 vs 57-cycle
//! local round trips).

use crate::addr::Line;
use crate::cache::{CacheCfg, Evicted, SetAssocCache};
use crate::keyed_queue::KeyedQueue;

/// Where a resident line was found, before any promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// In the on-chip DRAM portion (fast: 37-cycle round trip in Table 1).
    OnChip,
    /// In the off-chip DRAM extension (57-cycle round trip in Table 1).
    OffChip,
}

/// Result of inserting a line into an [`AttractionMemory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmInsert<S> {
    /// A line evicted from the node's memory entirely (set conflict), which
    /// the coherence protocol must now handle (write back, inject, ...).
    pub victim: Option<Evicted<S>>,
}

/// Tagged local memory managed as a cache, with an on-/off-chip split.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::{AttractionMemory, CacheCfg, Residency};
///
/// // 4 lines total, only 2 fit on chip.
/// let cfg = CacheCfg::new(256, 4, 6);
/// let mut am: AttractionMemory<u8> = AttractionMemory::new(cfg, 2);
/// am.insert(0, 0, |_| 0);
/// am.insert(1, 1, |_| 0);
/// am.insert(2, 2, |_| 0); // pushes line 0 off chip
/// assert_eq!(am.touch(0), Some(Residency::OffChip));
/// // ... and touching it swapped it back on chip:
/// assert_eq!(am.touch(0), Some(Residency::OnChip));
/// ```
#[derive(Debug, Clone)]
pub struct AttractionMemory<S> {
    cache: SetAssocCache<S>,
    onchip: KeyedQueue<Line>,
    onchip_cap: usize,
    swaps: u64,
}

impl<S> AttractionMemory<S> {
    /// Creates an attraction memory with `cfg` total geometry of which at
    /// most `onchip_lines` lines are resident on chip at a time.
    pub fn new(cfg: CacheCfg, onchip_lines: usize) -> Self {
        AttractionMemory {
            cache: SetAssocCache::new(cfg),
            onchip: KeyedQueue::new(),
            onchip_cap: onchip_lines,
            swaps: 0,
        }
    }

    /// Total geometry (on-chip + off-chip).
    pub fn cfg(&self) -> &CacheCfg {
        self.cache.cfg()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// On-chip capacity in lines.
    pub fn onchip_capacity(&self) -> usize {
        self.onchip_cap
    }

    /// Number of on-chip/off-chip swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// References a line: if resident, returns where it was found and
    /// promotes it on chip (swapping with the LRU on-chip line if needed).
    pub fn touch(&mut self, line: Line) -> Option<Residency> {
        self.cache.get(line)?;
        if self.onchip.move_to_back(&line) {
            Some(Residency::OnChip)
        } else {
            self.promote(line);
            self.swaps += 1;
            Some(Residency::OffChip)
        }
    }

    fn promote(&mut self, line: Line) {
        if self.onchip_cap == 0 {
            return;
        }
        if self.onchip.len() >= self.onchip_cap {
            self.onchip.pop_front();
        }
        self.onchip.push_back(line);
    }

    /// Payload access without promotion or LRU update.
    pub fn peek(&self, line: Line) -> Option<&S> {
        self.cache.peek(line)
    }

    /// Mutable payload access without promotion or LRU update.
    pub fn peek_mut(&mut self, line: Line) -> Option<&mut S> {
        self.cache.peek_mut(line)
    }

    /// Whether a line is resident (on or off chip).
    pub fn contains(&self, line: Line) -> bool {
        self.cache.contains(line)
    }

    /// Whether the set `line` maps to has a free way.
    pub fn has_room_for(&self, line: Line) -> bool {
        self.cache.has_room_for(line)
    }

    /// Where a line currently resides, without promoting it.
    pub fn residency(&self, line: Line) -> Option<Residency> {
        if !self.cache.contains(line) {
            None
        } else if self.onchip.contains(&line) {
            Some(Residency::OnChip)
        } else {
            Some(Residency::OffChip)
        }
    }

    /// Returns what inserting `line` would evict, without changing state.
    pub fn peek_victim(&self, line: Line, victim_class: impl Fn(&S) -> u32) -> Option<(Line, &S)> {
        self.cache.peek_victim(line, victim_class)
    }

    /// Inserts a line (landing on chip), evicting a set conflict victim if
    /// necessary. `victim_class` ranks eviction candidates as in
    /// [`SetAssocCache::insert`].
    pub fn insert(
        &mut self,
        line: Line,
        state: S,
        victim_class: impl Fn(&S) -> u32,
    ) -> AmInsert<S> {
        let victim = self.cache.insert(line, state, victim_class);
        if let Some(ev) = &victim {
            self.onchip.remove(&ev.line);
        }
        if !self.onchip.contains(&line) {
            self.promote(line);
        }
        AmInsert { victim }
    }

    /// Removes a line, returning its payload.
    pub fn remove(&mut self, line: Line) -> Option<S> {
        let s = self.cache.remove(line);
        if s.is_some() {
            self.onchip.remove(&line);
        }
        s
    }

    /// Iterates over all resident `(line, payload)` pairs in the tag
    /// arena's deterministic order (alias of
    /// [`AttractionMemory::iter_deterministic`]).
    pub fn iter(&self) -> impl Iterator<Item = (Line, &S)> {
        self.iter_deterministic()
    }

    /// Iterates over all resident `(line, payload)` pairs in the tag
    /// arena's deterministic index order (see
    /// [`SetAssocCache::iter_deterministic`]).
    pub fn iter_deterministic(&self) -> impl Iterator<Item = (Line, &S)> {
        self.cache.iter_deterministic()
    }

    /// Drains every resident line in place, in deterministic tag-arena
    /// order (used when a node is reconfigured from P to D and its memory
    /// reverts to plain DRAM). The returned iterator borrows the memory
    /// and removes lines as it yields them; no buffer proportional to
    /// residency is ever materialized. Dropping it mid-way finishes the
    /// drain, so the memory is always left empty.
    pub fn drain_all(&mut self) -> crate::cache::DrainAll<'_, S> {
        while self.onchip.pop_front().is_some() {}
        self.cache.drain_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn am(total_lines: u64, ways: u32, onchip: usize) -> AttractionMemory<u32> {
        AttractionMemory::new(CacheCfg::new(total_lines * 64, ways, 6), onchip)
    }

    #[test]
    fn miss_on_absent_line() {
        let mut m = am(8, 4, 4);
        assert_eq!(m.touch(3), None);
        assert_eq!(m.residency(3), None);
    }

    #[test]
    fn insert_lands_on_chip() {
        let mut m = am(8, 4, 4);
        m.insert(1, 10, |_| 0);
        assert_eq!(m.residency(1), Some(Residency::OnChip));
        assert_eq!(m.touch(1), Some(Residency::OnChip));
    }

    #[test]
    fn lru_demotion_to_off_chip() {
        let mut m = am(8, 8, 2);
        m.insert(0, 0, |_| 0);
        m.insert(1, 1, |_| 0);
        m.insert(2, 2, |_| 0); // demotes 0
        assert_eq!(m.residency(0), Some(Residency::OffChip));
        assert_eq!(m.residency(1), Some(Residency::OnChip));
        assert_eq!(m.residency(2), Some(Residency::OnChip));
    }

    #[test]
    fn touch_swaps_off_chip_line_in() {
        let mut m = am(8, 8, 2);
        m.insert(0, 0, |_| 0);
        m.insert(1, 1, |_| 0);
        m.insert(2, 2, |_| 0);
        assert_eq!(m.swaps(), 0);
        assert_eq!(m.touch(0), Some(Residency::OffChip));
        assert_eq!(m.swaps(), 1);
        assert_eq!(m.residency(0), Some(Residency::OnChip));
        // The LRU on-chip line (1) was demoted to make room.
        assert_eq!(m.residency(1), Some(Residency::OffChip));
    }

    #[test]
    fn eviction_removes_from_onchip_tracking() {
        // 1 set, 2 ways, both on chip.
        let mut m = am(2, 2, 2);
        m.insert(0, 0, |_| 0);
        m.insert(1, 1, |_| 0);
        let r = m.insert(2, 2, |_| 0);
        let victim = r.victim.unwrap();
        assert_eq!(victim.line, 0);
        assert_eq!(m.residency(victim.line), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn zero_onchip_capacity_everything_off_chip() {
        let mut m = am(4, 4, 0);
        m.insert(0, 0, |_| 0);
        assert_eq!(m.residency(0), Some(Residency::OffChip));
        assert_eq!(m.touch(0), Some(Residency::OffChip));
        // No promotion possible.
        assert_eq!(m.residency(0), Some(Residency::OffChip));
    }

    #[test]
    fn remove_cleans_up() {
        let mut m = am(4, 4, 4);
        m.insert(0, 7, |_| 0);
        assert_eq!(m.remove(0), Some(7));
        assert_eq!(m.remove(0), None);
        assert_eq!(m.residency(0), None);
        assert!(m.is_empty());
    }

    #[test]
    fn drain_all_empties_memory() {
        let mut m = am(8, 4, 2);
        for i in 0..6 {
            m.insert(i, i as u32, |_| 0);
        }
        let drained: Vec<_> = m.drain_all().collect();
        assert_eq!(drained.len(), 6);
        assert!(m.is_empty());
        assert_eq!(m.residency(0), None);
    }

    #[test]
    fn drain_all_yields_lines_in_place_and_in_arena_order() {
        let mut m = am(8, 4, 2);
        for i in 0..6 {
            m.insert(i, (i * 10) as u32, |_| 0);
        }
        // Expected order is the tag arena's deterministic iteration order
        // — the same order the old Vec-materializing drain produced.
        let expected: Vec<(Line, u32)> = m.iter().map(|(l, s)| (l, *s)).collect();
        let drained: Vec<(Line, u32)> = m.drain_all().collect();
        assert_eq!(drained, expected);
        assert!(m.is_empty());
    }

    #[test]
    fn abandoned_drain_still_empties_memory() {
        let mut m = am(8, 4, 2);
        for i in 0..6 {
            m.insert(i, i as u32, |_| 0);
        }
        {
            let mut d = m.drain_all();
            let _ = d.next();
        }
        assert!(m.is_empty());
        assert_eq!(m.residency(1), None);
        // The memory is reusable afterwards.
        m.insert(3, 33, |_| 0);
        assert_eq!(m.peek(3), Some(&33));
        assert_eq!(m.residency(3), Some(Residency::OnChip));
    }
}
