//! Generic set-associative cache with LRU and victim-class replacement.

use std::fmt;

use crate::addr::Line;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::CacheCfg;
///
/// let l1 = CacheCfg::new(8 * 1024, 1, 6); // 8 KiB direct-mapped, 64 B lines
/// assert_eq!(l1.num_sets(), 128);
/// assert_eq!(l1.capacity_lines(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCfg {
    size_bytes: u64,
    ways: u32,
    line_shift: u32,
    hashed_index: bool,
}

impl CacheCfg {
    /// Creates a geometry of `size_bytes` total capacity, `ways`
    /// associativity and `1 << line_shift`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a whole, nonzero number of sets of
    /// whole lines.
    pub fn new(size_bytes: u64, ways: u32, line_shift: u32) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        let line = 1u64 << line_shift;
        assert!(
            size_bytes >= line * ways as u64,
            "cache of {size_bytes} B cannot hold one set of {ways} x {line} B lines"
        );
        assert_eq!(
            size_bytes % (line * ways as u64),
            0,
            "cache size must be a whole number of sets"
        );
        CacheCfg {
            size_bytes,
            ways,
            line_shift,
            hashed_index: false,
        }
    }

    /// Enables index hashing: the set is selected by a multiplicative
    /// hash of the line number instead of its low bits. SRAM caches use
    /// plain indexing, but memory-as-a-cache designs hash the index so
    /// page-aligned array bases do not stack into the same sets.
    pub fn with_hashed_index(mut self) -> Self {
        self.hashed_index = true;
        self
    }

    /// Whether the index is hashed.
    pub fn hashed_index(&self) -> bool {
        self.hashed_index
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size is `1 << line_shift()` bytes.
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / ((1u64 << self.line_shift) * self.ways as u64)
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> u64 {
        self.size_bytes >> self.line_shift
    }
}

#[derive(Debug, Clone)]
struct Entry<S> {
    line: Line,
    state: S,
    last_use: u64,
}

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<S> {
    /// Line number of the victim.
    pub line: Line,
    /// Its payload at eviction time.
    pub state: S,
}

/// A set-associative cache mapping line numbers to a payload `S`.
///
/// The payload is the per-line coherence state (plus whatever the protocol
/// wants to remember). Lines not present are simply absent — there is no
/// "invalid" payload.
///
/// Replacement is LRU within the victim class chosen by the caller: on
/// insertion the caller supplies a `victim_class` function mapping payloads
/// to a priority (higher = evict first), which is how the COMA policy
/// "replace invalid, then shared non-master, then master" is expressed.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::{CacheCfg, SetAssocCache};
///
/// let mut c: SetAssocCache<char> = SetAssocCache::new(CacheCfg::new(256, 2, 6));
/// assert!(c.insert(0, 'a', |_| 0).is_none());
/// assert!(c.insert(2, 'b', |_| 0).is_none()); // same set (2 sets, stride 2)
/// let victim = c.insert(4, 'c', |_| 0).unwrap(); // set full: LRU evicted
/// assert_eq!(victim.line, 0);
/// assert_eq!(victim.state, 'a');
/// ```
#[derive(Clone)]
pub struct SetAssocCache<S> {
    cfg: CacheCfg,
    sets: Vec<Vec<Entry<S>>>,
    tick: u64,
    len: usize,
}

impl<S: fmt::Debug> fmt::Debug for SetAssocCache<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("cfg", &self.cfg)
            .field("resident_lines", &self.len)
            .finish()
    }
}

impl<S> SetAssocCache<S> {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheCfg) -> Self {
        let n = cfg.num_sets() as usize;
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            sets.push(Vec::with_capacity(cfg.ways() as usize));
        }
        SetAssocCache {
            cfg,
            sets,
            tick: 0,
            len: 0,
        }
    }

    /// The cache geometry.
    pub fn cfg(&self) -> &CacheCfg {
        &self.cfg
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set_index(&self, line: Line) -> usize {
        let n = self.cfg.num_sets();
        if self.cfg.hashed_index() {
            (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24) as usize % n as usize
        } else {
            (line % n) as usize
        }
    }

    /// Looks up a line, updating LRU. Returns the payload if present.
    pub fn get(&mut self, line: Line) -> Option<&mut S> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        self.sets[set].iter_mut().find(|e| e.line == line).map(|e| {
            e.last_use = tick;
            &mut e.state
        })
    }

    /// Looks up a line without touching LRU.
    pub fn peek(&self, line: Line) -> Option<&S> {
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|e| e.line == line)
            .map(|e| &e.state)
    }

    /// Mutable lookup without touching LRU.
    pub fn peek_mut(&mut self, line: Line) -> Option<&mut S> {
        let set = self.set_index(line);
        self.sets[set]
            .iter_mut()
            .find(|e| e.line == line)
            .map(|e| &mut e.state)
    }

    /// Whether a line is resident.
    pub fn contains(&self, line: Line) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts (or overwrites) a line, evicting if the set is full.
    ///
    /// `victim_class` ranks potential victims: the victim is the line with
    /// the *highest* class, ties broken by LRU. Returns the evicted line,
    /// if any. Inserting an already-resident line overwrites its payload
    /// and returns `None`.
    pub fn insert(
        &mut self,
        line: Line,
        state: S,
        victim_class: impl Fn(&S) -> u32,
    ) -> Option<Evicted<S>> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.cfg.ways() as usize;
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];

        if let Some(e) = set.iter_mut().find(|e| e.line == line) {
            e.state = state;
            e.last_use = tick;
            return None;
        }

        let evicted = if set.len() == ways {
            // Pick victim: highest class, then least recently used.
            let (vi, _) = set
                .iter()
                .enumerate()
                .max_by_key(|(_, e)| (victim_class(&e.state), std::cmp::Reverse(e.last_use)))
                .expect("set is full, so non-empty");
            let victim = set.swap_remove(vi);
            self.len -= 1;
            Some(Evicted {
                line: victim.line,
                state: victim.state,
            })
        } else {
            None
        };

        set.push(Entry {
            line,
            state,
            last_use: tick,
        });
        self.len += 1;
        evicted
    }

    /// Returns what [`SetAssocCache::insert`] of `line` would evict right
    /// now, without changing any state. `None` means the insertion would
    /// be eviction-free (free way, or the line is already resident).
    pub fn peek_victim(&self, line: Line, victim_class: impl Fn(&S) -> u32) -> Option<(Line, &S)> {
        let set = &self.sets[self.set_index(line)];
        if set.len() < self.cfg.ways() as usize || set.iter().any(|e| e.line == line) {
            return None;
        }
        set.iter()
            .max_by_key(|e| (victim_class(&e.state), std::cmp::Reverse(e.last_use)))
            .map(|e| (e.line, &e.state))
    }

    /// Removes a line, returning its payload if it was resident.
    pub fn remove(&mut self, line: Line) -> Option<S> {
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|e| e.line == line)?;
        self.len -= 1;
        Some(set.swap_remove(pos).state)
    }

    /// Whether the set that `line` maps to has a free way.
    pub fn has_room_for(&self, line: Line) -> bool {
        self.sets[self.set_index(line)].len() < self.cfg.ways() as usize
    }

    /// Iterates over all resident `(line, payload)` pairs in unspecified
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Line, &S)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|e| (e.line, &e.state)))
    }

    /// Drains every resident line, leaving the cache empty.
    pub fn drain_all(&mut self) -> Vec<(Line, S)> {
        self.len = 0;
        let mut out = Vec::new();
        for set in &mut self.sets {
            for e in set.drain(..) {
                out.push((e.line, e.state));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any(_: &u32) -> u32 {
        0
    }

    #[test]
    fn cfg_geometry() {
        let cfg = CacheCfg::new(32 * 1024, 4, 6);
        assert_eq!(cfg.num_sets(), 128);
        assert_eq!(cfg.capacity_lines(), 512);
        assert_eq!(cfg.ways(), 4);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn cfg_rejects_ragged_size() {
        // 448 B holds two 3-way sets of 64 B lines plus 64 B of slack.
        CacheCfg::new(448, 3, 6);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = SetAssocCache::new(CacheCfg::new(1024, 2, 6));
        c.insert(7, 42u32, any);
        assert_eq!(c.get(7), Some(&mut 42));
        assert_eq!(c.peek(7), Some(&42));
        assert!(c.contains(7));
        assert!(!c.contains(8));
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets, 2 ways: lines 0,2,4 map to set 0.
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 'a', |_| 0);
        c.insert(2, 'b', |_| 0);
        c.get(0); // make 2 the LRU
        let v = c.insert(4, 'c', |_| 0).unwrap();
        assert_eq!(v.line, 2);
        assert!(c.contains(0) && c.contains(4));
    }

    #[test]
    fn victim_class_beats_lru() {
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 'M', |_| 0); // "master": class 0
        c.insert(2, 'S', |_| 0); // "shared": class 1
        c.get(2); // shared is MRU
        let v = c.insert(4, 'X', |s| if *s == 'S' { 1 } else { 0 }).unwrap();
        assert_eq!(v.line, 2, "higher victim class evicted despite MRU");
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 1u32, any);
        c.insert(2, 2u32, any);
        assert!(c.insert(0, 10u32, any).is_none());
        assert_eq!(c.peek(0), Some(&10));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_frees_way() {
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 'a', |_| 0);
        c.insert(2, 'b', |_| 0);
        assert!(!c.has_room_for(4));
        assert_eq!(c.remove(0), Some('a'));
        assert!(c.has_room_for(4));
        assert!(c.insert(4, 'c', |_| 0).is_none());
        assert_eq!(c.remove(999), None);
    }

    #[test]
    fn iter_and_drain() {
        let mut c = SetAssocCache::new(CacheCfg::new(1024, 4, 6));
        for i in 0..10u64 {
            c.insert(i, i as u32, any);
        }
        assert_eq!(c.iter().count(), 10);
        let mut drained = c.drain_all();
        drained.sort_unstable();
        assert_eq!(drained.len(), 10);
        assert!(c.is_empty());
        assert_eq!(drained[3], (3, 3));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = SetAssocCache::new(CacheCfg::new(128, 1, 6)); // 2 sets
        c.insert(0, 'a', |_| 0);
        let v = c.insert(2, 'b', |_| 0).unwrap(); // same set in 2-set cache
        assert_eq!(v.line, 0);
    }
}
