//! Generic set-associative cache with LRU and victim-class replacement.
//!
//! The tag store is a single flat slab (`num_sets * ways` slots) instead
//! of a `Vec` per set: building a memory-sized attraction-memory cache
//! costs two allocations total rather than one per set, which dominated
//! `point.build` wall time before the arena layout. Set `i` occupies the
//! slot range `[i*ways, i*ways + occ[i])`, entries stay in the exact
//! order the old per-set `Vec` kept them (append on insert, last-slot
//! backfill on removal — `swap_remove` semantics), so iteration and
//! drain order are bit-identical to the previous representation.

use std::fmt;

use crate::addr::Line;

/// Geometry of a set-associative cache.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::CacheCfg;
///
/// let l1 = CacheCfg::new(8 * 1024, 1, 6); // 8 KiB direct-mapped, 64 B lines
/// assert_eq!(l1.num_sets(), 128);
/// assert_eq!(l1.capacity_lines(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCfg {
    size_bytes: u64,
    ways: u32,
    line_shift: u32,
    hashed_index: bool,
}

impl CacheCfg {
    /// Creates a geometry of `size_bytes` total capacity, `ways`
    /// associativity and `1 << line_shift`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not a whole, nonzero number of sets of
    /// whole lines.
    pub fn new(size_bytes: u64, ways: u32, line_shift: u32) -> Self {
        assert!(ways > 0, "cache needs at least one way");
        let line = 1u64 << line_shift;
        assert!(
            size_bytes >= line * ways as u64,
            "cache of {size_bytes} B cannot hold one set of {ways} x {line} B lines"
        );
        assert_eq!(
            size_bytes % (line * ways as u64),
            0,
            "cache size must be a whole number of sets"
        );
        CacheCfg {
            size_bytes,
            ways,
            line_shift,
            hashed_index: false,
        }
    }

    /// Enables index hashing: the set is selected by a multiplicative
    /// hash of the line number instead of its low bits. SRAM caches use
    /// plain indexing, but memory-as-a-cache designs hash the index so
    /// page-aligned array bases do not stack into the same sets.
    pub fn with_hashed_index(mut self) -> Self {
        self.hashed_index = true;
        self
    }

    /// Whether the index is hashed.
    pub fn hashed_index(&self) -> bool {
        self.hashed_index
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Line size is `1 << line_shift()` bytes.
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / ((1u64 << self.line_shift) * self.ways as u64)
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> u64 {
        self.size_bytes >> self.line_shift
    }
}

#[derive(Debug, Clone)]
struct Entry<S> {
    line: Line,
    state: S,
    last_use: u64,
}

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evicted<S> {
    /// Line number of the victim.
    pub line: Line,
    /// Its payload at eviction time.
    pub state: S,
}

/// A set-associative cache mapping line numbers to a payload `S`.
///
/// The payload is the per-line coherence state (plus whatever the protocol
/// wants to remember). Lines not present are simply absent — there is no
/// "invalid" payload.
///
/// Replacement is LRU within the victim class chosen by the caller: on
/// insertion the caller supplies a `victim_class` function mapping payloads
/// to a priority (higher = evict first), which is how the COMA policy
/// "replace invalid, then shared non-master, then master" is expressed.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::{CacheCfg, SetAssocCache};
///
/// let mut c: SetAssocCache<char> = SetAssocCache::new(CacheCfg::new(256, 2, 6));
/// assert!(c.insert(0, 'a', |_| 0).is_none());
/// assert!(c.insert(2, 'b', |_| 0).is_none()); // same set (2 sets, stride 2)
/// let victim = c.insert(4, 'c', |_| 0).unwrap(); // set full: LRU evicted
/// assert_eq!(victim.line, 0);
/// assert_eq!(victim.state, 'a');
/// ```
#[derive(Clone)]
pub struct SetAssocCache<S> {
    cfg: CacheCfg,
    ways: usize,
    /// Flat arena of tag slots; set `i` occupies `[i*ways, i*ways+occ[i])`.
    slab: Vec<Option<Entry<S>>>,
    /// Occupied ways per set.
    occ: Vec<u32>,
    tick: u64,
    len: usize,
}

impl<S: fmt::Debug> fmt::Debug for SetAssocCache<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("cfg", &self.cfg)
            .field("resident_lines", &self.len)
            .finish()
    }
}

impl<S> SetAssocCache<S> {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheCfg) -> Self {
        let ways = cfg.ways() as usize;
        let n = cfg.num_sets() as usize;
        let mut slab = Vec::new();
        slab.resize_with(n * ways, || None);
        SetAssocCache {
            cfg,
            ways,
            slab,
            occ: vec![0; n],
            tick: 0,
            len: 0,
        }
    }

    /// The cache geometry.
    pub fn cfg(&self) -> &CacheCfg {
        &self.cfg
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set_index(&self, line: Line) -> usize {
        let n = self.cfg.num_sets();
        if self.cfg.hashed_index() {
            (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24) as usize % n as usize
        } else {
            (line % n) as usize
        }
    }

    /// The occupied slot range of the set `line` maps to.
    fn set_range(&self, line: Line) -> (usize, usize) {
        let set = self.set_index(line);
        let base = set * self.ways;
        (base, base + self.occ[set] as usize)
    }

    /// Looks up a line, updating LRU. Returns the payload if present.
    pub fn get(&mut self, line: Line) -> Option<&mut S> {
        self.tick += 1;
        let tick = self.tick;
        let (base, end) = self.set_range(line);
        self.slab[base..end]
            .iter_mut()
            .map(|s| s.as_mut().expect("slot within occupancy is filled"))
            .find(|e| e.line == line)
            .map(|e| {
                e.last_use = tick;
                &mut e.state
            })
    }

    /// Looks up a line without touching LRU.
    pub fn peek(&self, line: Line) -> Option<&S> {
        let (base, end) = self.set_range(line);
        self.slab[base..end]
            .iter()
            .map(|s| s.as_ref().expect("slot within occupancy is filled"))
            .find(|e| e.line == line)
            .map(|e| &e.state)
    }

    /// Mutable lookup without touching LRU.
    pub fn peek_mut(&mut self, line: Line) -> Option<&mut S> {
        let (base, end) = self.set_range(line);
        self.slab[base..end]
            .iter_mut()
            .map(|s| s.as_mut().expect("slot within occupancy is filled"))
            .find(|e| e.line == line)
            .map(|e| &mut e.state)
    }

    /// Whether a line is resident.
    pub fn contains(&self, line: Line) -> bool {
        self.peek(line).is_some()
    }

    /// Inserts (or overwrites) a line, evicting if the set is full.
    ///
    /// `victim_class` ranks potential victims: the victim is the line with
    /// the *highest* class, ties broken by LRU. Returns the evicted line,
    /// if any. Inserting an already-resident line overwrites its payload
    /// and returns `None`.
    pub fn insert(
        &mut self,
        line: Line,
        state: S,
        victim_class: impl Fn(&S) -> u32,
    ) -> Option<Evicted<S>> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);
        let base = set * self.ways;
        let occ = self.occ[set] as usize;

        if let Some(e) = self.slab[base..base + occ]
            .iter_mut()
            .map(|s| s.as_mut().expect("slot within occupancy is filled"))
            .find(|e| e.line == line)
        {
            e.state = state;
            e.last_use = tick;
            return None;
        }

        let (evicted, at) = if occ == self.ways {
            // Pick victim: highest class, then least recently used (the
            // same scan order and `max_by_key` tie behavior as the old
            // per-set `Vec`).
            let vi = self.slab[base..base + occ]
                .iter()
                .map(|s| s.as_ref().expect("slot within occupancy is filled"))
                .enumerate()
                .max_by_key(|(_, e)| (victim_class(&e.state), std::cmp::Reverse(e.last_use)))
                .map(|(i, _)| i)
                .expect("set is full, so non-empty");
            // `Vec::swap_remove(vi)` followed by `push` left the formerly
            // last entry in slot `vi` and the new entry in the last slot;
            // reproduce that exactly so iteration order never changes.
            let victim = self.slab[base + vi].take().expect("victim slot is filled");
            if vi != occ - 1 {
                self.slab[base + vi] = self.slab[base + occ - 1].take();
            }
            self.len -= 1;
            (
                Some(Evicted {
                    line: victim.line,
                    state: victim.state,
                }),
                occ - 1,
            )
        } else {
            self.occ[set] += 1;
            (None, occ)
        };

        self.slab[base + at] = Some(Entry {
            line,
            state,
            last_use: tick,
        });
        self.len += 1;
        evicted
    }

    /// Returns what [`SetAssocCache::insert`] of `line` would evict right
    /// now, without changing any state. `None` means the insertion would
    /// be eviction-free (free way, or the line is already resident).
    pub fn peek_victim(&self, line: Line, victim_class: impl Fn(&S) -> u32) -> Option<(Line, &S)> {
        let (base, end) = self.set_range(line);
        let set = &self.slab[base..end];
        if end - base < self.ways
            || set
                .iter()
                .any(|s| s.as_ref().is_some_and(|e| e.line == line))
        {
            return None;
        }
        set.iter()
            .map(|s| s.as_ref().expect("slot within occupancy is filled"))
            .max_by_key(|e| (victim_class(&e.state), std::cmp::Reverse(e.last_use)))
            .map(|e| (e.line, &e.state))
    }

    /// Removes a line, returning its payload if it was resident.
    pub fn remove(&mut self, line: Line) -> Option<S> {
        let set = self.set_index(line);
        let base = set * self.ways;
        let occ = self.occ[set] as usize;
        let pos = self.slab[base..base + occ]
            .iter()
            .position(|s| s.as_ref().is_some_and(|e| e.line == line))?;
        // `Vec::swap_remove`: the last occupied slot backfills the hole.
        let removed = self.slab[base + pos].take().expect("slot is filled");
        if pos != occ - 1 {
            self.slab[base + pos] = self.slab[base + occ - 1].take();
        }
        self.occ[set] -= 1;
        self.len -= 1;
        Some(removed.state)
    }

    /// Whether the set that `line` maps to has a free way.
    pub fn has_room_for(&self, line: Line) -> bool {
        (self.occ[self.set_index(line)] as usize) < self.ways
    }

    /// Iterates over all resident `(line, payload)` pairs in the arena's
    /// deterministic order: sets ascending, slots within a set in
    /// insertion/backfill order. Any simulated behavior driven by this
    /// order is reproducible because the order is a pure function of the
    /// operation history.
    pub fn iter_deterministic(&self) -> impl Iterator<Item = (Line, &S)> {
        self.occ.iter().enumerate().flat_map(move |(set, &occ)| {
            let base = set * self.ways;
            self.slab[base..base + occ as usize]
                .iter()
                .map(|s| s.as_ref().expect("slot within occupancy is filled"))
                .map(|e| (e.line, &e.state))
        })
    }

    /// Iterates over all resident `(line, payload)` pairs (alias of
    /// [`SetAssocCache::iter_deterministic`]).
    pub fn iter(&self) -> impl Iterator<Item = (Line, &S)> {
        self.iter_deterministic()
    }

    /// Drains every resident line in [`SetAssocCache::iter_deterministic`]
    /// order, leaving the cache empty. The drain is in place: no buffer
    /// of the cache's size is ever materialized.
    pub fn drain_all(&mut self) -> DrainAll<'_, S> {
        self.len = 0;
        DrainAll {
            cache: self,
            set: 0,
            way: 0,
        }
    }
}

/// In-place draining iterator over a [`SetAssocCache`]; see
/// [`SetAssocCache::drain_all`]. Dropping it mid-iteration finishes the
/// drain, so the cache is always left empty.
pub struct DrainAll<'a, S> {
    cache: &'a mut SetAssocCache<S>,
    set: usize,
    way: usize,
}

impl<S> Iterator for DrainAll<'_, S> {
    type Item = (Line, S);

    fn next(&mut self) -> Option<(Line, S)> {
        while self.set < self.cache.occ.len() {
            if self.way < self.cache.occ[self.set] as usize {
                let slot = self.set * self.cache.ways + self.way;
                self.way += 1;
                let e = self.cache.slab[slot]
                    .take()
                    .expect("slot within occupancy is filled");
                return Some((e.line, e.state));
            }
            self.cache.occ[self.set] = 0;
            self.set += 1;
            self.way = 0;
        }
        None
    }
}

impl<S> Drop for DrainAll<'_, S> {
    fn drop(&mut self) {
        for _ in self.by_ref() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any(_: &u32) -> u32 {
        0
    }

    #[test]
    fn cfg_geometry() {
        let cfg = CacheCfg::new(32 * 1024, 4, 6);
        assert_eq!(cfg.num_sets(), 128);
        assert_eq!(cfg.capacity_lines(), 512);
        assert_eq!(cfg.ways(), 4);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn cfg_rejects_ragged_size() {
        // 448 B holds two 3-way sets of 64 B lines plus 64 B of slack.
        CacheCfg::new(448, 3, 6);
    }

    #[test]
    fn hit_after_insert() {
        let mut c = SetAssocCache::new(CacheCfg::new(1024, 2, 6));
        c.insert(7, 42u32, any);
        assert_eq!(c.get(7), Some(&mut 42));
        assert_eq!(c.peek(7), Some(&42));
        assert!(c.contains(7));
        assert!(!c.contains(8));
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets, 2 ways: lines 0,2,4 map to set 0.
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 'a', |_| 0);
        c.insert(2, 'b', |_| 0);
        c.get(0); // make 2 the LRU
        let v = c.insert(4, 'c', |_| 0).unwrap();
        assert_eq!(v.line, 2);
        assert!(c.contains(0) && c.contains(4));
    }

    #[test]
    fn victim_class_beats_lru() {
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 'M', |_| 0); // "master": class 0
        c.insert(2, 'S', |_| 0); // "shared": class 1
        c.get(2); // shared is MRU
        let v = c.insert(4, 'X', |s| if *s == 'S' { 1 } else { 0 }).unwrap();
        assert_eq!(v.line, 2, "higher victim class evicted despite MRU");
    }

    #[test]
    fn overwrite_does_not_evict() {
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 1u32, any);
        c.insert(2, 2u32, any);
        assert!(c.insert(0, 10u32, any).is_none());
        assert_eq!(c.peek(0), Some(&10));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_frees_way() {
        let mut c = SetAssocCache::new(CacheCfg::new(256, 2, 6));
        c.insert(0, 'a', |_| 0);
        c.insert(2, 'b', |_| 0);
        assert!(!c.has_room_for(4));
        assert_eq!(c.remove(0), Some('a'));
        assert!(c.has_room_for(4));
        assert!(c.insert(4, 'c', |_| 0).is_none());
        assert_eq!(c.remove(999), None);
    }

    #[test]
    fn iter_and_drain() {
        let mut c = SetAssocCache::new(CacheCfg::new(1024, 4, 6));
        for i in 0..10u64 {
            c.insert(i, i as u32, any);
        }
        assert_eq!(c.iter().count(), 10);
        let mut drained: Vec<_> = c.drain_all().collect();
        drained.sort_unstable();
        assert_eq!(drained.len(), 10);
        assert!(c.is_empty());
        assert_eq!(drained[3], (3, 3));
    }

    /// The arena layout must reproduce the old per-set `Vec` order
    /// exactly: append on insert, last-entry backfill on `remove` and on
    /// eviction (`swap_remove` + `push`). This order is observable — it
    /// decides flush order in `convert_p_to_d` — so it is part of the
    /// determinism contract, not an implementation detail.
    #[test]
    fn iteration_preserves_vec_swap_remove_order() {
        // One set, four ways: all of 0,4,8,12,16 collide.
        let mut c = SetAssocCache::new(CacheCfg::new(1024, 4, 6));
        for line in [0u64, 4, 8, 12] {
            c.insert(line, line as u32, any);
        }
        let order = |c: &SetAssocCache<u32>| c.iter().map(|(l, _)| l).collect::<Vec<_>>();
        assert_eq!(order(&c), vec![0, 4, 8, 12], "insertion appends");

        // Remove the middle entry: the last one backfills its slot.
        c.remove(4);
        assert_eq!(order(&c), vec![0, 12, 8], "swap_remove backfill");

        // Fill the set again, then force an eviction of the LRU (line 0):
        // the last entry backfills slot 0 and the new line appends.
        c.insert(16, 16, any);
        assert_eq!(order(&c), vec![0, 12, 8, 16]);
        c.get(12);
        c.get(8);
        c.get(16);
        let v = c.insert(20, 20, any).unwrap();
        assert_eq!(v.line, 0, "LRU evicted");
        assert_eq!(order(&c), vec![16, 12, 8, 20], "evict backfill + append");

        // Drain yields the same deterministic order, in place.
        let drained: Vec<Line> = c.drain_all().map(|(l, _)| l).collect();
        assert_eq!(drained, vec![16, 12, 8, 20]);
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn dropping_a_partial_drain_empties_the_cache() {
        let mut c = SetAssocCache::new(CacheCfg::new(1024, 4, 6));
        for i in 0..10u64 {
            c.insert(i, i as u32, any);
        }
        {
            let mut d = c.drain_all();
            assert!(d.next().is_some());
            assert!(d.next().is_some());
        }
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
        // The cache is fully reusable after an abandoned drain.
        assert!(c.insert(3, 3, any).is_none());
        assert_eq!(c.peek(3), Some(&3));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = SetAssocCache::new(CacheCfg::new(128, 1, 6)); // 2 sets
        c.insert(0, 'a', |_| 0);
        let v = c.insert(2, 'b', |_| 0).unwrap(); // same set in 2-set cache
        assert_eq!(v.line, 0);
    }
}
