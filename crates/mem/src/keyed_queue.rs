//! A keyed doubly-linked queue with cheap removal by key.
//!
//! Supports push-to-back, pop-from-front, arbitrary removal by key, and
//! move-to-back — the operation mix needed both by the attraction memory's
//! on-chip LRU (move-to-back on touch, pop-front to pick the LRU swap
//! victim) and by the AGG D-node's FreeList/SharedList (FIFO insertion at
//! the tail, reclamation from the head, unlink when a line changes state;
//! Section 2.2.2 of the paper).

use std::collections::BTreeMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A FIFO/LRU list with O(log n) removal by key.
///
/// The key index is a `BTreeMap` (determinism contract D001): the queue
/// itself defines iteration order via its links, but keeping the index
/// ordered too means no simulation structure depends on hash order.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::KeyedQueue;
///
/// let mut q = KeyedQueue::new();
/// q.push_back(10u64);
/// q.push_back(20);
/// q.push_back(30);
/// assert!(q.remove(&20));
/// assert_eq!(q.pop_front(), Some(10));
/// assert_eq!(q.pop_front(), Some(30));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyedQueue<K> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    index: BTreeMap<K, usize>,
    head: usize,
    tail: usize,
}

impl<K: Ord + Copy> KeyedQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        KeyedQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            index: BTreeMap::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of queued keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` is queued.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// The key at the front (oldest), if any.
    pub fn front(&self) -> Option<&K> {
        if self.head == NIL {
            None
        } else {
            Some(&self.nodes[self.head].key)
        }
    }

    /// Appends `key` at the back.
    ///
    /// # Panics
    ///
    /// Panics if the key is already queued; callers track membership and a
    /// double insert indicates a protocol bookkeeping bug.
    pub fn push_back(&mut self, key: K) {
        assert!(
            !self.index.contains_key(&key),
            "key already queued; duplicate insertion is a bookkeeping bug"
        );
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = Node {
                key,
                prev: self.tail,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                prev: self.tail,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        if self.tail != NIL {
            self.nodes[self.tail].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.index.insert(key, idx);
    }

    /// Removes and returns the front key, if any.
    pub fn pop_front(&mut self) -> Option<K> {
        if self.head == NIL {
            return None;
        }
        let key = self.nodes[self.head].key;
        self.remove(&key);
        Some(key)
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.index.remove(key) else {
            return false;
        };
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(idx);
        true
    }

    /// Moves `key` to the back (most-recently-used position), returning
    /// whether it was present.
    pub fn move_to_back(&mut self, key: &K) -> bool {
        if !self.contains(key) {
            return false;
        }
        let k = *key;
        self.remove(&k);
        self.push_back(k);
        true
    }

    /// Iterates front-to-back.
    pub fn iter(&self) -> Iter<'_, K> {
        Iter {
            queue: self,
            cur: self.head,
        }
    }
}

/// Front-to-back iterator over a [`KeyedQueue`], produced by
/// [`KeyedQueue::iter`].
#[derive(Debug)]
pub struct Iter<'a, K> {
    queue: &'a KeyedQueue<K>,
    cur: usize,
}

impl<'a, K> Iterator for Iter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.queue.nodes[self.cur];
        self.cur = node.next;
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = KeyedQueue::new();
        for i in 0..5u32 {
            q.push_back(i);
        }
        for i in 0..5u32 {
            assert_eq!(q.pop_front(), Some(i));
        }
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn remove_middle_and_ends() {
        let mut q = KeyedQueue::new();
        for i in 0..5u32 {
            q.push_back(i);
        }
        assert!(q.remove(&2));
        assert!(q.remove(&0));
        assert!(q.remove(&4));
        assert!(!q.remove(&2));
        let rest: Vec<u32> = q.iter().copied().collect();
        assert_eq!(rest, vec![1, 3]);
    }

    #[test]
    fn move_to_back_reorders() {
        let mut q = KeyedQueue::new();
        for i in 0..3u32 {
            q.push_back(i);
        }
        assert!(q.move_to_back(&0));
        assert!(!q.move_to_back(&99));
        let order: Vec<u32> = q.iter().copied().collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut q = KeyedQueue::new();
        for i in 0..100u32 {
            q.push_back(i);
        }
        for i in 0..100u32 {
            assert!(q.remove(&i));
        }
        for i in 100..200u32 {
            q.push_back(i);
        }
        // Internal node storage did not grow past the peak.
        assert!(q.nodes.len() <= 100);
        assert_eq!(q.len(), 100);
        assert_eq!(q.front(), Some(&100));
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn duplicate_push_panics() {
        let mut q = KeyedQueue::new();
        q.push_back(1u32);
        q.push_back(1u32);
    }

    #[test]
    fn front_peeks_without_removal() {
        let mut q = KeyedQueue::new();
        assert_eq!(q.front(), None);
        q.push_back(9u64);
        assert_eq!(q.front(), Some(&9));
        assert_eq!(q.len(), 1);
    }
}
