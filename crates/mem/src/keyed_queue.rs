//! A keyed doubly-linked queue with cheap removal by key.
//!
//! Supports push-to-back, pop-from-front, arbitrary removal by key, and
//! move-to-back — the operation mix needed both by the attraction memory's
//! on-chip LRU (move-to-back on touch, pop-front to pick the LRU swap
//! victim) and by the AGG D-node's FreeList/SharedList (FIFO insertion at
//! the tail, reclamation from the head, unlink when a line changes state;
//! Section 2.2.2 of the paper).

const NIL: usize = usize::MAX;
/// Empty marker for index slots.
const EMPTY: usize = usize::MAX;
/// Fibonacci multiplier for the slot hash.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Key types a [`KeyedQueue`] can index: totally ordered, copyable, and
/// reducible to a `u64` slot number. All simulator keys (lines, pages,
/// cycles) are `u64` line/page numbers already.
pub trait QueueKey: Ord + Copy {
    /// The key as a 64-bit slot number.
    fn as_u64(self) -> u64;
}

impl QueueKey for u64 {
    fn as_u64(self) -> u64 {
        self
    }
}

impl QueueKey for u32 {
    fn as_u64(self) -> u64 {
        self as u64
    }
}

impl QueueKey for u16 {
    fn as_u64(self) -> u64 {
        self as u64
    }
}

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A FIFO/LRU list with O(1) removal by key.
///
/// The key index is a private open-addressing table (fibonacci hash,
/// linear probing, backward-shift deletion) mapping each key to its node
/// slot. This stays inside determinism contract D001 because the index is
/// **never iterated**: every visible ordering — iteration, pop order,
/// victim choice — comes from the queue's own links, so nothing in the
/// simulation can observe slot order.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::KeyedQueue;
///
/// let mut q = KeyedQueue::new();
/// q.push_back(10u64);
/// q.push_back(20);
/// q.push_back(30);
/// assert!(q.remove(&20));
/// assert_eq!(q.pop_front(), Some(10));
/// assert_eq!(q.pop_front(), Some(30));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyedQueue<K> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    /// Open-addressing index: node slot or [`EMPTY`], power-of-two sized.
    slots: Vec<usize>,
    /// Number of queued keys.
    count: usize,
    head: usize,
    tail: usize,
}

impl<K: QueueKey> KeyedQueue<K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        KeyedQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            slots: Vec::new(),
            count: 0,
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of queued keys.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Home slot for `key` at the current table size.
    #[inline]
    fn home(&self, key: K) -> usize {
        // High bits of the fibonacci product, folded to the table size.
        (key.as_u64().wrapping_mul(FIB) >> (64 - self.slots.len().trailing_zeros())) as usize
    }

    /// The index slot holding `key`, if present.
    #[inline]
    fn slot_of(&self, key: K) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut s = self.home(key);
        loop {
            let n = self.slots[s];
            if n == EMPTY {
                return None;
            }
            if self.nodes[n].key == key {
                return Some(s);
            }
            s = (s + 1) & mask;
        }
    }

    /// Records `node` (whose key is already stored in `nodes`) in the
    /// index, growing the table past 7/8 load.
    fn index_insert(&mut self, node: usize) {
        if (self.count + 1) * 8 > self.slots.len() * 7 {
            let cap = (self.slots.len() * 2).max(8);
            let old = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
            for n in old {
                if n != EMPTY {
                    self.index_place(n);
                }
            }
        }
        self.index_place(node);
        self.count += 1;
    }

    /// Probes for a free slot and stores `node` there.
    fn index_place(&mut self, node: usize) {
        let mask = self.slots.len() - 1;
        let mut s = self.home(self.nodes[node].key);
        while self.slots[s] != EMPTY {
            s = (s + 1) & mask;
        }
        self.slots[s] = node;
    }

    /// Unindexes `key`, returning its node slot. Uses backward-shift
    /// deletion so the table never accumulates tombstones.
    fn index_remove(&mut self, key: K) -> Option<usize> {
        let s = self.slot_of(key)?;
        let node = self.slots[s];
        let mask = self.slots.len() - 1;
        let mut hole = s;
        let mut j = s;
        loop {
            j = (j + 1) & mask;
            let n = self.slots[j];
            if n == EMPTY {
                break;
            }
            // Shift n back iff its probe chain passes through the hole.
            let h = self.home(self.nodes[n].key);
            if (j.wrapping_sub(h) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = n;
                hole = j;
            }
        }
        self.slots[hole] = EMPTY;
        self.count -= 1;
        Some(node)
    }

    /// Whether `key` is queued.
    pub fn contains(&self, key: &K) -> bool {
        self.slot_of(*key).is_some()
    }

    /// The key at the front (oldest), if any.
    pub fn front(&self) -> Option<&K> {
        if self.head == NIL {
            None
        } else {
            Some(&self.nodes[self.head].key)
        }
    }

    /// Appends `key` at the back.
    ///
    /// # Panics
    ///
    /// Panics if the key is already queued; callers track membership and a
    /// double insert indicates a protocol bookkeeping bug.
    pub fn push_back(&mut self, key: K) {
        assert!(
            !self.contains(&key),
            "key already queued; duplicate insertion is a bookkeeping bug"
        );
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = Node {
                key,
                prev: self.tail,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                prev: self.tail,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        if self.tail != NIL {
            self.nodes[self.tail].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.index_insert(idx);
    }

    /// Removes and returns the front key, if any.
    pub fn pop_front(&mut self) -> Option<K> {
        if self.head == NIL {
            return None;
        }
        let key = self.nodes[self.head].key;
        self.remove(&key);
        Some(key)
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.index_remove(*key) else {
            return false;
        };
        let Node { prev, next, .. } = self.nodes[idx];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(idx);
        true
    }

    /// Moves `key` to the back (most-recently-used position), returning
    /// whether it was present.
    ///
    /// This is the attraction memory's per-touch operation, so it relinks
    /// the node in place: the key's slot — and therefore the index —
    /// never changes, avoiding the two index operations a
    /// remove-then-reinsert would cost on every cache touch.
    pub fn move_to_back(&mut self, key: &K) -> bool {
        let Some(s) = self.slot_of(*key) else {
            return false;
        };
        let idx = self.slots[s];
        if idx == self.tail {
            return true;
        }
        let Node { prev, next, .. } = self.nodes[idx];
        // Unlink from the middle (or front) …
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        // idx != tail, so a successor exists.
        self.nodes[next].prev = prev;
        // … and splice in behind the old tail.
        self.nodes[idx].prev = self.tail;
        self.nodes[idx].next = NIL;
        self.nodes[self.tail].next = idx;
        self.tail = idx;
        true
    }

    /// Iterates front-to-back.
    pub fn iter(&self) -> Iter<'_, K> {
        Iter {
            queue: self,
            cur: self.head,
        }
    }
}

/// Front-to-back iterator over a [`KeyedQueue`], produced by
/// [`KeyedQueue::iter`].
#[derive(Debug)]
pub struct Iter<'a, K> {
    queue: &'a KeyedQueue<K>,
    cur: usize,
}

impl<'a, K> Iterator for Iter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.queue.nodes[self.cur];
        self.cur = node.next;
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = KeyedQueue::new();
        for i in 0..5u32 {
            q.push_back(i);
        }
        for i in 0..5u32 {
            assert_eq!(q.pop_front(), Some(i));
        }
        assert_eq!(q.pop_front(), None);
    }

    #[test]
    fn remove_middle_and_ends() {
        let mut q = KeyedQueue::new();
        for i in 0..5u32 {
            q.push_back(i);
        }
        assert!(q.remove(&2));
        assert!(q.remove(&0));
        assert!(q.remove(&4));
        assert!(!q.remove(&2));
        let rest: Vec<u32> = q.iter().copied().collect();
        assert_eq!(rest, vec![1, 3]);
    }

    #[test]
    fn move_to_back_reorders() {
        let mut q = KeyedQueue::new();
        for i in 0..3u32 {
            q.push_back(i);
        }
        assert!(q.move_to_back(&0));
        assert!(!q.move_to_back(&99));
        let order: Vec<u32> = q.iter().copied().collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn move_to_back_relinks_in_place() {
        let mut q = KeyedQueue::new();
        for i in 0..4u32 {
            q.push_back(i);
        }
        // Tail is a no-op, front and middle splice behind the tail.
        assert!(q.move_to_back(&3));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(q.move_to_back(&0));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3, 0]);
        assert!(q.move_to_back(&2));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![1, 3, 0, 2]);
        // The structure stays consistent for removals and pops afterwards.
        assert!(q.remove(&3));
        assert_eq!(q.pop_front(), Some(1));
        assert_eq!(q.pop_front(), Some(0));
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), None);
        // Singleton: moving the only element is a no-op.
        q.push_back(7);
        assert!(q.move_to_back(&7));
        assert_eq!(q.front(), Some(&7));
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut q = KeyedQueue::new();
        for i in 0..100u32 {
            q.push_back(i);
        }
        for i in 0..100u32 {
            assert!(q.remove(&i));
        }
        for i in 100..200u32 {
            q.push_back(i);
        }
        // Internal node storage did not grow past the peak.
        assert!(q.nodes.len() <= 100);
        assert_eq!(q.len(), 100);
        assert_eq!(q.front(), Some(&100));
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn duplicate_push_panics() {
        let mut q = KeyedQueue::new();
        q.push_back(1u32);
        q.push_back(1u32);
    }

    #[test]
    fn front_peeks_without_removal() {
        let mut q = KeyedQueue::new();
        assert_eq!(q.front(), None);
        q.push_back(9u64);
        assert_eq!(q.front(), Some(&9));
        assert_eq!(q.len(), 1);
    }

    /// Backward-shift deletion keeps colliding keys findable. Keys that
    /// multiply to nearby fibonacci products land in one probe cluster;
    /// removing from the middle of the cluster must not orphan the rest.
    #[test]
    fn collision_cluster_survives_removals() {
        let mut q = KeyedQueue::new();
        // 256 keys in an 8-or-larger table guarantee long probe chains.
        for i in 0..256u64 {
            q.push_back(i * 8);
        }
        for i in (0..256u64).step_by(2) {
            assert!(q.remove(&(i * 8)), "even key {i} present");
        }
        for i in (1..256u64).step_by(2) {
            assert!(q.contains(&(i * 8)), "odd key {i} still findable");
        }
        assert_eq!(q.len(), 128);
        // And they still pop in FIFO order.
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop_front()).collect();
        let expect: Vec<u64> = (1..256u64).step_by(2).map(|i| i * 8).collect();
        assert_eq!(popped, expect);
    }
}
