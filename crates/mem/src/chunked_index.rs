//! A chunked dense `u64 → u32` index.
//!
//! The simulator's page-grained tables (D-node directory chunks, COMA
//! directory chunks) all need the same map shape: a page number — dense,
//! bump-allocated from 1 by the workload layouts — to a small arena
//! slot. This index stores values in per-chunk dense arrays so the hot
//! lookup is two indexations, and iterates in ascending key order so
//! every sweep built on it is run-to-run deterministic (contract D001).

/// Keys per dense chunk (`1 << CHUNK_SHIFT`).
const CHUNK_SHIFT: u32 = 12;
const CHUNK: usize = 1 << CHUNK_SHIFT;
/// Sentinel for an empty slot.
const EMPTY: u32 = u32::MAX;

/// A `u64 → u32` map as a chunked dense array.
///
/// Values must be below `u32::MAX` (the empty sentinel). Absent chunks
/// stay unallocated, so sparse key ranges cost nothing but a spine slot.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::ChunkedIndex;
///
/// let mut ix = ChunkedIndex::new();
/// ix.insert(7, 3);
/// assert_eq!(ix.get(7), Some(3));
/// assert_eq!(ix.remove(7), Some(3));
/// assert_eq!(ix.get(7), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChunkedIndex {
    chunks: Vec<Option<Box<[u32; CHUNK]>>>,
    len: usize,
}

impl ChunkedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        ChunkedIndex::default()
    }

    /// Number of mapped keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no keys are mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value mapped at `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let chunk = (key >> CHUNK_SHIFT) as usize;
        let v = *self
            .chunks
            .get(chunk)?
            .as_ref()?
            .get(key as usize % CHUNK)?;
        (v != EMPTY).then_some(v)
    }

    #[inline]
    fn slot_mut(&mut self, key: u64) -> &mut u32 {
        let chunk = (key >> CHUNK_SHIFT) as usize;
        if chunk >= self.chunks.len() {
            self.chunks.resize_with(chunk + 1, || None);
        }
        let entries = self.chunks[chunk].get_or_insert_with(|| Box::new([EMPTY; CHUNK]));
        &mut entries[key as usize % CHUNK]
    }

    /// Maps `key` to `value`, returning the previous value if any.
    ///
    /// # Panics
    ///
    /// Panics if `value` is the `u32::MAX` sentinel.
    pub fn insert(&mut self, key: u64, value: u32) -> Option<u32> {
        assert!(value != EMPTY, "value collides with the empty sentinel");
        let slot = self.slot_mut(key);
        let old = *slot;
        *slot = value;
        if old == EMPTY {
            self.len += 1;
            None
        } else {
            Some(old)
        }
    }

    /// Unmaps `key`, returning its value if it was mapped.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        self.get(key)?;
        let slot = self.slot_mut(key);
        let old = *slot;
        *slot = EMPTY;
        self.len -= 1;
        Some(old)
    }

    /// Iterates over `(key, value)` pairs in ascending key order — the
    /// index's deterministic order.
    pub fn iter_deterministic(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| c.as_ref().map(|c| (ci, c)))
            .flat_map(|(ci, chunk)| {
                chunk
                    .iter()
                    .enumerate()
                    .filter(|&(_, &v)| v != EMPTY)
                    .map(move |(si, &v)| (((ci as u64) << CHUNK_SHIFT) + si as u64, v))
            })
    }

    /// Iterates in ascending key order (alias of
    /// [`ChunkedIndex::iter_deterministic`]).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.iter_deterministic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut ix = ChunkedIndex::new();
        assert_eq!(ix.get(42), None);
        assert_eq!(ix.insert(42, 7), None);
        assert_eq!(ix.insert(42, 8), Some(7));
        assert_eq!(ix.get(42), Some(8));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.remove(42), Some(8));
        assert_eq!(ix.remove(42), None);
        assert!(ix.is_empty());
    }

    #[test]
    fn iteration_is_ascending_across_chunks() {
        let mut ix = ChunkedIndex::new();
        let keys = [CHUNK as u64 * 2 + 5, 3, CHUNK as u64 - 1, CHUNK as u64, 7];
        for (i, &k) in keys.iter().enumerate() {
            ix.insert(k, i as u32);
        }
        let got: Vec<u64> = ix.iter().map(|(k, _)| k).collect();
        assert_eq!(
            got,
            vec![3, 7, CHUNK as u64 - 1, CHUNK as u64, CHUNK as u64 * 2 + 5]
        );
        assert_eq!(ix.len(), 5);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_value_rejected() {
        ChunkedIndex::new().insert(1, u32::MAX);
    }
}
