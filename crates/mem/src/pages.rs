//! First-touch page placement.
//!
//! All three architectures in the paper allocate pages with a first-touch
//! policy: the first node to reference a page becomes (or chooses) its
//! home. The page table records the home node of every mapped page; homes
//! can later be reassigned (D-node reconfiguration moves the pages an
//! ex-D-node was serving) or unmapped (paged out to disk).

use std::collections::BTreeMap;

use crate::addr::Page;

/// Node index within the machine.
pub type NodeId = usize;

/// Pages per dense chunk (`1 << CHUNK_SHIFT`).
const CHUNK_SHIFT: u32 = 12;
const CHUNK: usize = 1 << CHUNK_SHIFT;
/// Sentinel home for an unmapped slot.
const UNMAPPED: u32 = u32::MAX;

/// A page-number → home-node map with first-touch assignment.
///
/// The table is a chunked dense array: page `p` lives in slot
/// `p % CHUNK` of chunk `p / CHUNK`, with absent chunks left
/// unallocated. Workload layouts bump-allocate the address space from
/// page 1, so page numbers are dense and a home lookup — one per
/// simulated memory access — is two indexations instead of a `BTreeMap`
/// walk. Every sweep (`pages_homed_at`, `iter`, `evacuate`) visits
/// chunks and slots in ascending page order, which is exactly the sorted
/// order the previous `BTreeMap` representation iterated in: the
/// simulator's bit-determinism depends on that order, because
/// reconfiguration and recovery migrations replay it into simulated
/// time.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::PageTable;
///
/// let mut pt = PageTable::new(12); // 4 KiB pages
/// let home = pt.home_or_assign(0x5000 >> 12, || 3);
/// assert_eq!(home, 3);
/// // Subsequent touches see the established home.
/// assert_eq!(pt.home_or_assign(0x5000 >> 12, || 9), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_shift: u32,
    chunks: Vec<Option<Box<[u32; CHUNK]>>>,
    per_node: BTreeMap<NodeId, u64>,
    len: usize,
}

impl PageTable {
    /// Creates an empty table for pages of `1 << page_shift` bytes.
    pub fn new(page_shift: u32) -> Self {
        PageTable {
            page_shift,
            chunks: Vec::new(),
            per_node: BTreeMap::new(),
            len: 0,
        }
    }

    /// Page size shift.
    pub fn page_shift(&self) -> u32 {
        self.page_shift
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        1 << self.page_shift
    }

    fn slot(&self, page: Page) -> Option<u32> {
        let chunk = (page >> CHUNK_SHIFT) as usize;
        let home = *self
            .chunks
            .get(chunk)?
            .as_ref()?
            .get(page as usize % CHUNK)?;
        (home != UNMAPPED).then_some(home)
    }

    fn slot_mut(&mut self, page: Page) -> &mut u32 {
        let chunk = (page >> CHUNK_SHIFT) as usize;
        if chunk >= self.chunks.len() {
            self.chunks.resize_with(chunk + 1, || None);
        }
        let entries = self.chunks[chunk].get_or_insert_with(|| Box::new([UNMAPPED; CHUNK]));
        &mut entries[page as usize % CHUNK]
    }

    /// Home of `page`, if mapped.
    pub fn home(&self, page: Page) -> Option<NodeId> {
        self.slot(page).map(|h| h as NodeId)
    }

    /// Home of `page`, assigning it via `assign` on first touch.
    pub fn home_or_assign(&mut self, page: Page, assign: impl FnOnce() -> NodeId) -> NodeId {
        if let Some(h) = self.slot(page) {
            return h as NodeId;
        }
        let h = assign();
        debug_assert!(
            (h as u64) < UNMAPPED as u64,
            "node id collides with sentinel"
        );
        *self.slot_mut(page) = h as u32;
        self.len += 1;
        *self.per_node.entry(h).or_insert(0) += 1;
        h
    }

    /// Moves `page` to a new home. Returns the old home.
    ///
    /// # Panics
    ///
    /// Panics if the page is not mapped.
    pub fn reassign(&mut self, page: Page, new_home: NodeId) -> NodeId {
        let slot = self.slot_mut(page);
        assert!(*slot != UNMAPPED, "cannot reassign an unmapped page");
        let old = *slot as NodeId;
        *slot = new_home as u32;
        if let Some(c) = self.per_node.get_mut(&old) {
            *c -= 1;
        }
        *self.per_node.entry(new_home).or_insert(0) += 1;
        old
    }

    /// Unmaps `page` (paged out to disk). Returns its home, if it was
    /// mapped.
    pub fn unmap(&mut self, page: Page) -> Option<NodeId> {
        let home = self.slot(page)?;
        *self.slot_mut(page) = UNMAPPED;
        self.len -= 1;
        if let Some(c) = self.per_node.get_mut(&(home as NodeId)) {
            *c -= 1;
        }
        Some(home as NodeId)
    }

    /// Number of pages homed at `node`.
    pub fn pages_at(&self, node: NodeId) -> u64 {
        self.per_node.get(&node).copied().unwrap_or(0)
    }

    /// All pages homed at `node`, in ascending page order (deterministic:
    /// reconfiguration migrations iterate this list, so its order is part
    /// of the simulated behavior).
    pub fn pages_homed_at(&self, node: NodeId) -> Vec<Page> {
        self.iter()
            .filter(|&(_, h)| h == node)
            .map(|(p, _)| p)
            .collect()
    }

    /// Evacuates every page homed at `victim`, choosing each page's new
    /// home via `choose`. Returns the evacuated `(page, new_home)` pairs in
    /// ascending page order — the deterministic sweep order crash recovery
    /// re-homes in.
    pub fn evacuate(
        &mut self,
        victim: NodeId,
        mut choose: impl FnMut(Page) -> NodeId,
    ) -> Vec<(Page, NodeId)> {
        let pages = self.pages_homed_at(victim);
        pages
            .into_iter()
            .map(|p| {
                let nh = choose(p);
                self.reassign(p, nh);
                (p, nh)
            })
            .collect()
    }

    /// Total mapped pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(page, home)` pairs in ascending page order — the
    /// table's deterministic index order.
    pub fn iter_deterministic(&self) -> impl Iterator<Item = (Page, NodeId)> + '_ {
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| c.as_ref().map(|c| (ci, c)))
            .flat_map(|(ci, chunk)| {
                chunk
                    .iter()
                    .enumerate()
                    .filter(|&(_, &h)| h != UNMAPPED)
                    .map(move |(si, &h)| (((ci as u64) << CHUNK_SHIFT) + si as u64, h as NodeId))
            })
    }

    /// Iterates over `(page, home)` pairs in ascending page order (alias
    /// of [`PageTable::iter_deterministic`]).
    pub fn iter(&self) -> impl Iterator<Item = (Page, NodeId)> + '_ {
        self.iter_deterministic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_sticks() {
        let mut pt = PageTable::new(12);
        assert_eq!(pt.home_or_assign(7, || 2), 2);
        assert_eq!(pt.home_or_assign(7, || 5), 2);
        assert_eq!(pt.home(7), Some(2));
        assert_eq!(pt.home(8), None);
        assert_eq!(pt.pages_at(2), 1);
    }

    #[test]
    fn reassign_moves_counts() {
        let mut pt = PageTable::new(12);
        pt.home_or_assign(1, || 0);
        pt.home_or_assign(2, || 0);
        assert_eq!(pt.reassign(1, 3), 0);
        assert_eq!(pt.pages_at(0), 1);
        assert_eq!(pt.pages_at(3), 1);
        assert_eq!(pt.home(1), Some(3));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn reassign_unmapped_panics() {
        PageTable::new(12).reassign(9, 1);
    }

    #[test]
    fn unmap_clears_entry() {
        let mut pt = PageTable::new(12);
        pt.home_or_assign(4, || 1);
        assert_eq!(pt.unmap(4), Some(1));
        assert_eq!(pt.unmap(4), None);
        assert_eq!(pt.pages_at(1), 0);
        assert!(pt.is_empty());
    }

    #[test]
    fn pages_homed_at_lists_only_that_node() {
        let mut pt = PageTable::new(12);
        pt.home_or_assign(1, || 0);
        pt.home_or_assign(2, || 1);
        pt.home_or_assign(3, || 0);
        let at0 = pt.pages_homed_at(0);
        assert_eq!(at0, vec![1, 3]);
        assert_eq!(pt.len(), 3);
    }

    #[test]
    fn evacuate_rehomes_every_page_in_order() {
        let mut pt = PageTable::new(12);
        for &p in &[9u64, 2, 17] {
            pt.home_or_assign(p, || 0);
        }
        pt.home_or_assign(5, || 1);
        let moved = pt.evacuate(0, |p| 1 + (p as usize % 2));
        assert_eq!(moved, vec![(2, 1), (9, 2), (17, 2)]);
        assert_eq!(pt.pages_at(0), 0);
        assert_eq!(pt.home(9), Some(2));
        assert_eq!(pt.pages_at(1), 2);
        assert!(pt.evacuate(0, |_| 1).is_empty());
    }

    #[test]
    fn pages_homed_at_is_sorted_regardless_of_touch_order() {
        let mut pt = PageTable::new(12);
        for &p in &[9u64, 2, 17, 4, 11] {
            pt.home_or_assign(p, || 0);
        }
        assert_eq!(
            pt.pages_homed_at(0),
            vec![2, 4, 9, 11, 17],
            "migration sweeps depend on a deterministic page order"
        );
    }

    #[test]
    fn iteration_is_ascending_across_chunk_boundaries() {
        let mut pt = PageTable::new(12);
        // Pages straddling three dense chunks, touched out of order.
        for &p in &[CHUNK as u64 * 2 + 5, 3, CHUNK as u64 - 1, CHUNK as u64, 7] {
            pt.home_or_assign(p, || 1);
        }
        let pages: Vec<Page> = pt.iter().map(|(p, _)| p).collect();
        assert_eq!(
            pages,
            vec![3, 7, CHUNK as u64 - 1, CHUNK as u64, CHUNK as u64 * 2 + 5]
        );
        assert_eq!(pt.len(), 5);
        // Unmapping in one chunk leaves the others untouched.
        assert_eq!(pt.unmap(CHUNK as u64), Some(1));
        assert_eq!(pt.iter().count(), 4);
    }
}
