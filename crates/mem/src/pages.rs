//! First-touch page placement.
//!
//! All three architectures in the paper allocate pages with a first-touch
//! policy: the first node to reference a page becomes (or chooses) its
//! home. The page table records the home node of every mapped page; homes
//! can later be reassigned (D-node reconfiguration moves the pages an
//! ex-D-node was serving) or unmapped (paged out to disk).

use std::collections::BTreeMap;

use crate::addr::Page;

/// Node index within the machine.
pub type NodeId = usize;

/// A page-number → home-node map with first-touch assignment.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::PageTable;
///
/// let mut pt = PageTable::new(12); // 4 KiB pages
/// let home = pt.home_or_assign(0x5000 >> 12, || 3);
/// assert_eq!(home, 3);
/// // Subsequent touches see the established home.
/// assert_eq!(pt.home_or_assign(0x5000 >> 12, || 9), 3);
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    page_shift: u32,
    // `BTreeMap` (not `HashMap`) so every sweep over pages — page-out
    // victim scans, reconfiguration migrations — observes a stable,
    // sorted order. The simulator's bit-determinism across runs depends
    // on this: `HashMap` iteration order varies per process (seeded
    // `RandomState`) and leaked into simulated time through
    // [`PageTable::pages_homed_at`].
    homes: BTreeMap<Page, NodeId>,
    per_node: BTreeMap<NodeId, u64>,
}

impl PageTable {
    /// Creates an empty table for pages of `1 << page_shift` bytes.
    pub fn new(page_shift: u32) -> Self {
        PageTable {
            page_shift,
            homes: BTreeMap::new(),
            per_node: BTreeMap::new(),
        }
    }

    /// Page size shift.
    pub fn page_shift(&self) -> u32 {
        self.page_shift
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        1 << self.page_shift
    }

    /// Home of `page`, if mapped.
    pub fn home(&self, page: Page) -> Option<NodeId> {
        self.homes.get(&page).copied()
    }

    /// Home of `page`, assigning it via `assign` on first touch.
    pub fn home_or_assign(&mut self, page: Page, assign: impl FnOnce() -> NodeId) -> NodeId {
        if let Some(&h) = self.homes.get(&page) {
            return h;
        }
        let h = assign();
        self.homes.insert(page, h);
        *self.per_node.entry(h).or_insert(0) += 1;
        h
    }

    /// Moves `page` to a new home. Returns the old home.
    ///
    /// # Panics
    ///
    /// Panics if the page is not mapped.
    pub fn reassign(&mut self, page: Page, new_home: NodeId) -> NodeId {
        let slot = self
            .homes
            .get_mut(&page)
            .expect("cannot reassign an unmapped page");
        let old = *slot;
        *slot = new_home;
        if let Some(c) = self.per_node.get_mut(&old) {
            *c -= 1;
        }
        *self.per_node.entry(new_home).or_insert(0) += 1;
        old
    }

    /// Unmaps `page` (paged out to disk). Returns its home, if it was
    /// mapped.
    pub fn unmap(&mut self, page: Page) -> Option<NodeId> {
        let home = self.homes.remove(&page)?;
        if let Some(c) = self.per_node.get_mut(&home) {
            *c -= 1;
        }
        Some(home)
    }

    /// Number of pages homed at `node`.
    pub fn pages_at(&self, node: NodeId) -> u64 {
        self.per_node.get(&node).copied().unwrap_or(0)
    }

    /// All pages homed at `node`, in ascending page order (deterministic:
    /// reconfiguration migrations iterate this list, so its order is part
    /// of the simulated behavior).
    pub fn pages_homed_at(&self, node: NodeId) -> Vec<Page> {
        self.homes
            .iter()
            .filter(|(_, &h)| h == node)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Evacuates every page homed at `victim`, choosing each page's new
    /// home via `choose`. Returns the evacuated `(page, new_home)` pairs in
    /// ascending page order — the deterministic sweep order crash recovery
    /// re-homes in.
    pub fn evacuate(
        &mut self,
        victim: NodeId,
        mut choose: impl FnMut(Page) -> NodeId,
    ) -> Vec<(Page, NodeId)> {
        let pages = self.pages_homed_at(victim);
        pages
            .into_iter()
            .map(|p| {
                let nh = choose(p);
                self.reassign(p, nh);
                (p, nh)
            })
            .collect()
    }

    /// Total mapped pages.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Iterates over `(page, home)` pairs in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (Page, NodeId)> + '_ {
        self.homes.iter().map(|(&p, &h)| (p, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_sticks() {
        let mut pt = PageTable::new(12);
        assert_eq!(pt.home_or_assign(7, || 2), 2);
        assert_eq!(pt.home_or_assign(7, || 5), 2);
        assert_eq!(pt.home(7), Some(2));
        assert_eq!(pt.home(8), None);
        assert_eq!(pt.pages_at(2), 1);
    }

    #[test]
    fn reassign_moves_counts() {
        let mut pt = PageTable::new(12);
        pt.home_or_assign(1, || 0);
        pt.home_or_assign(2, || 0);
        assert_eq!(pt.reassign(1, 3), 0);
        assert_eq!(pt.pages_at(0), 1);
        assert_eq!(pt.pages_at(3), 1);
        assert_eq!(pt.home(1), Some(3));
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn reassign_unmapped_panics() {
        PageTable::new(12).reassign(9, 1);
    }

    #[test]
    fn unmap_clears_entry() {
        let mut pt = PageTable::new(12);
        pt.home_or_assign(4, || 1);
        assert_eq!(pt.unmap(4), Some(1));
        assert_eq!(pt.unmap(4), None);
        assert_eq!(pt.pages_at(1), 0);
        assert!(pt.is_empty());
    }

    #[test]
    fn pages_homed_at_lists_only_that_node() {
        let mut pt = PageTable::new(12);
        pt.home_or_assign(1, || 0);
        pt.home_or_assign(2, || 1);
        pt.home_or_assign(3, || 0);
        let at0 = pt.pages_homed_at(0);
        assert_eq!(at0, vec![1, 3]);
        assert_eq!(pt.len(), 3);
    }

    #[test]
    fn evacuate_rehomes_every_page_in_order() {
        let mut pt = PageTable::new(12);
        for &p in &[9u64, 2, 17] {
            pt.home_or_assign(p, || 0);
        }
        pt.home_or_assign(5, || 1);
        let moved = pt.evacuate(0, |p| 1 + (p as usize % 2));
        assert_eq!(moved, vec![(2, 1), (9, 2), (17, 2)]);
        assert_eq!(pt.pages_at(0), 0);
        assert_eq!(pt.home(9), Some(2));
        assert_eq!(pt.pages_at(1), 2);
        assert!(pt.evacuate(0, |_| 1).is_empty());
    }

    #[test]
    fn pages_homed_at_is_sorted_regardless_of_touch_order() {
        let mut pt = PageTable::new(12);
        for &p in &[9u64, 2, 17, 4, 11] {
            pt.home_or_assign(p, || 0);
        }
        assert_eq!(
            pt.pages_homed_at(0),
            vec![2, 4, 9, 11, 17],
            "migration sweeps depend on a deterministic page order"
        );
    }
}
