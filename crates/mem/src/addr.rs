//! Address arithmetic.
//!
//! Byte addresses are `u64`. A [`Line`] is a line *number* (the byte
//! address shifted right by the line-size shift), and a [`Page`] is a page
//! number. Keeping these as plain integers keeps hot simulator paths
//! allocation- and conversion-free; the distinct aliases document intent at
//! API boundaries.

/// A cache/memory line number (byte address >> line shift).
pub type Line = u64;

/// A page number (byte address >> page shift).
pub type Page = u64;

/// Line number of a byte address for a line of size `1 << line_shift`.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::line_of;
/// assert_eq!(line_of(0x1000, 6), 0x40); // 64-byte lines
/// assert_eq!(line_of(0x103F, 6), 0x40);
/// assert_eq!(line_of(0x1040, 6), 0x41);
/// ```
#[inline]
pub const fn line_of(addr: u64, line_shift: u32) -> Line {
    addr >> line_shift
}

/// Page number of a byte address for a page of size `1 << page_shift`.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::page_of;
/// assert_eq!(page_of(0x2FFF, 12), 2); // 4 KiB pages
/// assert_eq!(page_of(0x3000, 12), 3);
/// ```
#[inline]
pub const fn page_of(addr: u64, page_shift: u32) -> Page {
    addr >> page_shift
}

/// Page number of a line, given both shifts.
///
/// # Panics
///
/// Debug-asserts that `page_shift >= line_shift`.
#[inline]
pub fn page_of_line(line: Line, line_shift: u32, page_shift: u32) -> Page {
    debug_assert!(page_shift >= line_shift);
    line >> (page_shift - line_shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_consistency() {
        let addr = 0xDEAD_BEEF_u64;
        let line = line_of(addr, 6);
        let page = page_of(addr, 12);
        assert_eq!(page_of_line(line, 6, 12), page);
    }

    #[test]
    fn adjacent_bytes_same_line() {
        assert_eq!(line_of(64, 6), line_of(127, 6));
        assert_ne!(line_of(64, 6), line_of(128, 6));
    }
}
