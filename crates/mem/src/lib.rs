//! Memory hierarchy models for the PIM-DSM simulator.
//!
//! The paper's node (Figure 1-(c)) is a PIM chip: a processor, two levels
//! of SRAM cache, a slab of on-chip DRAM, and an off-chip DRAM extension
//! reached over a dedicated high-bandwidth link. This crate models every
//! storage structure in that node:
//!
//! - [`SetAssocCache`] — generic set-associative cache with per-line
//!   payload, LRU replacement and pluggable victim-class priorities (the
//!   COMA replacement policy needs "invalid first, then shared non-master,
//!   then master").
//! - [`AttractionMemory`] — the paper's tagged local memory organized as a
//!   cache (Section 2.1.1), including the on-/off-chip residency split with
//!   exclusive line swapping at a memory-line grain.
//! - [`Dram`] — a bandwidth-limited memory device built on a
//!   [`Timeline`](pimdsm_engine::Timeline).
//! - [`PageTable`] — first-touch page placement with per-node capacity.
//! - [`KeyedQueue`] — a keyed FIFO/LRU list, reused by the attraction
//!   memory's on-chip LRU and by the AGG D-node's FreeList/SharedList.
//!
//! Addresses are plain `u64` byte addresses; [`line_of`] and [`page_of`]
//! convert them to line/page numbers.

pub mod addr;
pub mod attraction;
pub mod cache;
pub mod chunked_index;
pub mod dram;
pub mod keyed_queue;
pub mod pages;

pub use addr::{line_of, page_of, Line, Page};
pub use attraction::{AmInsert, AttractionMemory, Residency};
pub use cache::{CacheCfg, DrainAll, Evicted, SetAssocCache};
pub use chunked_index::ChunkedIndex;
pub use dram::Dram;
pub use keyed_queue::KeyedQueue;
pub use pages::PageTable;
