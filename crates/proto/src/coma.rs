//! Flat COMA baseline.
//!
//! Every node's local memory is an attraction memory; data migrates and
//! replicates freely. A line's *home* holds only the directory entry (flat
//! COMA), not necessarily the data — so a read of a shared line whose home
//! displaced its copy takes three hops via the master. There is no backing
//! store: replacement prefers invalid, then shared non-master lines; if a
//! master (or dirty) line must be replaced it is *injected* into another
//! node's memory, following Joe & Hennessy by trying the provider of the
//! incoming line first. Injections that no memory will absorb within a
//! bounded number of tries spill to disk (counted; essentially never
//! happens below 100% memory pressure).

use std::collections::BTreeMap;

use pimdsm_engine::{Cycle, Server};
use pimdsm_mem::{line_of, CacheCfg, Line, PageTable};
use pimdsm_net::{Mesh, NetCfg, NetStats, Network};

use crate::common::{
    Access, AmState, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level,
    MsgSize, NodeId, NodeSet, PreloadKind, ProtoStats,
};
use crate::pnode::{PNodeStore, WriteProbe};
use crate::system::{data_bytes, MemSystem};

/// Configuration of a [`ComaSystem`].
#[derive(Debug, Clone)]
pub struct ComaCfg {
    /// Number of nodes (each runs one application thread).
    pub nodes: usize,
    /// L1 geometry.
    pub l1: CacheCfg,
    /// L2 geometry.
    pub l2: CacheCfg,
    /// Attraction-memory geometry per node (4-way in the paper).
    pub am: CacheCfg,
    /// Lines of the attraction memory resident on chip.
    pub onchip_lines: u64,
    /// Line size shift.
    pub line_shift: u32,
    /// Page size shift.
    pub page_shift: u32,
    /// Latency table.
    pub lat: LatencyCfg,
    /// Message sizes.
    pub msg: MsgSize,
    /// Network timing (double-width links, as for NUMA).
    pub net: NetCfg,
    /// Directory controller costs (hardware).
    pub handler: HandlerCosts,
    /// Memory port bandwidth, bytes/cycle.
    pub mem_bytes_per_cycle: u64,
    /// Injection attempts before spilling to disk.
    pub injection_max_tries: usize,
}

impl ComaCfg {
    /// A paper-parameter configuration with the given per-node attraction
    /// memory capacity in lines.
    pub fn paper(nodes: usize, l1_kb: u64, l2_kb: u64, am_lines: u64) -> Self {
        let line_shift = 6;
        ComaCfg {
            nodes,
            l1: CacheCfg::new(l1_kb * 1024, 1, line_shift),
            l2: CacheCfg::new(l2_kb * 1024, 4, line_shift),
            am: CacheCfg::new(am_lines * 64, 4, line_shift),
            onchip_lines: am_lines / 2,
            line_shift,
            page_shift: 12,
            lat: LatencyCfg::default(),
            msg: MsgSize::default(),
            net: NetCfg {
                bytes_per_cycle: 4,
                ..NetCfg::default()
            },
            handler: HandlerCosts::paper(ControllerKind::Hardware),
            mem_bytes_per_cycle: 32,
            injection_max_tries: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: NodeSet,
    owner: Option<NodeId>,
    master: Option<NodeId>,
    on_disk: bool,
}

#[derive(Debug)]
struct ComaNode {
    store: PNodeStore,
    ctrl: Server,
}

/// COMA replacement priority: invalid ways are free, then shared
/// non-master lines, then master, then dirty (Section 3).
fn victim_class(s: &AmState) -> u32 {
    match s {
        AmState::Shared => 2,
        AmState::SharedMaster => 1,
        AmState::Dirty => 0,
    }
}

/// The flat-COMA machine.
#[derive(Debug)]
pub struct ComaSystem {
    cfg: ComaCfg,
    nodes: Vec<ComaNode>,
    // Sorted-key map: directory sweeps (the end-of-run census and any
    // whole-directory scan) must observe a deterministic order.
    dir: BTreeMap<Line, DirEntry>,
    pages: PageTable,
    net: Network,
    stats: ProtoStats,
}

impl ComaSystem {
    /// Builds an idle COMA machine.
    pub fn new(cfg: ComaCfg) -> Self {
        assert!(cfg.nodes > 0 && cfg.nodes <= NodeSet::MAX_NODES);
        // Calibrate device latencies so the end-to-end local round trip
        // (L2 probe + AM tag check + device + fill) lands on Table 1.
        let overhead = cfg.lat.l2 + cfg.lat.am_tag_check + cfg.lat.fill;
        let nodes = (0..cfg.nodes)
            .map(|_| ComaNode {
                store: PNodeStore::new(
                    cfg.l1,
                    cfg.l2,
                    cfg.am,
                    cfg.onchip_lines as usize,
                    cfg.lat.mem_on.saturating_sub(overhead),
                    cfg.lat.mem_off.saturating_sub(overhead),
                    cfg.mem_bytes_per_cycle,
                ),
                ctrl: Server::new(),
            })
            .collect();
        let net = Network::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        ComaSystem {
            pages: PageTable::new(cfg.page_shift),
            dir: BTreeMap::new(),
            nodes,
            net,
            stats: ProtoStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &ComaCfg {
        &self.cfg
    }

    /// Total injections performed so far (exposed for tests/benches).
    pub fn injections(&self) -> u64 {
        self.stats.injections
    }

    fn line_bytes(&self) -> u64 {
        1 << self.cfg.line_shift
    }

    fn msg_ctrl(&self) -> u32 {
        self.cfg.msg.ctrl
    }

    fn msg_data(&self) -> u32 {
        data_bytes(self.cfg.msg.data_header, self.cfg.line_shift)
    }

    /// Home (directory) of a line: first-touch, with the physical frame —
    /// and hence the directory entry — spilling to the least-loaded node
    /// once the toucher's share of frames is exhausted.
    fn home_of(&mut self, line: Line, toucher: NodeId) -> NodeId {
        let page = line >> (self.cfg.page_shift - self.cfg.line_shift);
        if let Some(h) = self.pages.home(page) {
            return h;
        }
        let lines_per_page = 1u64 << (self.cfg.page_shift - self.cfg.line_shift);
        let cap = self.cfg.am.capacity_lines() / lines_per_page;
        let home = if self.pages.pages_at(toucher) < cap {
            toucher
        } else {
            (0..self.cfg.nodes)
                .min_by_key(|&n| (self.pages.pages_at(n), n))
                .expect("at least one node")
        };
        self.pages.home_or_assign(page, || home)
    }

    fn dispatch(&mut self, node: NodeId, kind: HandlerKind, invals: u32, at: Cycle) -> Cycle {
        let (l, o) = self.cfg.handler.cost(kind, invals);
        self.nodes[node].ctrl.dispatch(at, l, o).reply_at
    }

    /// Local memory (AM data) access for a line already resident at
    /// `node`.
    fn mem_access(&mut self, node: NodeId, line: Line, at: Cycle) -> Cycle {
        let res = self.nodes[node]
            .store
            .am
            .touch(line)
            .expect("line must be resident for mem_access");
        let bytes = self.line_bytes();
        self.nodes[node].store.mem_access(res, at, bytes)
    }

    /// Invalidates every node in `targets` (caches and AM), acks to
    /// `collector`. Returns last ack arrival.
    fn invalidate_all(
        &mut self,
        targets: &[NodeId],
        line: Line,
        from: NodeId,
        collector: NodeId,
        at: Cycle,
    ) -> Cycle {
        let mut done = at;
        let ctrl = self.msg_ctrl();
        let (al, ao) = self.cfg.handler.cost(HandlerKind::Acknowledgment, 0);
        for &k in targets {
            self.stats.invalidations += 1;
            let t1 = self.net.send(from, k, ctrl, at);
            self.nodes[k].store.caches.invalidate(line);
            self.nodes[k].store.am.remove(line);
            let start = self.nodes[k].ctrl.occupy(t1, ao);
            let t2 = self.net.send(k, collector, ctrl, start + al);
            done = done.max(t2);
        }
        done
    }

    /// Inserts `line` into `node`'s attraction memory, handling the victim
    /// (silent drop with hint, or injection). `provider` is the node that
    /// supplied the incoming line (Joe & Hennessy's first injection
    /// target). Timing effects of the victim path are booked at `now` but
    /// do not extend the requesting transaction.
    fn am_fill(&mut self, node: NodeId, line: Line, state: AmState, provider: NodeId, now: Cycle) {
        let r = self.nodes[node].store.am.insert(line, state, victim_class);
        let Some(victim) = r.victim else { return };
        let vline = victim.line;
        // Inclusion: purge the victim from the private caches; a dirty
        // cached copy upgrades the victim state.
        let cached = self.nodes[node].store.caches.invalidate(vline);
        let vstate = match (victim.state, cached) {
            (_, Some(CState::Dirty)) => AmState::Dirty,
            (s, _) => s,
        };
        match vstate {
            AmState::Shared => self.drop_shared(node, vline, now),
            AmState::SharedMaster | AmState::Dirty => {
                self.inject(node, vline, vstate, provider, now)
            }
        }
    }

    /// Silent replacement of a shared non-master copy: drop locally, send
    /// an asynchronous hint so the directory stops tracking us.
    fn drop_shared(&mut self, node: NodeId, line: Line, now: Cycle) {
        let home = self
            .pages
            .home(line >> (self.cfg.page_shift - self.cfg.line_shift))
            .expect("resident line must be mapped");
        if let Some(e) = self.dir.get_mut(&line) {
            e.sharers.remove(node);
        }
        if home != node {
            let ctrl = self.msg_ctrl();
            let t = self.net.send(node, home, ctrl, now);
            let (_, ao) = self.cfg.handler.cost(HandlerKind::Acknowledgment, 0);
            self.nodes[home].ctrl.occupy(t, ao);
        }
    }

    /// Injects a replaced master/dirty line into another memory: try the
    /// provider, then the line's home, then nodes by distance. If nobody
    /// absorbs it without evicting another master, spill to disk.
    fn inject(&mut self, node: NodeId, line: Line, state: AmState, provider: NodeId, now: Cycle) {
        let home = self
            .pages
            .home(line >> (self.cfg.page_shift - self.cfg.line_shift))
            .expect("resident line must be mapped");

        let mut candidates: Vec<NodeId> = Vec::with_capacity(self.cfg.nodes + 1);
        for c in [provider, home] {
            if c != node && !candidates.contains(&c) {
                candidates.push(c);
            }
        }
        let mut others: Vec<NodeId> = (0..self.cfg.nodes)
            .filter(|&c| c != node && !candidates.contains(&c))
            .collect();
        others.sort_by_key(|&c| (self.net.hops(node, c), c));
        candidates.extend(others);

        let data = self.msg_data();
        if candidates.is_empty() {
            // Single-node machine: nowhere to inject, spill to disk.
            self.stats.disk_spills += 1;
            let e = self.dir.entry(line).or_default();
            e.sharers.remove(node);
            e.owner = None;
            e.master = None;
            e.on_disk = true;
            return;
        }
        // Find the nearest memory that can absorb the line without
        // displacing another master; only if no memory in the machine can
        // (true global set saturation) is the nearest one forced to
        // displace. Failed probes cost bounce messages (Joe & Hennessy's
        // injection chains), capped at the configured budget.
        // Prefer a memory with a genuinely free way; displacing another
        // node's attracted shared copy is second choice (it re-fetches
        // later — the memory pollution the paper attributes to COMA).
        let free_way = candidates.iter().position(|&c| {
            self.nodes[c]
                .store
                .am
                .peek_victim(line, victim_class)
                .is_none()
        });
        let shared_victim = || {
            candidates.iter().position(|&c| {
                matches!(
                    self.nodes[c].store.am.peek_victim(line, victim_class),
                    Some((_, AmState::Shared))
                )
            })
        };
        let chosen = free_way.or_else(shared_victim).unwrap_or(0);
        {
            let c = candidates[chosen];
            let bounces = chosen.min(self.cfg.injection_max_tries);
            let mut t_chain = now;
            let mut prev = node;
            for &hop in candidates.iter().take(bounces) {
                t_chain = self.net.send(prev, hop, data, t_chain);
                prev = hop;
            }
            self.stats.injections += 1;
            let t = self.net.send(prev, c, data, t_chain);
            let (wl, wo) = self.cfg.handler.cost(HandlerKind::WriteBack, 0);
            let g = self.nodes[c].ctrl.dispatch(t, wl, wo);
            let r = self.nodes[c].store.am.insert(line, state, victim_class);
            if let Some(sv) = r.victim {
                self.nodes[c].store.caches.invalidate(sv.line);
                match sv.state {
                    AmState::Shared => self.drop_shared(c, sv.line, g.reply_at),
                    // Forced displacement: the secondary master victim
                    // spills to disk (bounded: only when no memory in the
                    // machine had room).
                    _ => {
                        self.stats.disk_spills += 1;
                        let vline = sv.line;
                        let ve = self.dir.entry(vline).or_default();
                        ve.sharers.clear();
                        ve.owner = None;
                        ve.master = None;
                        ve.on_disk = true;
                    }
                }
            }
            self.mem_access(c, line, g.start);
            let e = self.dir.entry(line).or_default();
            match state {
                AmState::Dirty => {
                    e.owner = Some(c);
                    e.master = Some(c);
                    e.sharers = NodeSet::singleton(c);
                }
                _ => {
                    e.sharers.remove(node);
                    e.sharers.insert(c);
                    e.master = Some(c);
                }
            }
        }
    }

    /// Merges an L2 victim back into the local AM (inclusion guarantees
    /// residency).
    fn merge_l2_victim(&mut self, node: NodeId, victim: Option<(Line, CState)>) {
        let Some((line, state)) = victim else { return };
        if state == CState::Dirty {
            if let Some(s) = self.nodes[node].store.am.peek_mut(line) {
                *s = AmState::Dirty;
            }
            let e = self.dir.entry(line).or_default();
            e.owner = Some(node);
            e.master = Some(node);
        }
    }

    fn fill_caches(&mut self, node: NodeId, line: Line, state: CState) {
        let victim = self.nodes[node].store.caches.fill(line, state);
        self.merge_l2_victim(node, victim);
    }
}

impl MemSystem for ComaSystem {
    fn name(&self) -> &'static str {
        "COMA"
    }

    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        if let Some(level) = self.nodes[node].store.caches.read_probe(line) {
            let lat = match level {
                Level::L1 => self.cfg.lat.l1,
                _ => self.cfg.lat.l2,
            };
            self.stats.record_read(level, lat);
            return Access {
                done_at: now + lat,
                level,
            };
        }

        let t = now + self.cfg.lat.l2 + self.cfg.lat.am_tag_check;
        // Attraction-memory hit: the whole point of the organization.
        if let Some(res) = self.nodes[node].store.am.touch(line) {
            let bytes = self.line_bytes();
            let m = self.nodes[node].store.mem_access(res, t, bytes);
            let done = m + self.cfg.lat.fill;
            self.fill_caches(node, line, CState::Shared);
            self.stats.record_read(Level::LocalMem, done - now);
            return Access {
                done_at: done,
                level: Level::LocalMem,
            };
        }

        let home = self.home_of(line, node);
        let e = self.dir.get(&line).copied().unwrap_or_default();
        let ctrl = self.msg_ctrl();
        let data = self.msg_data();

        let (data_at, provider, level, new_state) = if e.on_disk {
            self.stats.disk_faults += 1;
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.dispatch(home, HandlerKind::Read, 0, t1);
            let t2 = self.net.send(home, node, data, g + self.cfg.lat.disk);
            let de = self.dir.entry(line).or_default();
            de.on_disk = false;
            de.master = Some(node);
            de.sharers = NodeSet::singleton(node);
            let lvl = if home == node {
                Level::LocalMem
            } else {
                Level::Hop2
            };
            (t2, home, lvl, AmState::SharedMaster)
        } else if let Some(k) = e.owner {
            debug_assert_ne!(k, node, "owner cannot miss in its own memory");
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.dispatch(home, HandlerKind::Read, 0, t1);
            let (arrive, lvl) = if k == home {
                let m = self.mem_access(home, line, g);
                (self.net.send(home, node, data, m), Level::Hop2)
            } else {
                let t2 = self.net.send(home, k, ctrl, g);
                let g2 = self.dispatch(k, HandlerKind::Read, 0, t2);
                let m = self.mem_access(k, line, g2);
                let lvl = if home == node {
                    Level::Hop2
                } else {
                    Level::Hop3
                };
                (self.net.send(k, node, data, m), lvl)
            };
            // Owner keeps the master copy, now shared.
            self.nodes[k].store.caches.downgrade(line);
            if let Some(s) = self.nodes[k].store.am.peek_mut(line) {
                *s = AmState::SharedMaster;
            }
            let de = self.dir.entry(line).or_default();
            de.owner = None;
            de.master = Some(k);
            de.sharers = NodeSet::singleton(k);
            de.sharers.insert(node);
            (arrive, k, lvl, AmState::Shared)
        } else if !e.sharers.is_empty() {
            let m_node = e.master.expect("shared lines must have a master");
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.dispatch(home, HandlerKind::Read, 0, t1);
            let home_has_copy = home != node && self.nodes[home].store.am.contains(line);
            let (arrive, supplier, lvl) = if home_has_copy {
                let m = self.mem_access(home, line, g);
                (self.net.send(home, node, data, m), home, Level::Hop2)
            } else {
                debug_assert_ne!(m_node, node);
                let (t2, lvl) = if m_node == home {
                    (g, Level::Hop2)
                } else {
                    self.stats.master_fetches += 1;
                    let fwd = self.net.send(home, m_node, ctrl, g);
                    let g2 = self.dispatch(m_node, HandlerKind::Read, 0, fwd);
                    let lvl = if home == node {
                        Level::Hop2
                    } else {
                        Level::Hop3
                    };
                    (g2, lvl)
                };
                let m = self.mem_access(m_node, line, t2);
                (self.net.send(m_node, node, data, m), m_node, lvl)
            };
            self.dir.entry(line).or_default().sharers.insert(node);
            (arrive, supplier, lvl, AmState::Shared)
        } else {
            // First touch: the line materializes (cold/zero data).
            let de = self.dir.entry(line).or_default();
            de.master = Some(node);
            de.sharers = NodeSet::singleton(node);
            if home == node {
                let g = self.dispatch(node, HandlerKind::Read, 0, t);
                (g, node, Level::LocalMem, AmState::SharedMaster)
            } else {
                let t1 = self.net.send(node, home, ctrl, t);
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                let t2 = self.net.send(home, node, data, g);
                (t2, home, Level::Hop2, AmState::SharedMaster)
            }
        };

        let done = data_at + self.cfg.lat.fill;
        self.am_fill(node, line, new_state, provider, done);
        self.fill_caches(node, line, CState::Shared);
        self.stats.record_read(level, done - now);
        Access {
            done_at: done,
            level,
        }
    }

    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        match self.nodes[node].store.caches.write_probe(line) {
            WriteProbe::Done(level) => {
                let lat = match level {
                    Level::L1 => self.cfg.lat.l1,
                    _ => self.cfg.lat.l2,
                };
                return Access {
                    done_at: now + lat,
                    level,
                };
            }
            WriteProbe::NeedUpgrade => {
                let t = now + self.cfg.lat.l2;
                let am_state = self.nodes[node]
                    .store
                    .am
                    .peek(line)
                    .copied()
                    .expect("cached line must be in the AM (inclusion)");
                if am_state == AmState::Dirty {
                    // Already exclusive at the memory level.
                    self.nodes[node].store.caches.mark_dirty(line);
                    return Access {
                        done_at: t + self.cfg.lat.am_tag_check,
                        level: Level::L2,
                    };
                }
                let home = self.home_of(line, node);
                let e = self.dir.entry(line).or_default();
                let targets: Vec<NodeId> = e.sharers.iter().filter(|&s| s != node).collect();
                e.sharers = NodeSet::singleton(node);
                e.owner = Some(node);
                e.master = Some(node);
                let (xl, xo) = self
                    .cfg
                    .handler
                    .cost(HandlerKind::ReadExclusive, targets.len() as u32);
                let ctrl = self.msg_ctrl();
                let (done, level) = if home == node {
                    let g = self.nodes[node].ctrl.dispatch(t, xl, xo);
                    let acks = self.invalidate_all(&targets, line, node, node, g.reply_at);
                    (acks.max(g.reply_at), Level::LocalMem)
                } else {
                    self.stats.remote_writes += 1;
                    let t1 = self.net.send(node, home, ctrl, t);
                    let g = self.nodes[home].ctrl.dispatch(t1, xl, xo);
                    let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                    let grant = self.net.send(home, node, ctrl, g.reply_at);
                    (acks.max(grant), Level::Hop2)
                };
                if let Some(s) = self.nodes[node].store.am.peek_mut(line) {
                    *s = AmState::Dirty;
                }
                self.nodes[node].store.caches.mark_dirty(line);
                return Access {
                    done_at: done + self.cfg.lat.fill,
                    level,
                };
            }
            WriteProbe::Miss => {}
        }

        let t = now + self.cfg.lat.l2 + self.cfg.lat.am_tag_check;
        // AM hit on a write miss in the caches.
        if let Some(&st) = self.nodes[node].store.am.peek(line) {
            let res = self.nodes[node].store.am.touch(line).expect("present");
            let bytes = self.line_bytes();
            let m = self.nodes[node].store.mem_access(res, t, bytes);
            if st == AmState::Dirty {
                self.fill_caches(node, line, CState::Dirty);
                return Access {
                    done_at: m + self.cfg.lat.fill,
                    level: Level::LocalMem,
                };
            }
            // Shared in our memory: upgrade through the home.
            let home = self.home_of(line, node);
            let e = self.dir.entry(line).or_default();
            let targets: Vec<NodeId> = e.sharers.iter().filter(|&s| s != node).collect();
            e.sharers = NodeSet::singleton(node);
            e.owner = Some(node);
            e.master = Some(node);
            let (xl, xo) = self
                .cfg
                .handler
                .cost(HandlerKind::ReadExclusive, targets.len() as u32);
            let ctrl = self.msg_ctrl();
            let (done, level) = if home == node {
                let g = self.nodes[node].ctrl.dispatch(t, xl, xo);
                let acks = self.invalidate_all(&targets, line, node, node, g.reply_at);
                (acks.max(m), Level::LocalMem)
            } else {
                self.stats.remote_writes += 1;
                let t1 = self.net.send(node, home, ctrl, t);
                let g = self.nodes[home].ctrl.dispatch(t1, xl, xo);
                let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                let grant = self.net.send(home, node, ctrl, g.reply_at);
                (acks.max(grant).max(m), Level::Hop2)
            };
            if let Some(s) = self.nodes[node].store.am.peek_mut(line) {
                *s = AmState::Dirty;
            }
            self.fill_caches(node, line, CState::Dirty);
            return Access {
                done_at: done + self.cfg.lat.fill,
                level,
            };
        }

        // Full read-exclusive: fetch data and invalidate everyone.
        let home = self.home_of(line, node);
        let e = self.dir.get(&line).copied().unwrap_or_default();
        let ctrl = self.msg_ctrl();
        let data = self.msg_data();
        let mut targets: Vec<NodeId> = e.sharers.iter().filter(|&s| s != node).collect();
        let (xl, xo) = self
            .cfg
            .handler
            .cost(HandlerKind::ReadExclusive, targets.len() as u32);

        let (data_at, provider, level) = if e.on_disk {
            self.stats.disk_faults += 1;
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.dispatch(home, HandlerKind::ReadExclusive, 0, t1);
            let t2 = self.net.send(home, node, data, g + self.cfg.lat.disk);
            self.dir.entry(line).or_default().on_disk = false;
            let lvl = if home == node {
                Level::LocalMem
            } else {
                Level::Hop2
            };
            (t2, home, lvl)
        } else if let Some(k) = e.owner {
            debug_assert_ne!(k, node);
            targets.retain(|&x| x != k); // the owner supplies and self-invalidates
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.nodes[home].ctrl.dispatch(t1, xl, xo).reply_at;
            let (arrive, lvl) = if k == home {
                let m = self.mem_access(home, line, g);
                (self.net.send(home, node, data, m), Level::Hop2)
            } else {
                let t2 = self.net.send(home, k, ctrl, g);
                let g2 = self.dispatch(k, HandlerKind::Read, 0, t2);
                let m = self.mem_access(k, line, g2);
                let lvl = if home == node {
                    Level::Hop2
                } else {
                    Level::Hop3
                };
                (self.net.send(k, node, data, m), lvl)
            };
            self.nodes[k].store.caches.invalidate(line);
            self.nodes[k].store.am.remove(line);
            self.stats.invalidations += 1;
            (arrive, k, lvl)
        } else if !e.sharers.is_empty() {
            let m_node = e.master.expect("shared lines must have a master");
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.nodes[home].ctrl.dispatch(t1, xl, xo).reply_at;
            let home_has_copy = home != node && self.nodes[home].store.am.contains(line);
            let (arrive, supplier, lvl) = if home_has_copy {
                let m = self.mem_access(home, line, g);
                (self.net.send(home, node, data, m), home, Level::Hop2)
            } else if m_node == node {
                unreachable!("master cannot miss in its own memory");
            } else {
                let (t2, lvl) = if m_node == home {
                    (g, Level::Hop2)
                } else {
                    let fwd = self.net.send(home, m_node, ctrl, g);
                    let g2 = self.dispatch(m_node, HandlerKind::Read, 0, fwd);
                    let lvl = if home == node {
                        Level::Hop2
                    } else {
                        Level::Hop3
                    };
                    (g2, lvl)
                };
                let m = self.mem_access(m_node, line, t2);
                (self.net.send(m_node, node, data, m), m_node, lvl)
            };
            let acks = self.invalidate_all(&targets, line, home, node, g);
            (arrive.max(acks), supplier, lvl)
        } else {
            // Cold write.
            if home == node {
                let g = self.dispatch(node, HandlerKind::ReadExclusive, 0, t);
                (g, node, Level::LocalMem)
            } else {
                self.stats.remote_writes += 1;
                let t1 = self.net.send(node, home, ctrl, t);
                let g = self.dispatch(home, HandlerKind::ReadExclusive, 0, t1);
                let t2 = self.net.send(home, node, data, g);
                (t2, home, Level::Hop2)
            }
        };

        let de = self.dir.entry(line).or_default();
        de.owner = Some(node);
        de.master = Some(node);
        de.sharers = NodeSet::singleton(node);
        let done = data_at + self.cfg.lat.fill;
        self.am_fill(node, line, AmState::Dirty, provider, done);
        self.fill_caches(node, line, CState::Dirty);
        Access {
            done_at: done,
            level,
        }
    }

    fn line_shift(&self) -> u32 {
        self.cfg.line_shift
    }

    fn compute_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes).collect()
    }

    fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    fn census(&self) -> Census {
        let mut c = Census {
            d_slots: self.cfg.am.capacity_lines() * self.cfg.nodes as u64,
            ..Census::default()
        };
        for e in self.dir.values() {
            if e.on_disk {
                c.paged_out += 1;
            } else if e.owner.is_some() {
                c.dirty_in_p += 1;
            } else if !e.sharers.is_empty() {
                c.shared_in_p += 1;
            }
        }
        c
    }

    fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    fn net_link_busy(&self) -> (Cycle, Cycle) {
        (self.net.total_link_busy(), self.net.max_link_busy())
    }

    fn controller_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let busy: Cycle = self.nodes.iter().map(|n| n.ctrl.busy_cycles()).sum();
        busy as f64 / (elapsed * self.nodes.len() as u64) as f64
    }

    fn attach_tracer(&mut self, tracer: pimdsm_obs::Tracer) {
        // COMA's hardware controllers emit no per-handler spans; link
        // transfers are still recorded by the network.
        self.net.attach_tracer(tracer);
    }

    fn epoch_probe(&self) -> pimdsm_obs::EpochProbe {
        pimdsm_obs::EpochProbe {
            ctrl_busy: self.nodes.iter().map(|n| n.ctrl.busy_cycles()).sum(),
            ctrl_count: self.nodes.len(),
            link_busy: self.net.total_link_busy(),
            link_count: self.net.num_links(),
            shared_list_depth: 0,
            free_slots: 0,
            reads_by_level: self.stats.reads_by_level,
            remote_writes: self.stats.remote_writes,
            net_messages: self.net.stats().messages,
        }
    }

    fn preload(&mut self, addr: u64, owner: NodeId, kind: PreloadKind) {
        let line = line_of(addr, self.cfg.line_shift);
        self.home_of(line, owner);
        if self.dir.contains_key(&line) {
            return;
        }
        // COMA has no backing store: the pre-existing copy must live in
        // some attraction memory. Cold private data sits dirty at its
        // owner; shared-init data ended up spread across the machine by
        // init-time capacity displacement (balance by free space, as the
        // long-run injection equilibrium would).
        let (state, candidates): (AmState, Vec<NodeId>) = match kind {
            PreloadKind::ColdPrivate => {
                let mut c: Vec<NodeId> = (0..self.cfg.nodes).collect();
                c.sort_by_key(|&n| (self.net.hops(owner, n), n));
                (AmState::Dirty, c)
            }
            PreloadKind::SharedInit => {
                let mut c: Vec<NodeId> = (0..self.cfg.nodes).collect();
                c.sort_by_key(|&n| (self.nodes[n].store.am.len(), n));
                (AmState::SharedMaster, c)
            }
        };
        for c in candidates {
            if self.nodes[c].store.am.has_room_for(line) {
                self.nodes[c].store.am.insert(line, state, victim_class);
                let e = self.dir.entry(line).or_default();
                e.master = Some(c);
                e.sharers = NodeSet::singleton(c);
                if state == AmState::Dirty {
                    e.owner = Some(c);
                }
                return;
            }
        }
        // Pathological set pressure everywhere: the copy sits on disk.
        self.dir.entry(line).or_default().on_disk = true;
        self.stats.disk_spills += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(am_lines: u64) -> ComaSystem {
        ComaSystem::new(ComaCfg::paper(4, 8, 32, am_lines))
    }

    #[test]
    fn cold_read_materializes_master_locally() {
        let mut s = sys(1024);
        let a = s.read(0, 0x1000, 0);
        assert_eq!(a.level, Level::LocalMem);
        assert_eq!(
            s.nodes[0].store.am.peek(0x1000 >> 6),
            Some(&AmState::SharedMaster)
        );
    }

    #[test]
    fn remote_read_attracts_copy() {
        let mut s = sys(1024);
        s.read(0, 0x1000, 0);
        let a = s.read(1, 0x1000, 1000);
        assert_eq!(a.level, Level::Hop2);
        // Second access by node 1 is now a local memory hit.
        s.nodes[1].store.caches.invalidate(0x1000 >> 6);
        let b = s.read(1, 0x1000, 100_000);
        assert_eq!(b.level, Level::LocalMem);
    }

    #[test]
    fn read_of_dirty_line_leaves_shared_master_at_owner() {
        let mut s = sys(1024);
        s.write(0, 0x1000, 0);
        let a = s.read(1, 0x1000, 1000);
        assert_ne!(a.level, Level::LocalMem);
        assert_eq!(
            s.nodes[0].store.am.peek(0x1000 >> 6),
            Some(&AmState::SharedMaster)
        );
        assert_eq!(
            s.nodes[1].store.am.peek(0x1000 >> 6),
            Some(&AmState::Shared)
        );
        let e = s.dir.get(&(0x1000 >> 6)).unwrap();
        assert_eq!(e.owner, None);
        assert_eq!(e.master, Some(0));
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut s = sys(1024);
        s.read(0, 0x1000, 0);
        s.read(1, 0x1000, 1000);
        s.write(2, 0x1000, 10_000);
        assert!(s.nodes[0].store.am.peek(0x1000 >> 6).is_none());
        assert!(s.nodes[1].store.am.peek(0x1000 >> 6).is_none());
        assert_eq!(s.nodes[2].store.am.peek(0x1000 >> 6), Some(&AmState::Dirty));
        let e = s.dir.get(&(0x1000 >> 6)).unwrap();
        assert_eq!(e.owner, Some(2));
    }

    #[test]
    fn upgrade_of_am_dirty_is_local() {
        let mut s = sys(1024);
        s.write(0, 0x1000, 0);
        s.read(0, 0x1000, 100); // caches now shared on a dirty AM line
        let line = 0x1000 >> 6;
        s.nodes[0].store.caches.invalidate(line);
        s.read(0, 0x1000, 200);
        let a = s.write(0, 0x1000, 300);
        assert!(
            a.done_at - 300 < 60,
            "local upgrade was {}",
            a.done_at - 300
        );
    }

    #[test]
    fn replacement_prefers_shared_over_master() {
        // AM: 1 set × 2 ways per node.
        let mut cfg = ComaCfg::paper(2, 8, 32, 4);
        cfg.am = CacheCfg::new(2 * 64, 2, 6);
        let mut s = ComaSystem::new(cfg);
        // Node 0: master of line A (cold write), shared copy of line B.
        s.write(0, 0, 0); // A: dirty master at 0
        s.read(1, 64, 0); // B homed/mastered at node 1
        s.read(0, 64, 1000); // node 0 gets shared copy of B
                             // New line C at node 0 must evict the shared B, not dirty A.
        s.write(0, 128, 10_000);
        let am = &s.nodes[0].store.am;
        assert!(am.contains(0), "dirty master kept");
        assert!(am.contains(2), "new line inserted");
        assert!(!am.contains(1), "shared copy evicted");
        assert_eq!(s.injections(), 0);
    }

    #[test]
    fn master_replacement_injects() {
        // AM: 1 set × 1 way per node → any second line evicts a master.
        let mut cfg = ComaCfg::paper(3, 8, 32, 4);
        cfg.am = CacheCfg::new(64, 1, 6);
        cfg.l1 = CacheCfg::new(64, 1, 6);
        cfg.l2 = CacheCfg::new(64, 1, 6);
        let mut s = ComaSystem::new(cfg);
        s.write(0, 0, 0); // line 0 dirty master at node 0
        s.write(0, 64, 1000); // line 1 evicts it → injection
        assert_eq!(s.injections(), 1);
        // The dirty line must still live somewhere.
        let e = s.dir.get(&0).unwrap();
        let holder = e.owner.expect("still dirty somewhere");
        assert!(s.nodes[holder].store.am.contains(0));
        assert_ne!(holder, 0);
    }

    #[test]
    fn forced_injection_spills_displaced_master_to_disk() {
        // Every node: 1-line AM, all full of masters. Evicting a master
        // from node 0 forces node 1 to take it in, spilling node 1's own
        // master (line 1) to disk.
        let mut cfg = ComaCfg::paper(2, 8, 32, 4);
        cfg.am = CacheCfg::new(64, 1, 6);
        cfg.l1 = CacheCfg::new(64, 1, 6);
        cfg.l2 = CacheCfg::new(64, 1, 6);
        cfg.injection_max_tries = 1;
        let mut s = ComaSystem::new(cfg);
        s.write(0, 0, 0);
        s.write(1, 64, 0); // node 1's AM full with its own master
        s.write(0, 128, 1000); // evicts line 0 → forced injection at node 1
        assert_eq!(s.stats().disk_spills, 1);
        // The injected line survived at node 1; node 1's old master spilled.
        let injected = s.dir.get(&0).unwrap();
        assert_eq!(injected.owner, Some(1));
        assert!(s.nodes[1].store.am.contains(0));
        let spilled = s.dir.get(&1).unwrap();
        assert!(spilled.on_disk);
        // Reading the spilled line faults from disk.
        let a = s.read(0, 64, 1_000_000);
        assert!(a.done_at - 1_000_000 >= s.cfg.lat.disk);
        assert_eq!(s.stats().disk_faults, 1);
    }

    #[test]
    fn three_hop_when_home_displaced() {
        let mut s = sys(1024);
        // Page homed at node 0 but mastered at node 1 after a cold write
        // at 0... instead: node 0 touches (master), node 1 writes (owner),
        // node 2 reads → 3 hops via node 1.
        s.read(0, 0x1000, 0);
        s.write(1, 0x1000, 1000);
        let a = s.read(2, 0x1000, 10_000);
        assert_eq!(a.level, Level::Hop3);
    }

    #[test]
    fn cache_hit_levels() {
        let mut s = sys(1024);
        s.read(0, 0x1000, 0);
        assert_eq!(s.read(0, 0x1000, 100).level, Level::L1);
    }
}
