//! Flat COMA baseline.
//!
//! Every node's local memory is an attraction memory; data migrates and
//! replicates freely. A line's *home* holds only the directory entry (flat
//! COMA), not necessarily the data — so a read of a shared line whose home
//! displaced its copy takes three hops via the master. There is no backing
//! store: replacement prefers invalid, then shared non-master lines; if a
//! master (or dirty) line must be replaced it is *injected* into another
//! node's memory, following Joe & Hennessy by trying the provider of the
//! incoming line first. Injections that no memory will absorb within a
//! bounded number of tries spill to disk (counted; essentially never
//! happens below 100% memory pressure).
//!
//! The shared per-node substrate (homing, interconnect, handler costs,
//! statistics, tracing) lives in the [`Fabric`]; each memory transaction
//! walks over [`Txn`] steps so contended resources are booked in protocol
//! order and every cycle of latency is attributed to a component.

use pimdsm_engine::{Cycle, Server, ServerGrant};
use pimdsm_faults::{Durability, RecoveryStats};
use pimdsm_mem::{line_of, CacheCfg, ChunkedIndex, Line};
use pimdsm_net::{Mesh, NetCfg, Network};
use pimdsm_obs::breakdown::{NETWORK, QUEUE};

use crate::common::{
    Access, AmState, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level,
    MsgSize, NodeId, NodeList, NodeSet, PreloadKind,
};
use crate::fabric::Fabric;
use crate::pnode::{victim_class, PNodeStore, WriteProbe};
use crate::system::MemSystem;
use crate::txn::{cache_hit, Txn, TxnKind};

/// Configuration of a [`ComaSystem`].
#[derive(Debug, Clone)]
pub struct ComaCfg {
    /// Number of nodes (each runs one application thread).
    pub nodes: usize,
    /// L1 geometry.
    pub l1: CacheCfg,
    /// L2 geometry.
    pub l2: CacheCfg,
    /// Attraction-memory geometry per node (4-way in the paper).
    pub am: CacheCfg,
    /// Lines of the attraction memory resident on chip.
    pub onchip_lines: u64,
    /// Line size shift.
    pub line_shift: u32,
    /// Page size shift.
    pub page_shift: u32,
    /// Latency table.
    pub lat: LatencyCfg,
    /// Message sizes.
    pub msg: MsgSize,
    /// Network timing (double-width links, as for NUMA).
    pub net: NetCfg,
    /// Directory controller costs (hardware).
    pub handler: HandlerCosts,
    /// Memory port bandwidth, bytes/cycle.
    pub mem_bytes_per_cycle: u64,
    /// Injection attempts before spilling to disk.
    pub injection_max_tries: usize,
}

impl ComaCfg {
    /// A paper-parameter configuration with the given per-node attraction
    /// memory capacity in lines.
    pub fn paper(nodes: usize, l1_kb: u64, l2_kb: u64, am_lines: u64) -> Self {
        let line_shift = 6;
        ComaCfg {
            nodes,
            l1: CacheCfg::new(l1_kb * 1024, 1, line_shift),
            l2: CacheCfg::new(l2_kb * 1024, 4, line_shift),
            am: CacheCfg::new(am_lines * 64, 4, line_shift),
            onchip_lines: am_lines / 2,
            line_shift,
            page_shift: 12,
            lat: LatencyCfg::default(),
            msg: MsgSize::default(),
            net: NetCfg {
                bytes_per_cycle: 4,
                ..NetCfg::default()
            },
            handler: HandlerCosts::paper(ControllerKind::Hardware),
            mem_bytes_per_cycle: 32,
            injection_max_tries: 8,
        }
    }
}

/// Directory entry of one line (the flat-COMA home holds only this state,
/// not necessarily the data).
#[derive(Debug, Clone, Copy, Default)]
pub struct DirEntry {
    /// Nodes whose attraction memory holds a copy.
    pub sharers: NodeSet,
    /// Exclusive (dirty) holder, if any.
    pub owner: Option<NodeId>,
    /// Holder of the master copy.
    pub master: Option<NodeId>,
    /// The only copy was spilled to disk by a forced injection.
    pub on_disk: bool,
}

/// Two-level directory storage: a chunked page index into an arena of
/// per-page entry chunks (`lines_per_page` slots each). The hot lookup —
/// one per coherence transaction — is two indexations instead of a
/// sorted-map walk, and every sweep iterates pages and slots in
/// ascending order: the same ascending-line order the previous
/// `BTreeMap<Line, DirEntry>` produced, which the determinism guards
/// pin down. Entries are never removed (a line's directory state
/// persists for the run), so the arena needs no free list.
#[derive(Debug)]
struct ComaDir {
    lpp: u64,
    pages: ChunkedIndex,
    slab: Vec<Box<[Option<DirEntry>]>>,
}

impl ComaDir {
    fn new(lpp: u64) -> Self {
        ComaDir {
            lpp,
            pages: ChunkedIndex::new(),
            slab: Vec::new(),
        }
    }

    fn get(&self, line: Line) -> Option<&DirEntry> {
        let ci = self.pages.get(line / self.lpp)?;
        self.slab[ci as usize][(line % self.lpp) as usize].as_ref()
    }

    fn get_mut(&mut self, line: Line) -> Option<&mut DirEntry> {
        let ci = self.pages.get(line / self.lpp)?;
        self.slab[ci as usize][(line % self.lpp) as usize].as_mut()
    }

    fn entry_or_default(&mut self, line: Line) -> &mut DirEntry {
        let page = line / self.lpp;
        let ci = match self.pages.get(page) {
            Some(ci) => ci,
            None => {
                self.slab
                    .push(vec![None; self.lpp as usize].into_boxed_slice());
                let ci = (self.slab.len() - 1) as u32;
                self.pages.insert(page, ci);
                ci
            }
        };
        self.slab[ci as usize][(line % self.lpp) as usize].get_or_insert_with(DirEntry::default)
    }

    fn contains(&self, line: Line) -> bool {
        self.get(line).is_some()
    }

    /// All lines with an entry, ascending.
    fn keys(&self) -> Vec<Line> {
        self.iter_deterministic().map(|(l, _)| l).collect()
    }

    /// Iterates `(line, entry)` in ascending line order — the directory's
    /// deterministic index order (sorted pages, ascending slots).
    fn iter_deterministic(&self) -> impl Iterator<Item = (Line, &DirEntry)> {
        self.pages.iter().flat_map(move |(page, ci)| {
            self.slab[ci as usize]
                .iter()
                .enumerate()
                .filter_map(move |(si, e)| e.as_ref().map(|e| (page * self.lpp + si as u64, e)))
        })
    }

    /// Iterates entries in ascending line order.
    fn values(&self) -> impl Iterator<Item = &DirEntry> {
        self.iter_deterministic().map(|(_, e)| e)
    }
}

/// The flat-COMA machine.
#[derive(Debug)]
pub struct ComaSystem {
    cfg: ComaCfg,
    nodes: Vec<PNodeStore>,
    ctrls: Vec<Server>,
    // Two-level table: directory sweeps (the end-of-run census, the
    // coherence oracle) must observe a deterministic ascending-line
    // order, which the chunked storage yields by construction.
    dir: ComaDir,
    fab: Fabric,
}

impl ComaSystem {
    /// Builds an idle COMA machine.
    pub fn new(cfg: ComaCfg) -> Self {
        assert!(cfg.nodes > 0 && cfg.nodes <= NodeSet::MAX_NODES);
        let nodes = (0..cfg.nodes)
            .map(|_| {
                PNodeStore::calibrated(
                    cfg.l1,
                    cfg.l2,
                    cfg.am,
                    cfg.onchip_lines as usize,
                    &cfg.lat,
                    cfg.mem_bytes_per_cycle,
                )
            })
            .collect();
        let net = Network::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        let fab = Fabric::new(
            cfg.line_shift,
            cfg.page_shift,
            cfg.lat,
            cfg.msg,
            cfg.handler,
            net,
        );
        ComaSystem {
            ctrls: (0..cfg.nodes).map(|_| Server::new()).collect(),
            dir: ComaDir::new(fab.lines_per_page()),
            nodes,
            fab,
            cfg,
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &ComaCfg {
        &self.cfg
    }

    /// Total injections performed so far (exposed for tests/benches).
    pub fn injections(&self) -> u64 {
        self.fab.stats.injections
    }

    /// Attraction-memory state of a line at `node`, without LRU effects.
    pub fn am_state(&self, node: NodeId, line: Line) -> Option<AmState> {
        self.nodes[node].am.peek(line).copied()
    }

    /// The directory entry of a line, if one exists.
    pub fn dir_entry(&self, line: Line) -> Option<&DirEntry> {
        self.dir.get(line)
    }

    pub(crate) fn dir_lines(&self) -> Vec<Line> {
        self.dir.keys()
    }

    pub(crate) fn n_nodes(&self) -> usize {
        self.cfg.nodes
    }

    pub(crate) fn pstore_ref(&self, p: NodeId) -> &PNodeStore {
        &self.nodes[p]
    }

    /// Drops an address from a node's private caches without touching its
    /// attraction memory or the directory — a probe helper for tests
    /// (equivalent to capacity-evicting the line from the SRAM caches).
    pub fn purge_caches(&mut self, node: NodeId, addr: u64) {
        let line = line_of(addr, self.cfg.line_shift);
        self.nodes[node].purge_caches(line);
    }

    /// Home (directory) of a line: first-touch, with the physical frame —
    /// and hence the directory entry — spilling to the least-loaded node
    /// once the toucher's share of frames is exhausted.
    fn home_of(&mut self, line: Line, toucher: NodeId) -> NodeId {
        let cap = self.cfg.am.capacity_lines() / self.fab.lines_per_page();
        self.fab
            .first_touch_home(line, toucher, self.cfg.nodes, cap)
    }

    fn dispatch(&mut self, node: NodeId, kind: HandlerKind, invals: u32, at: Cycle) -> ServerGrant {
        self.fab
            .dispatch(&mut self.ctrls[node], node, kind, invals, at)
    }

    /// Local memory (AM data) access for a line already resident at
    /// `node`.
    fn mem_access(&mut self, node: NodeId, line: Line, at: Cycle) -> Cycle {
        let res = self.nodes[node]
            .am
            .touch(line)
            .expect("line must be resident for mem_access");
        let bytes = self.fab.line_bytes();
        self.nodes[node].mem_access(res, at, bytes)
    }

    /// Supplies the line's data to `node` from holder `k`, behind the
    /// home's already-dispatched handler: straight from the home's memory
    /// when `k == home`, else via a forward hop to `k` (whose controller
    /// runs a Read handler — a master fetch when `count_master_fetch`).
    /// Returns the resulting access level.
    fn supply_from(
        &mut self,
        tx: &mut Txn,
        node: NodeId,
        home: NodeId,
        k: NodeId,
        line: Line,
        count_master_fetch: bool,
    ) -> Level {
        debug_assert_ne!(k, node, "supplier cannot be the requestor");
        let data = self.fab.msg_data();
        if k == home {
            let m = self.mem_access(home, line, tx.at());
            tx.dram(m);
            tx.send(&mut self.fab, home, node, data);
            Level::Hop2
        } else {
            if count_master_fetch {
                self.fab.stats.master_fetches += 1;
            }
            let ctrl = self.fab.msg_ctrl();
            let fwd = tx.send(&mut self.fab, home, k, ctrl);
            let g2 = self.dispatch(k, HandlerKind::Read, 0, fwd);
            tx.handler(g2);
            let m = self.mem_access(k, line, tx.at());
            tx.dram(m);
            tx.send(&mut self.fab, k, node, data);
            if home == node {
                Level::Hop2
            } else {
                Level::Hop3
            }
        }
    }

    /// The home round of a cold (first-touch) access: dispatch `kind` at
    /// the home, which grants the materialized line to the requestor.
    fn cold_round(&mut self, tx: &mut Txn, node: NodeId, home: NodeId, kind: HandlerKind) -> Level {
        if home == node {
            let g = self.dispatch(node, kind, 0, tx.at());
            tx.handler(g);
            Level::LocalMem
        } else {
            if kind == HandlerKind::ReadExclusive {
                self.fab.stats.remote_writes += 1;
            }
            let ctrl = self.fab.msg_ctrl();
            let data = self.fab.msg_data();
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, kind, 0, t1);
            tx.handler(g);
            tx.send(&mut self.fab, home, node, data);
            Level::Hop2
        }
    }

    /// Invalidates every node in `targets` (caches and AM), acks to
    /// `collector`. Returns last ack arrival.
    fn invalidate_all(
        &mut self,
        targets: &[NodeId],
        line: Line,
        from: NodeId,
        collector: NodeId,
        at: Cycle,
    ) -> Cycle {
        let nodes = &mut self.nodes;
        self.fab
            .invalidate_fanout(&mut self.ctrls, targets, from, collector, at, |k| {
                nodes[k].caches.invalidate(line);
                nodes[k].am.remove(line);
            })
    }

    /// Inserts `line` into `node`'s attraction memory, handling the victim
    /// (silent drop with hint, or injection). `provider` is the node that
    /// supplied the incoming line (Joe & Hennessy's first injection
    /// target). Timing effects of the victim path are booked at `now` but
    /// do not extend the requesting transaction.
    fn am_fill(&mut self, node: NodeId, line: Line, state: AmState, provider: NodeId, now: Cycle) {
        let r = self.nodes[node].am.insert(line, state, victim_class);
        let Some(victim) = r.victim else { return };
        let vline = victim.line;
        self.fab.am_swap(node, line, vline, now);
        // Inclusion: purge the victim from the private caches; a dirty
        // cached copy upgrades the victim state.
        let cached = self.nodes[node].caches.invalidate(vline);
        let vstate = match (victim.state, cached) {
            (_, Some(CState::Dirty)) => AmState::Dirty,
            (s, _) => s,
        };
        match vstate {
            AmState::Shared => self.drop_shared(node, vline, now),
            AmState::SharedMaster | AmState::Dirty => {
                self.inject(node, vline, vstate, provider, now)
            }
        }
    }

    /// Silent replacement of a shared non-master copy: drop locally, send
    /// an asynchronous hint so the directory stops tracking us.
    fn drop_shared(&mut self, node: NodeId, line: Line, now: Cycle) {
        let home = self.fab.mapped_home(line);
        if let Some(e) = self.dir.get_mut(line) {
            e.sharers.remove(node);
        }
        if home != node {
            let ctrl = self.fab.msg_ctrl();
            let t = self.fab.net.send(node, home, ctrl, now);
            self.fab.hint_occupy(&mut self.ctrls[home], home, t);
        }
    }

    /// Injects a replaced master/dirty line into another memory: try the
    /// provider, then the line's home, then nodes by distance. If nobody
    /// absorbs it without evicting another master, spill to disk.
    fn inject(&mut self, node: NodeId, line: Line, state: AmState, provider: NodeId, now: Cycle) {
        let home = self.fab.mapped_home(line);

        let mut candidates = NodeList::new();
        for c in [provider, home] {
            if c != node && !candidates.contains(&c) && !self.fab.dead.contains(c) {
                candidates.push(c);
            }
        }
        let mut others = NodeList::new();
        for c in (0..self.cfg.nodes)
            .filter(|&c| c != node && !candidates.contains(&c) && !self.fab.dead.contains(c))
        {
            others.push(c);
        }
        // Keys are unique per candidate, so the unstable (allocation-free)
        // sort is deterministic.
        others.sort_unstable_by_key(|&c| (self.fab.net.hops(node, c), c));
        for &c in others.iter() {
            candidates.push(c);
        }

        let data = self.fab.msg_data();
        if candidates.is_empty() {
            // Single-node machine: nowhere to inject, spill to disk.
            self.fab.stats.disk_spills += 1;
            let e = self.dir.entry_or_default(line);
            e.sharers.remove(node);
            e.owner = None;
            e.master = None;
            e.on_disk = true;
            return;
        }
        // Find the nearest memory that can absorb the line without
        // displacing another master; only if no memory in the machine can
        // (true global set saturation) is the nearest one forced to
        // displace. Failed probes cost bounce messages (Joe & Hennessy's
        // injection chains), capped at the configured budget.
        // Prefer a memory with a genuinely free way; displacing another
        // node's attracted shared copy is second choice (it re-fetches
        // later — the memory pollution the paper attributes to COMA).
        let free_way = candidates
            .iter()
            .position(|&c| self.nodes[c].am.peek_victim(line, victim_class).is_none());
        let shared_victim = || {
            candidates.iter().position(|&c| {
                matches!(
                    self.nodes[c].am.peek_victim(line, victim_class),
                    Some((_, AmState::Shared))
                )
            })
        };
        let chosen = free_way.or_else(shared_victim).unwrap_or(0);
        let c = candidates[chosen];
        let bounces = chosen.min(self.cfg.injection_max_tries);
        let mut t_chain = now;
        let mut prev = node;
        for &hop in candidates.iter().take(bounces) {
            t_chain = self.fab.net.send(prev, hop, data, t_chain);
            prev = hop;
        }
        self.fab.stats.injections += 1;
        let t = self.fab.net.send(prev, c, data, t_chain);
        let g = self.dispatch(c, HandlerKind::WriteBack, 0, t);
        self.fab.am_inject(c, line, g.start);
        let r = self.nodes[c].am.insert(line, state, victim_class);
        if let Some(sv) = r.victim {
            self.nodes[c].caches.invalidate(sv.line);
            match sv.state {
                AmState::Shared => self.drop_shared(c, sv.line, g.reply_at),
                // Forced displacement: the secondary master victim spills
                // to disk (bounded: only when no memory in the machine had
                // room).
                _ => {
                    self.fab.stats.disk_spills += 1;
                    let ve = self.dir.entry_or_default(sv.line);
                    ve.sharers.clear();
                    ve.owner = None;
                    ve.master = None;
                    ve.on_disk = true;
                }
            }
        }
        self.mem_access(c, line, g.start);
        let e = self.dir.entry_or_default(line);
        match state {
            AmState::Dirty => {
                e.owner = Some(c);
                e.master = Some(c);
                e.sharers = NodeSet::singleton(c);
            }
            _ => {
                e.sharers.remove(node);
                e.sharers.insert(c);
                e.master = Some(c);
            }
        }
    }

    /// Recalls stale attracted copies of an on-disk line as it
    /// re-materializes — no sharer bits survive to fan out over.
    fn purge_stale(&mut self, node: NodeId, line: Line) {
        for p in (0..self.cfg.nodes).filter(|&p| p != node) {
            self.nodes[p].caches.invalidate(line);
            self.nodes[p].am.remove(line);
        }
    }

    /// An attracted home copy short-circuits the master fetch.
    fn pick_supplier(&self, node: NodeId, home: NodeId, m_node: NodeId, line: Line) -> NodeId {
        if home != node && self.nodes[home].am.contains(line) {
            home
        } else {
            m_node
        }
    }

    /// Fills the private caches, reinstating ownership here if a dirty L2
    /// victim merged back into the local AM.
    fn fill_caches(&mut self, node: NodeId, line: Line, state: CState) {
        let victim = self.nodes[node].fill_caches(line, state);
        if let Some((vline, CState::Dirty)) = victim {
            let e = self.dir.entry_or_default(vline);
            e.owner = Some(node);
            e.master = Some(node);
        }
    }

    /// The invalidation round of an ownership upgrade: directory mutation,
    /// `ReadExclusive` dispatch at the home, sharer fan-out, and (for a
    /// remote home) the ownership grant back to the writer.
    /// Pays the bounded retry wait if `line`'s page is mid-recovery.
    fn await_recovery(&mut self, tx: &mut Txn, node: NodeId, line: Line) {
        let page = self.fab.page_of(line);
        let w = self.fab.retry_wait(node, page, tx.at());
        if w > 0 {
            let resume = tx.at() + w;
            tx.to(QUEUE, resume);
        }
    }

    fn upgrade_round(&mut self, tx: &mut Txn, node: NodeId, line: Line) -> Level {
        let home = self.home_of(line, node);
        self.await_recovery(tx, node, line);
        if std::mem::take(&mut self.dir.entry_or_default(line).on_disk) {
            self.purge_stale(node, line);
        }
        let e = self.dir.entry_or_default(line);
        let targets = NodeList::sharers_except(&e.sharers, node);
        e.sharers = NodeSet::singleton(node);
        e.owner = Some(node);
        e.master = Some(node);
        let n_inv = targets.len() as u32;
        let ctrl = self.fab.msg_ctrl();
        if home == node {
            let g = self.dispatch(node, HandlerKind::ReadExclusive, n_inv, tx.at());
            tx.handler(g);
            let acks = self.invalidate_all(&targets, line, node, node, g.reply_at);
            tx.to(NETWORK, acks);
            Level::LocalMem
        } else {
            self.fab.stats.remote_writes += 1;
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, HandlerKind::ReadExclusive, n_inv, t1);
            tx.handler(g);
            let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
            tx.send(&mut self.fab, home, node, ctrl);
            tx.to(NETWORK, acks);
            Level::Hop2
        }
    }

    fn read_walk(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        if let Some(level) = self.nodes[node].caches.read_probe(line) {
            return cache_hit(&mut self.fab, level, now, true);
        }

        let mut tx = Txn::start(node, line, now);
        tx.probe(self.fab.lat.l2 + self.fab.lat.am_tag_check);
        // Attraction-memory hit: the whole point of the organization.
        if self.nodes[node].am.contains(line) {
            self.fab.am_hit(node, line, tx.at());
            let m = self.mem_access(node, line, tx.at());
            tx.dram(m);
            tx.fill(&self.fab);
            self.fill_caches(node, line, CState::Shared);
            return tx.finish(&mut self.fab, Level::LocalMem, TxnKind::Read, false);
        }
        self.fab.am_miss(node, line, tx.at());

        let home = self.home_of(line, node);
        self.await_recovery(&mut tx, node, line);
        let e = self.dir.get(line).copied().unwrap_or_default();
        let ctrl = self.fab.msg_ctrl();
        let data = self.fab.msg_data();

        let (provider, level, new_state) = if e.on_disk {
            self.fab.stats.disk_faults += 1;
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            self.fab.disk_fault(home, line, t1);
            let g = self.dispatch(home, HandlerKind::Read, 0, t1);
            tx.handler(g);
            tx.disk(&self.fab);
            tx.send(&mut self.fab, home, node, data);
            self.purge_stale(node, line);
            let de = self.dir.entry_or_default(line);
            de.on_disk = false;
            de.master = Some(node);
            de.sharers = NodeSet::singleton(node);
            let lvl = if home == node {
                Level::LocalMem
            } else {
                Level::Hop2
            };
            (home, lvl, AmState::SharedMaster)
        } else if let Some(k) = e.owner {
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, HandlerKind::Read, 0, t1);
            tx.handler(g);
            let lvl = self.supply_from(&mut tx, node, home, k, line, false);
            // The owner keeps the master copy, now shared.
            self.nodes[k].caches.downgrade(line);
            if let Some(s) = self.nodes[k].am.peek_mut(line) {
                *s = AmState::SharedMaster;
            }
            let de = self.dir.entry_or_default(line);
            de.owner = None;
            de.master = Some(k);
            de.sharers = NodeSet::singleton(k);
            de.sharers.insert(node);
            (k, lvl, AmState::Shared)
        } else if !e.sharers.is_empty() {
            let m_node = e.master.expect("shared lines must have a master");
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, HandlerKind::Read, 0, t1);
            tx.handler(g);
            let supplier = self.pick_supplier(node, home, m_node, line);
            let lvl = self.supply_from(&mut tx, node, home, supplier, line, true);
            self.dir.entry_or_default(line).sharers.insert(node);
            (supplier, lvl, AmState::Shared)
        } else {
            // First touch: the line materializes (cold/zero data).
            let de = self.dir.entry_or_default(line);
            de.master = Some(node);
            de.sharers = NodeSet::singleton(node);
            let lvl = self.cold_round(&mut tx, node, home, HandlerKind::Read);
            (home, lvl, AmState::SharedMaster)
        };

        tx.fill(&self.fab);
        self.am_fill(node, line, new_state, provider, tx.at());
        self.fill_caches(node, line, CState::Shared);
        tx.finish(&mut self.fab, level, TxnKind::Read, true)
    }

    fn write_walk(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        match self.nodes[node].caches.write_probe(line) {
            WriteProbe::Done(level) => return cache_hit(&mut self.fab, level, now, false),
            WriteProbe::NeedUpgrade => {
                let mut tx = Txn::start(node, line, now);
                tx.probe(self.fab.lat.l2);
                let am_state = self.nodes[node]
                    .am
                    .peek(line)
                    .copied()
                    .expect("cached line must be in the AM (inclusion)");
                if am_state == AmState::Dirty {
                    // Already exclusive at the memory level.
                    tx.probe(self.fab.lat.am_tag_check);
                    self.nodes[node].caches.mark_dirty(line);
                    return tx.finish(&mut self.fab, Level::L2, TxnKind::Write, false);
                }
                let level = self.upgrade_round(&mut tx, node, line);
                if let Some(s) = self.nodes[node].am.peek_mut(line) {
                    *s = AmState::Dirty;
                }
                self.nodes[node].caches.mark_dirty(line);
                tx.fill(&self.fab);
                return tx.finish(&mut self.fab, level, TxnKind::Write, true);
            }
            WriteProbe::Miss => {}
        }

        let mut tx = Txn::start(node, line, now);
        tx.probe(self.fab.lat.l2 + self.fab.lat.am_tag_check);
        // AM hit under a full cache miss.
        if let Some(&st) = self.nodes[node].am.peek(line) {
            let m = self.mem_access(node, line, tx.at());
            if st == AmState::Dirty {
                tx.dram(m);
                tx.fill(&self.fab);
                self.fill_caches(node, line, CState::Dirty);
                return tx.finish(&mut self.fab, Level::LocalMem, TxnKind::Write, false);
            }
            // Shared in our memory: upgrade through the home; the local
            // data access overlaps with the invalidation round.
            let level = self.upgrade_round(&mut tx, node, line);
            tx.dram(m);
            if let Some(s) = self.nodes[node].am.peek_mut(line) {
                *s = AmState::Dirty;
            }
            tx.fill(&self.fab);
            self.fill_caches(node, line, CState::Dirty);
            return tx.finish(&mut self.fab, level, TxnKind::Write, true);
        }

        // Full read-exclusive: fetch data and invalidate everyone.
        let home = self.home_of(line, node);
        self.await_recovery(&mut tx, node, line);
        let e = self.dir.get(line).copied().unwrap_or_default();
        let ctrl = self.fab.msg_ctrl();
        let data = self.fab.msg_data();
        let mut targets = NodeList::sharers_except(&e.sharers, node);
        // Handler cost covers the pre-retain fan-out size.
        let n_inv = targets.len() as u32;

        let (provider, level) = if e.on_disk {
            self.fab.stats.disk_faults += 1;
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            self.fab.disk_fault(home, line, t1);
            let g = self.dispatch(home, HandlerKind::ReadExclusive, 0, t1);
            tx.handler(g);
            tx.disk(&self.fab);
            tx.send(&mut self.fab, home, node, data);
            self.purge_stale(node, line);
            self.dir.entry_or_default(line).on_disk = false;
            let lvl = if home == node {
                Level::LocalMem
            } else {
                Level::Hop2
            };
            (home, lvl)
        } else if let Some(k) = e.owner {
            targets.retain(|&x| x != k); // the owner supplies and self-invalidates
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, HandlerKind::ReadExclusive, n_inv, t1);
            tx.handler(g);
            let lvl = self.supply_from(&mut tx, node, home, k, line, false);
            self.nodes[k].caches.invalidate(line);
            self.nodes[k].am.remove(line);
            self.fab.stats.invalidations += 1;
            (k, lvl)
        } else if !e.sharers.is_empty() {
            let m_node = e.master.expect("shared lines must have a master");
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, HandlerKind::ReadExclusive, n_inv, t1);
            let gr = g.reply_at;
            tx.handler(g);
            let supplier = self.pick_supplier(node, home, m_node, line);
            let lvl = self.supply_from(&mut tx, node, home, supplier, line, false);
            let acks = self.invalidate_all(&targets, line, home, node, gr);
            tx.to(NETWORK, acks);
            (supplier, lvl)
        } else {
            // Cold write.
            let lvl = self.cold_round(&mut tx, node, home, HandlerKind::ReadExclusive);
            (home, lvl)
        };

        let de = self.dir.entry_or_default(line);
        de.owner = Some(node);
        de.master = Some(node);
        de.sharers = NodeSet::singleton(node);
        tx.fill(&self.fab);
        self.am_fill(node, line, AmState::Dirty, provider, tx.at());
        self.fill_caches(node, line, CState::Dirty);
        tx.finish(&mut self.fab, level, TxnKind::Write, true)
    }
}

impl MemSystem for ComaSystem {
    fn name(&self) -> &'static str {
        "COMA"
    }

    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let a = self.read_walk(node, addr, now);
        #[cfg(feature = "coherence-oracle")]
        crate::check::coma_line(self, line_of(addr, self.cfg.line_shift));
        a
    }

    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let a = self.write_walk(node, addr, now);
        #[cfg(feature = "coherence-oracle")]
        crate::check::coma_line(self, line_of(addr, self.cfg.line_shift));
        a
    }

    fn fabric(&self) -> &Fabric {
        &self.fab
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fab
    }

    fn controllers_busy(&self) -> (Cycle, usize) {
        let busy: Cycle = self.ctrls.iter().map(|c| c.busy_cycles()).sum();
        (busy, self.ctrls.len())
    }

    fn check_coherence(&self) {
        crate::check::check_coma(self);
    }

    fn compute_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes)
            .filter(|&n| !self.fab.dead.contains(n))
            .collect()
    }

    fn apply_kill(
        &mut self,
        node: NodeId,
        now: Cycle,
        durability: Durability,
        rs: &mut RecoveryStats,
    ) -> Cycle {
        assert!(!self.fab.dead.contains(node), "node {node} is already dead");
        self.fab.dead.insert(node);
        let survivors: Vec<NodeId> = (0..self.cfg.nodes)
            .filter(|&n| !self.fab.dead.contains(n))
            .collect();
        assert!(!survivors.is_empty(), "cannot kill the last COMA node");
        // Wipe the victim's caches and attraction memory.
        self.nodes[node] = PNodeStore::calibrated(
            self.cfg.l1,
            self.cfg.l2,
            self.cfg.am,
            self.cfg.onchip_lines as usize,
            &self.cfg.lat,
            self.cfg.mem_bytes_per_cycle,
        );
        // Scrub every directory entry naming the victim: re-elect
        // mastership onto a surviving sharer, write dirty data off to
        // disk-resident state when no copy survives.
        let lines: Vec<Line> = self.dir.keys();
        for line in lines {
            let e = self.dir.get_mut(line).expect("swept key");
            if e.owner == Some(node) {
                e.owner = None;
                e.master = None;
                e.sharers.clear();
                e.on_disk = true;
                if durability == Durability::Replication {
                    rs.lines_recalled += 1;
                } else {
                    rs.lines_lost += 1;
                }
            } else if e.sharers.remove(node) && e.master == Some(node) {
                if let Some(s) = e.sharers.first() {
                    e.master = Some(s);
                    rs.lines_recalled += 1;
                    if let Some(st) = self.nodes[s].am.peek_mut(line) {
                        *st = AmState::SharedMaster;
                    }
                } else {
                    e.master = None;
                    e.on_disk = true;
                    if durability == Durability::Replication {
                        rs.lines_recalled += 1;
                    } else {
                        rs.lines_lost += 1;
                    }
                }
            }
        }
        // Re-home the victim's pages across the survivors (directory
        // state only — flat COMA homes hold no data).
        let moved = self
            .fab
            .pages
            .evacuate(node, |p| survivors[p as usize % survivors.len()]);
        rs.pages_rehomed += moved.len() as u64;
        let lpp = self.fab.lines_per_page();
        let mut t = now;
        for (page, _nh) in moved {
            // The new home rebuilds the page's directory entries by
            // probing the surviving memories, one tag check per line.
            t += self.fab.lat.am_tag_check + lpp;
            self.fab.mark_recovering(page, t);
            rs.recovery.record(t - now);
        }
        #[cfg(feature = "coherence-oracle")]
        self.check_coherence();
        t
    }

    fn apply_rejoin(&mut self, node: NodeId, now: Cycle) -> Cycle {
        assert!(self.fab.dead.contains(node), "node {node} is not dead");
        self.fab.dead.remove(node);
        now + self.fab.lat.disk
    }

    fn stall_controller(&mut self, node: NodeId, now: Cycle, extra: Cycle) {
        self.ctrls[node].occupy(now, extra);
    }

    fn census(&self) -> Census {
        let mut c = Census {
            d_slots: self.cfg.am.capacity_lines() * self.cfg.nodes as u64,
            ..Census::default()
        };
        for e in self.dir.values() {
            if e.on_disk {
                c.paged_out += 1;
            } else if e.owner.is_some() {
                c.dirty_in_p += 1;
            } else if !e.sharers.is_empty() {
                c.shared_in_p += 1;
            }
        }
        c
    }

    fn preload(&mut self, addr: u64, owner: NodeId, kind: PreloadKind) {
        let line = line_of(addr, self.cfg.line_shift);
        self.home_of(line, owner);
        if self.dir.contains(line) {
            return;
        }
        // COMA has no backing store: the pre-existing copy must live in
        // some attraction memory. Cold private data sits dirty at its
        // owner; shared-init data ends up spread across the machine by
        // init-time capacity displacement (balance by free space, as the
        // long-run injection equilibrium would).
        let (state, candidates): (AmState, Vec<NodeId>) = match kind {
            PreloadKind::ColdPrivate => {
                let mut c: Vec<NodeId> = (0..self.cfg.nodes).collect();
                c.sort_by_key(|&n| (self.fab.net.hops(owner, n), n));
                (AmState::Dirty, c)
            }
            PreloadKind::SharedInit => {
                let mut c: Vec<NodeId> = (0..self.cfg.nodes).collect();
                c.sort_by_key(|&n| (self.nodes[n].am.len(), n));
                (AmState::SharedMaster, c)
            }
        };
        for c in candidates {
            if self.nodes[c].am.has_room_for(line) {
                self.nodes[c].am.insert(line, state, victim_class);
                let e = self.dir.entry_or_default(line);
                e.master = Some(c);
                e.sharers = NodeSet::singleton(c);
                if state == AmState::Dirty {
                    e.owner = Some(c);
                }
                return;
            }
        }
        // Pathological set pressure everywhere: the copy sits on disk.
        self.dir.entry_or_default(line).on_disk = true;
        self.fab.stats.disk_spills += 1;
    }
}
