//! The AGG D-node: software directory + fully-associative backing memory.
//!
//! Section 2.2.2 of the paper. A D-node is an off-the-shelf PIM chip whose
//! processor runs protocol handlers in software over three arrays:
//!
//! - the **Directory array** — one entry per line homed at this node,
//!   holding protocol state and a Local Pointer into Data;
//! - the **Data array** — the actual line storage, *fully associative in
//!   software*: any homed line can live in any slot, so the whole memory is
//!   usable and incoming lines never bounce (no COMA-style injection);
//! - the **Pointer array** — per-slot back pointers and the links that
//!   thread empty slots onto the **FreeList** and reclaimable shared lines
//!   onto the FIFO **SharedList**.
//!
//! Mastership economics: when the first P-node reads a line, the home
//! gives out *mastership* and moves its (now duplicate) copy to the
//! SharedList tail — reclaimable if space runs short. Lines dirty in a
//! P-node keep **no** place holder at the home; their slot is reused.
//! When free space is exhausted and the SharedList drops below a
//! threshold, the node pages out whole pages to disk rather than inject.
//!
//! This module owns the storage/state machine and its timing devices; the
//! protocol orchestration (who sends which message when) lives in
//! [`crate::agg`].

use pimdsm_engine::{Cycle, Server};
use pimdsm_mem::{ChunkedIndex, Dram, KeyedQueue, Line, Page, Residency};

use crate::common::{NodeId, NodeList, NodeSet};
use crate::pnode::OnChipLru;

/// Who holds the master (authoritative clean) copy of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Master {
    /// The home D-node's memory copy is the master.
    Home,
    /// A P-node holds the master copy (shared-master, or the owner when
    /// dirty).
    Node(NodeId),
}

/// Directory entry for one line homed at a D-node.
#[derive(Debug, Clone, Copy)]
pub struct DirEntry {
    /// P-nodes holding a clean copy.
    pub sharers: NodeSet,
    /// P-node holding the line dirty, if any.
    pub owner: Option<NodeId>,
    /// Location of the master copy.
    pub master: Master,
    /// Whether the home Data array holds a copy.
    pub in_mem: bool,
    /// Whether the line currently lives on disk.
    pub paged_out: bool,
}

impl DirEntry {
    fn virgin() -> Self {
        DirEntry {
            sharers: NodeSet::new(),
            owner: None,
            master: Master::Home,
            in_mem: false,
            paged_out: false,
        }
    }

    /// Whether no P-node holds any copy.
    pub fn uncached(&self) -> bool {
        self.owner.is_none() && self.sharers.is_empty()
    }
}

/// Sizing and policy knobs for one D-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DNodeCfg {
    /// Data array capacity, in lines.
    pub data_lines: u64,
    /// How many of those lines fit in on-chip DRAM (timing).
    pub onchip_lines: u64,
    /// Page out when a slot is needed and the SharedList is below this.
    pub shared_list_min: u64,
    /// Pages evicted per page-out event.
    pub pageout_batch: usize,
    /// Whether the SharedList may be reclaimed at all (ablation switch;
    /// the paper's design reclaims it but tries not to).
    pub reuse_shared_list: bool,
    /// Lines per page.
    pub lines_per_page: u64,
    /// Local memory round-trip latencies (on-chip, off-chip) and port
    /// bandwidth, as in the P-nodes.
    pub lat_on: Cycle,
    /// Off-chip round trip.
    pub lat_off: Cycle,
    /// Memory port bandwidth, bytes per cycle.
    pub mem_bytes_per_cycle: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
}

/// Event counters for one D-node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DNodeStats {
    /// SharedList head reclamations (home copy dropped for space).
    pub shared_reclaims: u64,
    /// Page-out events.
    pub page_outs: u64,
    /// Lines recalled from P-nodes during page-outs.
    pub lines_recalled: u64,
    /// Page-ins from disk.
    pub page_ins: u64,
}

/// One page's worth of directory entries, allocated as a unit.
#[derive(Debug, Clone)]
struct DirChunk {
    /// `lines_per_page` slots; `None` marks a never-referenced line.
    entries: Box<[Option<DirEntry>]>,
    /// Occupied slots; a chunk is recycled when this drops to zero.
    live: u32,
}

/// Storage half of an AGG directory node.
///
/// All mutating operations keep the FreeList/SharedList/`in_mem`
/// bookkeeping consistent; [`DNode::check_invariants`] verifies the
/// invariants and is exercised by the property tests.
#[derive(Debug, Clone)]
pub struct DNode {
    cfg: DNodeCfg,
    // The directory is a two-level table: a sorted page index into an
    // arena of per-page chunks, each holding `lines_per_page` entry
    // slots. Lines of the same page are adjacent in simulated space and
    // in the handler access stream, so the hot lookup is one page probe
    // plus an array index instead of a per-line `BTreeMap` walk.
    // Directory sweeps (census, reconfiguration entry eviction, page-out
    // scans) iterate pages in sorted order and slots in ascending order,
    // which is exactly the ascending-line order the previous
    // `BTreeMap<Line, DirEntry>` produced — that order is part of the
    // simulated behavior and must stay run-to-run deterministic.
    page_index: ChunkedIndex,
    slab: Vec<DirChunk>,
    free_chunks: Vec<u32>,
    free_slots: u64,
    shared_list: KeyedQueue<Line>,
    mapped_pages: KeyedQueue<Page>,
    cold_pages: KeyedQueue<Page>,
    /// Protocol processor (software handlers run here).
    pub server: Server,
    mem_on: Dram,
    mem_off: Dram,
    onchip: OnChipLru,
    stats: DNodeStats,
}

impl DNode {
    /// Creates an empty D-node.
    ///
    /// # Panics
    ///
    /// Panics if the Data array would be empty.
    pub fn new(cfg: DNodeCfg) -> Self {
        assert!(cfg.data_lines > 0, "D-node needs a nonempty Data array");
        let transfer = cfg.line_bytes.div_ceil(cfg.mem_bytes_per_cycle);
        DNode {
            page_index: ChunkedIndex::new(),
            slab: Vec::new(),
            free_chunks: Vec::new(),
            free_slots: cfg.data_lines,
            shared_list: KeyedQueue::new(),
            mapped_pages: KeyedQueue::new(),
            cold_pages: KeyedQueue::new(),
            server: Server::new(),
            mem_on: Dram::new(cfg.lat_on.saturating_sub(transfer), cfg.mem_bytes_per_cycle),
            mem_off: Dram::new(
                cfg.lat_off.saturating_sub(transfer),
                cfg.mem_bytes_per_cycle,
            ),
            onchip: OnChipLru::new(cfg.onchip_lines as usize),
            cfg,
            stats: DNodeStats::default(),
        }
    }

    /// Configuration.
    pub fn cfg(&self) -> &DNodeCfg {
        &self.cfg
    }

    /// Event counters.
    pub fn stats(&self) -> DNodeStats {
        self.stats
    }

    /// Free Data slots.
    pub fn free_slots(&self) -> u64 {
        self.free_slots
    }

    /// Current SharedList length.
    pub fn shared_list_len(&self) -> u64 {
        self.shared_list.len() as u64
    }

    /// Registers a page as mapped at this node.
    pub fn map_page(&mut self, page: Page) {
        if !self.mapped_pages.contains(&page) && !self.cold_pages.contains(&page) {
            self.mapped_pages.push_back(page);
        }
    }

    /// Marks a mapped page as initialization-cold: preferred page-out
    /// victim until it is referenced.
    pub fn mark_page_cold(&mut self, page: Page) {
        if self.mapped_pages.remove(&page) && !self.cold_pages.contains(&page) {
            self.cold_pages.push_back(page);
        }
    }

    /// Unregisters a page (reconfiguration or page-out), returning whether
    /// it was mapped here.
    pub fn unmap_page(&mut self, page: Page) -> bool {
        let a = self.mapped_pages.remove(&page);
        let b = self.cold_pages.remove(&page);
        a || b
    }

    /// Number of pages mapped here.
    pub fn mapped_page_count(&self) -> usize {
        self.mapped_pages.len() + self.cold_pages.len()
    }

    fn dir_get(&self, line: Line) -> Option<&DirEntry> {
        let lpp = self.cfg.lines_per_page;
        let ci = self.page_index.get(line / lpp)?;
        self.slab[ci as usize].entries[(line % lpp) as usize].as_ref()
    }

    fn dir_get_mut(&mut self, line: Line) -> Option<&mut DirEntry> {
        let lpp = self.cfg.lines_per_page;
        let ci = self.page_index.get(line / lpp)?;
        self.slab[ci as usize].entries[(line % lpp) as usize].as_mut()
    }

    fn dir_entry_or_virgin(&mut self, line: Line) -> &mut DirEntry {
        let lpp = self.cfg.lines_per_page;
        let page = line / lpp;
        let ci = match self.page_index.get(page) {
            Some(ci) => ci,
            None => {
                let ci = match self.free_chunks.pop() {
                    // Recycled chunks are fully vacated (`live == 0`), so
                    // every slot is already `None`.
                    Some(ci) => ci,
                    None => {
                        self.slab.push(DirChunk {
                            entries: vec![None; lpp as usize].into_boxed_slice(),
                            live: 0,
                        });
                        (self.slab.len() - 1) as u32
                    }
                };
                self.page_index.insert(page, ci);
                ci
            }
        };
        let chunk = &mut self.slab[ci as usize];
        let slot = &mut chunk.entries[(line % lpp) as usize];
        if slot.is_none() {
            *slot = Some(DirEntry::virgin());
            chunk.live += 1;
        }
        slot.as_mut().expect("slot was just filled")
    }

    fn dir_remove(&mut self, line: Line) -> Option<DirEntry> {
        let lpp = self.cfg.lines_per_page;
        let page = line / lpp;
        let ci = self.page_index.get(page)?;
        let chunk = &mut self.slab[ci as usize];
        let e = chunk.entries[(line % lpp) as usize].take()?;
        chunk.live -= 1;
        if chunk.live == 0 {
            self.page_index.remove(page);
            self.free_chunks.push(ci);
        }
        Some(e)
    }

    /// Directory entry (creating a virgin one on first reference).
    pub fn entry_mut(&mut self, line: Line) -> &mut DirEntry {
        self.dir_entry_or_virgin(line)
    }

    /// Directory entry, if the line has ever been referenced.
    pub fn entry(&self, line: Line) -> Option<&DirEntry> {
        self.dir_get(line)
    }

    /// Iterates over all directory entries in ascending line order — the
    /// table's deterministic index order (sorted pages, ascending slots
    /// within each page).
    pub fn iter_deterministic(&self) -> impl Iterator<Item = (Line, &DirEntry)> {
        let lpp = self.cfg.lines_per_page;
        self.page_index.iter().flat_map(move |(page, ci)| {
            self.slab[ci as usize]
                .entries
                .iter()
                .enumerate()
                .filter_map(move |(si, e)| e.as_ref().map(|e| (page * lpp + si as u64, e)))
        })
    }

    /// Iterates over all directory entries in ascending line order (alias
    /// of [`DNode::iter_deterministic`]).
    pub fn entries(&self) -> impl Iterator<Item = (Line, &DirEntry)> {
        self.iter_deterministic()
    }

    /// Times a bulk streaming read of `bytes` from the Data array (used by
    /// computation-in-memory scans, which touch mostly off-chip data).
    pub fn bulk_data_access(&mut self, at: Cycle, bytes: u64) -> Cycle {
        self.mem_off.access(at, bytes)
    }

    /// Notes that a line of `page` was served (keeps the page-recency
    /// order the page-out victim selection relies on; a cold page is
    /// promoted to the warm list).
    pub fn touch_page(&mut self, page: Page) {
        if self.cold_pages.remove(&page) {
            self.mapped_pages.push_back(page);
        } else {
            self.mapped_pages.move_to_back(&page);
        }
    }

    /// Times one Data-array access starting at `now`.
    pub fn data_access(&mut self, line: Line, now: Cycle) -> Cycle {
        let bytes = self.cfg.line_bytes;
        match self.onchip.touch(line) {
            Residency::OnChip => self.mem_on.access(now, bytes),
            Residency::OffChip => self.mem_off.access(now, bytes),
        }
    }

    /// Whether a slot request right now would have to reclaim SharedList
    /// or trigger a page-out.
    pub fn space_pressure(&self) -> bool {
        self.free_slots == 0 && (self.shared_list.len() as u64) < self.cfg.shared_list_min
    }

    /// Takes a free Data slot for `line`, reclaiming the SharedList head
    /// if the FreeList is empty. Returns the line whose home copy was
    /// dropped, if any. Returns `Err(())` if no slot can be found (caller
    /// must page out first).
    ///
    /// # Panics
    ///
    /// Panics if `line` already occupies a slot.
    #[allow(clippy::result_unit_err)]
    pub fn alloc_slot(&mut self, line: Line) -> Result<Option<Line>, ()> {
        let e = self.dir_get(line);
        assert!(
            e.is_none_or(|e| !e.in_mem),
            "line {line:#x} already has a Data slot"
        );
        if self.free_slots > 0 {
            self.free_slots -= 1;
            return Ok(None);
        }
        if self.cfg.reuse_shared_list {
            if let Some(victim) = self.shared_list.pop_front() {
                let ve = self
                    .dir_get_mut(victim)
                    .expect("SharedList member must have a directory entry");
                debug_assert!(ve.in_mem);
                ve.in_mem = false;
                self.stats.shared_reclaims += 1;
                return Ok(Some(victim));
            }
        }
        Err(())
    }

    fn release_slot(&mut self, line: Line) {
        self.shared_list.remove(&line);
        self.free_slots += 1;
        debug_assert!(self.free_slots <= self.cfg.data_lines);
    }

    /// First read of a line by `reader`: the home materializes the line,
    /// gives out mastership, and threads its duplicate copy onto the
    /// SharedList.
    ///
    /// Must be called with a slot already allocated via [`DNode::alloc_slot`].
    pub fn grant_first_read(&mut self, line: Line, reader: NodeId) {
        let e = self.dir_entry_or_virgin(line);
        debug_assert!(e.uncached() && !e.in_mem);
        e.in_mem = true;
        e.paged_out = false;
        e.master = Master::Node(reader);
        e.sharers = NodeSet::singleton(reader);
        e.owner = None;
        self.shared_list.push_back(line);
    }

    /// A read of a line whose master copy sits at the home (either a
    /// D-node-only line, or one written back while other sharers remain):
    /// mastership is given out to the reader and the home's duplicate
    /// becomes reclaimable (SharedList tail).
    pub fn grant_master_read(&mut self, line: Line, reader: NodeId) {
        let e = self.dir_get_mut(line).expect("line must exist in memory");
        debug_assert!(e.in_mem && e.master == Master::Home && e.owner.is_none());
        e.master = Master::Node(reader);
        e.sharers.insert(reader);
        debug_assert!(!self.shared_list.contains(&line));
        self.shared_list.push_back(line);
    }

    /// A subsequent read of a shared line by `reader`.
    pub fn add_sharer(&mut self, line: Line, reader: NodeId) {
        let e = self.entry_mut(line);
        debug_assert!(e.owner.is_none());
        e.sharers.insert(reader);
    }

    /// Read of a line dirty at `owner`: ownership dissolves into
    /// shared-master at the previous owner; the home keeps no copy.
    pub fn dirty_to_shared(&mut self, line: Line, reader: NodeId) -> NodeId {
        let e = self
            .dir_get_mut(line)
            .expect("dirty line must have an entry");
        let owner = e.owner.take().expect("line must be dirty");
        e.master = Master::Node(owner);
        e.sharers = NodeSet::singleton(owner);
        e.sharers.insert(reader);
        debug_assert!(!e.in_mem, "dirty lines keep no home copy");
        owner
    }

    /// Write (read-exclusive/upgrade) by `writer`: returns the nodes to
    /// invalidate (sharers minus the writer, or the previous owner).
    /// Frees the home copy's slot — dirty lines keep no place holder.
    pub fn make_owner(&mut self, line: Line, writer: NodeId) -> NodeList {
        let e = self.dir_entry_or_virgin(line);
        let mut inval = NodeList::new();
        if let Some(prev) = e.owner.take() {
            if prev != writer {
                inval.push(prev);
            }
        }
        for s in e.sharers.iter() {
            if s != writer {
                inval.push(s);
            }
        }
        e.sharers.clear();
        e.owner = Some(writer);
        e.master = Master::Node(writer);
        e.paged_out = false;
        if e.in_mem {
            e.in_mem = false;
            self.release_slot(line);
        }
        inval
    }

    /// Write-back of a displaced dirty or shared-master line from `from`.
    ///
    /// The home must take the line in; call [`DNode::alloc_slot`] first if
    /// [`DirEntry::in_mem`] is false. The home becomes the master; if
    /// other sharers remain the copy is *not* reclaimable (the master may
    /// not be dropped), matching the paper's nil pointers.
    pub fn write_back(&mut self, line: Line, from: NodeId) {
        let e = self
            .dir_get_mut(line)
            .expect("written-back line must exist");
        match e.owner {
            Some(owner) => {
                debug_assert_eq!(owner, from, "only the owner can write back dirty");
                e.owner = None;
            }
            None => {
                // Normally the writer holds the master copy; a page-out
                // recall that raced with this displacement may already
                // have reclaimed mastership for the home, in which case
                // the incoming data simply refreshes the home copy.
                e.sharers.remove(from);
            }
        }
        e.master = Master::Home;
        e.paged_out = false;
        debug_assert!(e.in_mem, "caller must allocate a slot before write_back");
        // Master at home: not reclaimable, so it must not sit on the
        // SharedList.
        self.shared_list.remove(&line);
    }

    /// Marks that a slot was allocated for an incoming write-back (pairs
    /// with [`DNode::alloc_slot`]).
    pub fn fill_slot(&mut self, line: Line) {
        let e = self.entry_mut(line);
        debug_assert!(!e.in_mem);
        e.in_mem = true;
        e.paged_out = false;
    }

    /// A non-master sharer silently dropped its copy and sent a hint.
    pub fn replacement_hint(&mut self, line: Line, from: NodeId) {
        if let Some(e) = self.dir_get_mut(line) {
            if e.master != Master::Node(from) && e.owner != Some(from) {
                e.sharers.remove(from);
            }
        }
    }

    /// Selects up to `batch` victim pages for a page-out. Pages are
    /// scanned from the least-recently-served end; within the scan
    /// window, pages with no lines cached in P-nodes (nothing to recall —
    /// typically long-cold data) are preferred. Does not modify state.
    pub fn pageout_victims(&self, batch: usize) -> Vec<Page> {
        // Initialization-cold pages first: nothing will miss them.
        let mut quiet: Vec<Page> = self.cold_pages.iter().take(batch.max(1)).copied().collect();
        if quiet.len() >= batch.max(1) {
            quiet.truncate(batch.max(1));
            return quiet;
        }
        let window = 8 * batch.max(1);
        let mut noisy = Vec::new();
        for &page in self.mapped_pages.iter().take(window) {
            let first = page * self.cfg.lines_per_page;
            let active = (first..first + self.cfg.lines_per_page).any(|l| {
                self.dir_get(l)
                    .is_some_and(|e| e.owner.is_some() || !e.sharers.is_empty())
            });
            if active {
                noisy.push(page);
            } else {
                quiet.push(page);
            }
            if quiet.len() >= batch {
                break;
            }
        }
        quiet.extend(noisy);
        quiet.truncate(batch.max(1));
        quiet
    }

    /// Applies the storage effects of paging out `page`: every line of the
    /// page leaves memory and the directory marks it on disk. Lines cached
    /// in P-nodes must have been recalled by the caller beforehand.
    /// Returns the number of slots freed.
    pub fn apply_pageout(&mut self, page: Page) -> u64 {
        let first = page * self.cfg.lines_per_page;
        let mut freed = 0;
        for line in first..first + self.cfg.lines_per_page {
            let was_in_mem = match self.dir_get_mut(line) {
                Some(e) => {
                    debug_assert!(e.uncached(), "recall lines before paging out");
                    let was = e.in_mem;
                    e.in_mem = false;
                    e.master = Master::Home;
                    e.paged_out = true;
                    was
                }
                None => continue,
            };
            if was_in_mem {
                self.release_slot(line);
                freed += 1;
            }
        }
        self.unmap_page(page);
        self.stats.page_outs += 1;
        freed
    }

    /// Records lines recalled during a page-out.
    pub fn note_recalled(&mut self, n: u64) {
        self.stats.lines_recalled += n;
    }

    /// Records a page-in (disk fault) for `line`'s page; clears the
    /// paged-out marker for all lines of the page and re-maps it.
    pub fn apply_pagein(&mut self, line: Line) {
        let page = line / self.cfg.lines_per_page;
        let first = page * self.cfg.lines_per_page;
        for l in first..first + self.cfg.lines_per_page {
            if let Some(e) = self.dir_get_mut(l) {
                e.paged_out = false;
            }
        }
        self.map_page(page);
        self.stats.page_ins += 1;
    }

    /// Whether `page` is still initialization-cold (never served).
    pub fn is_cold_page(&self, page: Page) -> bool {
        self.cold_pages.contains(&page)
    }

    /// Removes a line's directory entry entirely (reconfiguration moves
    /// the line to a different home). Returns the entry.
    pub fn evict_entry(&mut self, line: Line) -> Option<DirEntry> {
        let e = self.dir_remove(line)?;
        if e.in_mem {
            self.shared_list.remove(&line);
            self.free_slots += 1;
        }
        Some(e)
    }

    /// Installs a directory entry migrated from another D-node.
    ///
    /// Returns `false` if the entry needed a Data slot and none was free
    /// (caller must page out and retry).
    pub fn install_entry(&mut self, line: Line, mut entry: DirEntry) -> bool {
        if entry.in_mem {
            match self.alloc_slot(line) {
                Ok(_) => {}
                Err(()) => return false,
            }
            // Re-thread list membership: reclaimable iff master is outside.
            if let Master::Node(_) = entry.master {
                if entry.owner.is_none() {
                    self.shared_list.push_back(line);
                }
            }
        } else if let Master::Node(_) = entry.master {
            // nothing: copy lives in a P-node
        } else if !entry.paged_out && entry.uncached() {
            // Virgin entries stay virgin.
            entry.master = Master::Home;
        }
        *self.dir_entry_or_virgin(line) = entry;
        true
    }

    /// Verifies the FreeList/SharedList/directory invariants; used by
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        let in_mem_count = self.entries().filter(|(_, e)| e.in_mem).count() as u64;
        assert_eq!(
            in_mem_count + self.free_slots,
            self.cfg.data_lines,
            "slot accounting broken"
        );
        for (line, e) in self.entries() {
            if self.shared_list.contains(&line) {
                assert!(e.in_mem, "SharedList member {line:#x} not in memory");
                assert!(
                    matches!(e.master, Master::Node(_)) && e.owner.is_none(),
                    "SharedList member {line:#x} must be shared with master outside"
                );
            }
            if let Some(owner) = e.owner {
                assert!(!e.in_mem, "dirty line {line:#x} must not hold a slot");
                assert_eq!(
                    e.master,
                    Master::Node(owner),
                    "owner must be master for {line:#x}"
                );
                assert!(e.sharers.is_empty(), "dirty line {line:#x} has sharers");
            }
            if e.master == Master::Home && !e.uncached() {
                assert!(
                    e.in_mem,
                    "home-mastered shared line {line:#x} must be in memory"
                );
            }
            if e.paged_out {
                assert!(
                    !e.in_mem && e.uncached(),
                    "paged-out line {line:#x} still live"
                );
            }
        }
    }

    /// Utilization of the protocol processor over `elapsed` cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.server.busy_cycles() as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(data_lines: u64) -> DNodeCfg {
        DNodeCfg {
            data_lines,
            onchip_lines: data_lines / 2,
            shared_list_min: 2,
            pageout_batch: 1,
            reuse_shared_list: true,
            lines_per_page: 4,
            lat_on: 37,
            lat_off: 57,
            mem_bytes_per_cycle: 32,
            line_bytes: 64,
        }
    }

    fn dnode(lines: u64) -> DNode {
        DNode::new(cfg(lines))
    }

    #[test]
    fn first_read_gives_out_mastership() {
        let mut d = dnode(8);
        assert_eq!(d.alloc_slot(100), Ok(None));
        d.grant_first_read(100, 3);
        let e = d.entry(100).unwrap();
        assert_eq!(e.master, Master::Node(3));
        assert!(e.in_mem);
        assert!(e.sharers.contains(3));
        assert_eq!(d.shared_list_len(), 1);
        assert_eq!(d.free_slots(), 7);
        d.check_invariants();
    }

    #[test]
    fn write_frees_home_copy() {
        let mut d = dnode(8);
        d.alloc_slot(100).unwrap();
        d.grant_first_read(100, 3);
        d.add_sharer(100, 4);
        let inval = d.make_owner(100, 5);
        assert_eq!(inval.len(), 2);
        assert!(inval.contains(&3) && inval.contains(&4));
        let e = d.entry(100).unwrap();
        assert_eq!(e.owner, Some(5));
        assert!(!e.in_mem, "dirty lines keep no place holder");
        assert_eq!(d.free_slots(), 8, "slot reused");
        assert_eq!(d.shared_list_len(), 0);
        d.check_invariants();
    }

    #[test]
    fn upgrade_by_sharer_does_not_invalidate_self() {
        let mut d = dnode(8);
        d.alloc_slot(1).unwrap();
        d.grant_first_read(1, 2);
        let inval = d.make_owner(1, 2);
        assert!(inval.is_empty());
        d.check_invariants();
    }

    #[test]
    fn dirty_read_creates_shared_master() {
        let mut d = dnode(8);
        let inval = d.make_owner(7, 1); // first touch is a write
        assert!(inval.is_empty());
        let prev = d.dirty_to_shared(7, 2);
        assert_eq!(prev, 1);
        let e = d.entry(7).unwrap();
        assert_eq!(e.owner, None);
        assert_eq!(e.master, Master::Node(1));
        assert!(e.sharers.contains(1) && e.sharers.contains(2));
        assert!(!e.in_mem, "home did not take a copy");
        d.check_invariants();
    }

    #[test]
    fn write_back_dirty_restores_home_master() {
        let mut d = dnode(8);
        d.make_owner(7, 1);
        d.alloc_slot(7).unwrap();
        d.fill_slot(7);
        d.write_back(7, 1);
        let e = d.entry(7).unwrap();
        assert_eq!(e.owner, None);
        assert_eq!(e.master, Master::Home);
        assert!(e.in_mem);
        assert!(e.uncached());
        assert_eq!(d.shared_list_len(), 0, "master at home is not reclaimable");
        d.check_invariants();
    }

    #[test]
    fn master_write_back_with_remaining_sharers() {
        let mut d = dnode(8);
        d.alloc_slot(3).unwrap();
        d.grant_first_read(3, 1);
        d.add_sharer(3, 2);
        // Master (node 1) displaces its shared-master copy; home already
        // has a copy (in_mem), so no new slot is needed.
        d.write_back(3, 1);
        let e = d.entry(3).unwrap();
        assert_eq!(e.master, Master::Home);
        assert!(!e.sharers.contains(1));
        assert!(e.sharers.contains(2));
        assert_eq!(d.shared_list_len(), 0);
        d.check_invariants();
    }

    #[test]
    fn shared_list_reclaimed_when_free_exhausted() {
        let mut d = dnode(2);
        d.alloc_slot(10).unwrap();
        d.grant_first_read(10, 1);
        d.alloc_slot(20).unwrap();
        d.grant_first_read(20, 1);
        assert_eq!(d.free_slots(), 0);
        // Third line: FreeList empty → SharedList head (line 10) dropped.
        let dropped = d.alloc_slot(30).unwrap();
        assert_eq!(dropped, Some(10));
        d.grant_first_read(30, 2);
        assert!(!d.entry(10).unwrap().in_mem);
        assert_eq!(d.stats().shared_reclaims, 1);
        d.check_invariants();
    }

    #[test]
    fn alloc_fails_when_nothing_reclaimable() {
        let mut d = dnode(1);
        d.alloc_slot(1).unwrap();
        d.grant_first_read(1, 1);
        // Take the copy home again: master at home → not reclaimable.
        d.write_back(1, 1);
        assert_eq!(d.alloc_slot(2), Err(()));
        assert!(d.space_pressure());
    }

    #[test]
    fn reuse_disabled_forces_pageout_path() {
        let mut c = cfg(1);
        c.reuse_shared_list = false;
        let mut d = DNode::new(c);
        d.alloc_slot(1).unwrap();
        d.grant_first_read(1, 1);
        assert_eq!(d.alloc_slot(2), Err(()), "reuse disabled");
    }

    #[test]
    fn pageout_frees_whole_page() {
        let mut d = dnode(8);
        d.map_page(0);
        for line in 0..3u64 {
            d.alloc_slot(line).unwrap();
            d.grant_first_read(line, 1);
            d.replacement_hint(line, 1); // P-node dropped its copy
        }
        // Mastership is still recorded outside; recall then page out.
        for line in 0..3u64 {
            let e = d.entry_mut(line);
            e.master = Master::Home;
            e.sharers.clear();
        }
        let victims = d.pageout_victims(1);
        assert_eq!(victims, vec![0]);
        let freed = d.apply_pageout(0);
        assert_eq!(freed, 3);
        assert!(d.entry(0).unwrap().paged_out);
        assert_eq!(d.free_slots(), 8);
        assert_eq!(d.mapped_page_count(), 0);
        d.check_invariants();
    }

    #[test]
    fn pagein_clears_markers() {
        let mut d = dnode(8);
        d.map_page(0);
        d.alloc_slot(1).unwrap();
        d.grant_first_read(1, 1);
        d.replacement_hint(1, 1);
        let e = d.entry_mut(1);
        e.master = Master::Home;
        e.sharers.clear();
        d.apply_pageout(0);
        d.apply_pagein(1);
        assert!(!d.entry(1).unwrap().paged_out);
        assert_eq!(d.mapped_page_count(), 1);
        assert_eq!(d.stats().page_ins, 1);
    }

    #[test]
    fn entry_migration_roundtrip() {
        let mut a = dnode(4);
        let mut b = dnode(4);
        a.alloc_slot(9).unwrap();
        a.grant_first_read(9, 1);
        let e = a.evict_entry(9).unwrap();
        assert_eq!(a.free_slots(), 4);
        assert!(b.install_entry(9, e));
        assert_eq!(b.free_slots(), 3);
        assert!(b.entry(9).unwrap().in_mem);
        assert_eq!(b.shared_list_len(), 1);
        a.check_invariants();
        b.check_invariants();
    }

    #[test]
    fn replacement_hint_ignores_master() {
        let mut d = dnode(4);
        d.alloc_slot(5).unwrap();
        d.grant_first_read(5, 1);
        d.add_sharer(5, 2);
        d.replacement_hint(5, 1); // node 1 is master: hint must not drop it
        assert!(d.entry(5).unwrap().sharers.contains(1));
        d.replacement_hint(5, 2);
        assert!(!d.entry(5).unwrap().sharers.contains(2));
        d.check_invariants();
    }

    #[test]
    fn directory_iteration_is_ascending_across_pages() {
        let mut d = dnode(16);
        // lines_per_page = 4: these lines span pages 0..=3, touched out
        // of order.
        for &line in &[9u64, 2, 13, 4, 0] {
            d.entry_mut(line);
        }
        let lines: Vec<Line> = d.entries().map(|(l, _)| l).collect();
        assert_eq!(lines, vec![0, 2, 4, 9, 13]);
    }

    #[test]
    fn evicting_a_whole_page_recycles_its_chunk() {
        let mut d = dnode(8);
        d.entry_mut(4);
        d.entry_mut(5);
        assert!(d.evict_entry(4).is_some());
        assert!(d.evict_entry(5).is_some());
        assert!(d.entry(4).is_none());
        // The vacated chunk serves the next page with no stale entries.
        d.entry_mut(8);
        assert_eq!(d.entries().map(|(l, _)| l).collect::<Vec<_>>(), vec![8]);
        assert!(d.entry(8).unwrap().uncached());
        d.check_invariants();
    }

    #[test]
    fn data_access_times_on_and_off_chip() {
        let mut d = dnode(4);
        let t_first = d.data_access(1, 0);
        let t_second = d.data_access(1, 1000);
        assert!(t_first >= 57 || t_first >= 37);
        assert!(t_second - 1000 <= t_first, "second touch is on-chip");
    }
}
