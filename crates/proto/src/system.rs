//! The common interface all three memory systems implement.

use pimdsm_engine::Cycle;
use pimdsm_faults::{Durability, RecoveryStats};
use pimdsm_net::NetStats;
use pimdsm_obs::{EpochProbe, Tracer};

use crate::common::{Access, Census, NodeId, PreloadKind, ProtoStats};
use crate::fabric::Fabric;

/// A complete coherent memory system: caches, local memories, directory
/// protocol and interconnect.
///
/// The machine driver (crate `pimdsm`) issues one transaction at a time
/// per thread; implementations walk the transaction synchronously, booking
/// every contended resource along its path, and return the completion
/// cycle plus the satisfaction level.
///
/// Every implementation owns a [`Fabric`] — the shared per-node substrate
/// (page homing, interconnect, handler costs, statistics, tracing) — and
/// exposes it through [`fabric`](MemSystem::fabric). Observability and
/// accounting methods (`stats`, `net_stats`, `controller_utilization`,
/// `attach_tracer`, `epoch_probe`, …) have default implementations over
/// the fabric, so a protocol only writes its transaction walks, its
/// census, and its coherence oracle.
pub trait MemSystem {
    /// Short architecture name ("NUMA", "COMA", "AGG").
    fn name(&self) -> &'static str;

    /// Performs a read issued by `node` at `now`; returns completion time
    /// and satisfaction level. Statistics are recorded internally.
    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access;

    /// Performs a write (obtains ownership) issued by `node` at `now`.
    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access;

    /// The shared protocol substrate of this system.
    fn fabric(&self) -> &Fabric;

    /// Mutable access to the substrate (tracer attachment).
    fn fabric_mut(&mut self) -> &mut Fabric;

    /// Total busy cycles and count of the protocol controllers / D-node
    /// processors, for utilization and epoch metrics.
    fn controllers_busy(&self) -> (Cycle, usize);

    /// Runs the full-sweep coherence oracle over every directory entry,
    /// panicking on the first invariant violation (see [`crate::check`]).
    fn check_coherence(&self);

    /// Line size shift (lines are `1 << line_shift()` bytes).
    fn line_shift(&self) -> u32 {
        self.fabric().line_shift
    }

    /// The nodes on which application threads run (all nodes for
    /// NUMA/COMA; the P-nodes for AGG).
    fn compute_nodes(&self) -> Vec<NodeId>;

    /// Aggregate protocol statistics.
    fn stats(&self) -> &ProtoStats {
        &self.fabric().stats
    }

    /// Classification of every mapped line (Figure 8); meaningful mainly
    /// for AGG but implemented by all systems.
    fn census(&self) -> Census;

    /// Interconnect statistics.
    fn net_stats(&self) -> NetStats {
        self.fabric().net.stats()
    }

    /// (total, max-per-link) busy cycles on the interconnect.
    fn net_link_busy(&self) -> (Cycle, Cycle) {
        let net = &self.fabric().net;
        (net.total_link_busy(), net.max_link_busy())
    }

    /// Mean utilization of the protocol controllers/D-node processors over
    /// `elapsed` cycles, in `[0, 1]`.
    fn controller_utilization(&self, elapsed: Cycle) -> f64 {
        let (busy, count) = self.controllers_busy();
        Fabric::utilization(busy, count, elapsed)
    }

    /// Attaches a [`Tracer`], threading it through the interconnect and
    /// protocol engines so an enabled tracer records handler occupancy,
    /// attraction-memory events and link transfers.
    fn attach_tracer(&mut self, tracer: Tracer) {
        self.fabric_mut().attach_tracer(tracer);
    }

    /// Snapshot of cumulative counters for epoch-based metrics sampling.
    ///
    /// The default covers controller busy time, the read mix, remote
    /// writes and network totals; AGG overrides it to add directory list
    /// depths.
    fn epoch_probe(&self) -> EpochProbe {
        self.fabric().epoch_probe(self.controllers_busy())
    }

    /// Applies a node kill at `now`: the victim's caches and attraction
    /// memory are wiped, every page homed at it is re-homed onto
    /// survivors, and directory state naming it (sharer bits, mastership,
    /// ownership) is re-elected or scrubbed. What line data survives
    /// depends on `durability`. Pages mid-reconstruction are marked
    /// recovering on the fabric so racing transactions pay a bounded
    /// retry wait. Returns the cycle at which recovery completes;
    /// accounting (pages re-homed, lines recalled/lost, per-page recovery
    /// latency) is recorded into `rs`.
    ///
    /// # Panics
    ///
    /// Panics if the kill would leave the system unable to serve memory
    /// (e.g. killing AGG's only D-node) or if `node` is already dead.
    fn apply_kill(
        &mut self,
        node: NodeId,
        now: Cycle,
        durability: Durability,
        rs: &mut RecoveryStats,
    ) -> Cycle;

    /// A previously killed node comes back cold at `now`: empty caches,
    /// no pages homed at it, eligible for compute binding and first-touch
    /// homing again. Returns the cycle at which the node is usable.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not dead.
    fn apply_rejoin(&mut self, node: NodeId, now: Cycle) -> Cycle;

    /// Books `extra` cycles of occupancy on the protocol controller /
    /// D-node processor at `node` starting at `now` (handler-stall
    /// fault). A no-op for nodes without a controller (AGG P-nodes).
    fn stall_controller(&mut self, node: NodeId, now: Cycle, extra: Cycle);

    /// Functionally installs a line that existed before the measured
    /// region (initialization happens outside the paper's measurement
    /// window): assigns its page home as if `owner` had first-touched it
    /// and places the data where that kind of initialization leaves it.
    /// Consumes no simulated time.
    fn preload(&mut self, addr: u64, owner: NodeId, kind: PreloadKind);
}
