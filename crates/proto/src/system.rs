//! The common interface all three memory systems implement.

use pimdsm_engine::Cycle;
use pimdsm_net::NetStats;
use pimdsm_obs::{EpochProbe, Tracer};

use crate::common::{Access, Census, NodeId, PreloadKind, ProtoStats};

/// A complete coherent memory system: caches, local memories, directory
/// protocol and interconnect.
///
/// The machine driver (crate `pimdsm`) issues one transaction at a time
/// per thread; implementations walk the transaction synchronously, booking
/// every contended resource along its path, and return the completion
/// cycle plus the satisfaction level.
pub trait MemSystem {
    /// Short architecture name ("NUMA", "COMA", "AGG").
    fn name(&self) -> &'static str;

    /// Performs a read issued by `node` at `now`; returns completion time
    /// and satisfaction level. Statistics are recorded internally.
    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access;

    /// Performs a write (obtains ownership) issued by `node` at `now`.
    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access;

    /// Line size shift (lines are `1 << line_shift()` bytes).
    fn line_shift(&self) -> u32;

    /// The nodes on which application threads run (all nodes for
    /// NUMA/COMA; the P-nodes for AGG).
    fn compute_nodes(&self) -> Vec<NodeId>;

    /// Aggregate protocol statistics.
    fn stats(&self) -> &ProtoStats;

    /// Classification of every mapped line (Figure 8); meaningful mainly
    /// for AGG but implemented by all systems.
    fn census(&self) -> Census;

    /// Interconnect statistics.
    fn net_stats(&self) -> NetStats;

    /// (total, max-per-link) busy cycles on the interconnect.
    fn net_link_busy(&self) -> (Cycle, Cycle);

    /// Mean utilization of the protocol controllers/D-node processors over
    /// `elapsed` cycles, in `[0, 1]`.
    fn controller_utilization(&self, elapsed: Cycle) -> f64;

    /// Attaches a [`Tracer`]; implementations thread it through their
    /// interconnect and protocol engines so an enabled tracer records
    /// handler occupancy, attraction-memory events and link transfers.
    /// The default implementation ignores the tracer (no-op).
    fn attach_tracer(&mut self, _tracer: Tracer) {}

    /// Snapshot of cumulative counters for epoch-based metrics sampling.
    ///
    /// The default covers what the trait already exposes (read mix, remote
    /// writes, network totals); implementations override it to add
    /// controller busy time, link inventories and directory list depths.
    fn epoch_probe(&self) -> EpochProbe {
        let s = self.stats();
        let n = self.net_stats();
        let (link_busy, _) = self.net_link_busy();
        EpochProbe {
            link_busy,
            reads_by_level: s.reads_by_level,
            remote_writes: s.remote_writes,
            net_messages: n.messages,
            ..EpochProbe::default()
        }
    }

    /// Functionally installs a line that existed before the measured
    /// region (initialization happens outside the paper's measurement
    /// window): assigns its page home as if `owner` had first-touched it
    /// and places the data where that kind of initialization leaves it.
    /// Consumes no simulated time.
    fn preload(&mut self, addr: u64, owner: NodeId, kind: PreloadKind);
}

/// Size in bytes of a data-bearing message.
pub(crate) fn data_bytes(header: u32, line_shift: u32) -> u32 {
    header + (1u32 << line_shift)
}
