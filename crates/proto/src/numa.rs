//! CC-NUMA baseline.
//!
//! Every node owns a slice of physical memory (first-touch page placement)
//! backed by plain DRAM; remote lines are cached only in the private L1/L2
//! SRAM caches. The directory controller sits on chip and its access is
//! overlapped with the memory access, so a transaction satisfied by the
//! home memory pays no directory latency (Section 3 of the paper). The
//! protocol is a DASH-style invalidation protocol: reads of remote-dirty
//! lines forward to the owner (3 hops) with a sharing write-back to the
//! home; writes invalidate sharers and collect acknowledgments.
//!
//! The shared per-node substrate (homing, interconnect, handler costs,
//! statistics, tracing) lives in the [`Fabric`]; each memory transaction
//! walks over [`Txn`] steps so contended resources are booked in protocol
//! order and every cycle of latency is attributed to a component.

use std::collections::BTreeMap;

use pimdsm_engine::{Cycle, Server, ServerGrant};
use pimdsm_faults::{Durability, RecoveryStats};
use pimdsm_mem::{line_of, CacheCfg, Dram, Line, Residency};
use pimdsm_net::{Mesh, NetCfg, Network};
use pimdsm_obs::breakdown::{NETWORK, QUEUE};

use crate::common::{
    Access, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level, MsgSize,
    NodeId, NodeList, NodeSet, PreloadKind,
};
use crate::fabric::Fabric;
use crate::pnode::{OnChipLru, PrivCaches, WriteProbe};
use crate::system::MemSystem;
use crate::txn::{cache_hit, Txn, TxnKind};

/// Configuration of a [`NumaSystem`].
#[derive(Debug, Clone)]
pub struct NumaCfg {
    /// Number of nodes (each runs one application thread).
    pub nodes: usize,
    /// L1 geometry.
    pub l1: CacheCfg,
    /// L2 geometry.
    pub l2: CacheCfg,
    /// Local memory capacity per node, in lines.
    pub node_mem_lines: u64,
    /// Of those, how many fit on chip.
    pub onchip_lines: u64,
    /// Line size shift (64 B lines → 6).
    pub line_shift: u32,
    /// Page size shift (4 KiB pages → 12).
    pub page_shift: u32,
    /// Latency table.
    pub lat: LatencyCfg,
    /// Message sizes.
    pub msg: MsgSize,
    /// Network timing (double-width links vs AGG, per Section 3).
    pub net: NetCfg,
    /// Directory controller costs (hardware: 70% of Table 2).
    pub handler: HandlerCosts,
    /// Local memory port bandwidth, bytes/cycle.
    pub mem_bytes_per_cycle: u64,
}

impl NumaCfg {
    /// A 32-node configuration with the paper's Table 1 parameters and
    /// the given per-application cache sizes / memory capacity.
    pub fn paper(nodes: usize, l1_kb: u64, l2_kb: u64, node_mem_lines: u64) -> Self {
        let line_shift = 6;
        NumaCfg {
            nodes,
            l1: CacheCfg::new(l1_kb * 1024, 1, line_shift),
            l2: CacheCfg::new(l2_kb * 1024, 4, line_shift),
            node_mem_lines,
            onchip_lines: node_mem_lines / 2,
            line_shift,
            page_shift: 12,
            lat: LatencyCfg::default(),
            msg: MsgSize::default(),
            net: NetCfg {
                bytes_per_cycle: 4,
                ..NetCfg::default()
            },
            handler: HandlerCosts::paper(ControllerKind::Hardware),
            mem_bytes_per_cycle: 32,
        }
    }
}

/// Directory entry of one line at its home node.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirEntry {
    /// Nodes that may cache a clean copy (stale bits are legal: Shared
    /// drops are silent and cost at most a wasted invalidation later).
    pub sharers: NodeSet,
    /// Exclusive (dirty) cache-level holder, if any.
    pub owner: Option<NodeId>,
}

#[derive(Debug)]
struct NumaNode {
    caches: PrivCaches,
    onchip: OnChipLru,
    mem_on: Dram,
    mem_off: Dram,
}

/// The CC-NUMA machine.
#[derive(Debug)]
pub struct NumaSystem {
    cfg: NumaCfg,
    nodes: Vec<NumaNode>,
    ctrls: Vec<Server>,
    // Sorted-key map: directory sweeps (the end-of-run census, the
    // coherence oracle) must observe a deterministic order.
    dir: BTreeMap<Line, DirEntry>,
    fab: Fabric,
}

impl NumaSystem {
    /// Builds an idle NUMA machine.
    pub fn new(cfg: NumaCfg) -> Self {
        assert!(cfg.nodes > 0 && cfg.nodes <= NodeSet::MAX_NODES);
        let line_bytes = 1u64 << cfg.line_shift;
        let transfer = line_bytes.div_ceil(cfg.mem_bytes_per_cycle);
        // Calibrate the DRAM device latency so the end-to-end local
        // round trip (L2 probe + device + line fill) lands on Table 1's
        // 37/57-cycle values.
        let overhead = cfg.lat.l2 + cfg.lat.fill + transfer;
        let nodes = (0..cfg.nodes)
            .map(|_| NumaNode {
                caches: PrivCaches::new(cfg.l1, cfg.l2),
                onchip: OnChipLru::new(cfg.onchip_lines as usize),
                mem_on: Dram::new(
                    cfg.lat.mem_on.saturating_sub(overhead),
                    cfg.mem_bytes_per_cycle,
                ),
                mem_off: Dram::new(
                    cfg.lat.mem_off.saturating_sub(overhead),
                    cfg.mem_bytes_per_cycle,
                ),
            })
            .collect();
        let net = Network::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        let fab = Fabric::new(
            cfg.line_shift,
            cfg.page_shift,
            cfg.lat,
            cfg.msg,
            cfg.handler,
            net,
        );
        NumaSystem {
            ctrls: (0..cfg.nodes).map(|_| Server::new()).collect(),
            dir: BTreeMap::new(),
            nodes,
            fab,
            cfg,
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &NumaCfg {
        &self.cfg
    }

    /// The directory entry of a line, if one exists.
    pub fn dir_entry(&self, line: Line) -> Option<&DirEntry> {
        self.dir.get(&line)
    }

    pub(crate) fn dir_lines(&self) -> Vec<Line> {
        self.dir.keys().copied().collect()
    }

    pub(crate) fn n_nodes(&self) -> usize {
        self.cfg.nodes
    }

    pub(crate) fn cached_state(&self, p: NodeId, line: Line) -> Option<CState> {
        self.nodes[p].caches.peek_state(line)
    }

    /// Home of a line: first-touch with capacity spill to the
    /// least-loaded node.
    fn home_of(&mut self, line: Line, toucher: NodeId) -> NodeId {
        let cap = self.cfg.node_mem_lines / self.fab.lines_per_page();
        self.fab
            .first_touch_home(line, toucher, self.cfg.nodes, cap)
    }

    fn dispatch(&mut self, node: NodeId, kind: HandlerKind, invals: u32, at: Cycle) -> ServerGrant {
        self.fab
            .dispatch(&mut self.ctrls[node], node, kind, invals, at)
    }

    /// Local memory access at `node` (dir access overlapped).
    fn local_mem(&mut self, node: NodeId, line: Line, now: Cycle) -> Cycle {
        let bytes = 1u64 << self.cfg.line_shift;
        let n = &mut self.nodes[node];
        match n.onchip.touch(line) {
            Residency::OnChip => n.mem_on.access(now, bytes),
            Residency::OffChip => n.mem_off.access(now, bytes),
        }
    }

    /// Handles an L2 victim produced by a fill at `node`.
    fn handle_victim(&mut self, node: NodeId, victim: Option<(Line, CState)>, now: Cycle) {
        let Some((line, state)) = victim else { return };
        match state {
            CState::Shared => {
                // Silent drop; the directory keeps a stale sharer bit,
                // which later costs at most a wasted invalidation.
            }
            CState::Dirty => {
                self.fab.stats.write_backs += 1;
                let home = self.fab.mapped_home(line);
                self.dir.entry(line).or_default().owner = None;
                if home == node {
                    self.local_mem(node, line, now);
                } else {
                    let bytes = self.fab.msg_data();
                    let t = self.fab.net.send(node, home, bytes, now);
                    let g = self.dispatch(home, HandlerKind::WriteBack, 0, t);
                    self.local_mem(home, line, g.start);
                }
            }
        }
    }

    /// Pays the bounded retry wait if `line`'s page is mid-recovery.
    fn await_recovery(&mut self, tx: &mut Txn, node: NodeId, line: Line) {
        let page = self.fab.page_of(line);
        let w = self.fab.retry_wait(node, page, tx.at());
        if w > 0 {
            let resume = tx.at() + w;
            tx.to(QUEUE, resume);
        }
    }

    /// Invalidates `line` at each node of `targets` (caches only — NUMA
    /// has no attraction memory), acks collected at `collector`. Returns
    /// the cycle when the last ack arrives.
    fn invalidate_all(
        &mut self,
        targets: &[NodeId],
        line: Line,
        from: NodeId,
        collector: NodeId,
        at: Cycle,
    ) -> Cycle {
        let nodes = &mut self.nodes;
        self.fab
            .invalidate_fanout(&mut self.ctrls, targets, from, collector, at, |k| {
                nodes[k].caches.invalidate(line);
            })
    }

    fn read_walk(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        if let Some(level) = self.nodes[node].caches.read_probe(line) {
            return cache_hit(&mut self.fab, level, now, true);
        }

        let mut tx = Txn::start(node, line, now);
        tx.probe(self.fab.lat.l2); // L1+L2 probe time before going out
        let home = self.home_of(line, node);
        self.await_recovery(&mut tx, node, line);
        let entry = self.dir.get(&line).copied().unwrap_or_default();
        let ctrl = self.fab.msg_ctrl();
        let data = self.fab.msg_data();

        let level = if home == node {
            match entry.owner {
                Some(k) if k != node => {
                    // Local home, dirty at remote k: fetch + write back here.
                    let t1 = tx.send(&mut self.fab, node, k, ctrl);
                    let g = self.dispatch(k, HandlerKind::Read, 0, t1);
                    tx.handler(g);
                    self.nodes[k].caches.downgrade(line);
                    let t2 = tx.send(&mut self.fab, k, node, data);
                    self.local_mem(node, line, t2); // sharing write-back
                    let e = self.dir.entry(line).or_default();
                    e.owner = None;
                    e.sharers.insert(k);
                    Level::Hop2
                }
                _ => {
                    // Clean at local home: directory overlapped with memory.
                    let m = self.local_mem(node, line, tx.at());
                    tx.dram(m);
                    Level::LocalMem
                }
            }
        } else {
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, HandlerKind::Read, 0, t1);
            match entry.owner {
                Some(k) if k != node && k != home => {
                    // Forward to the owner; owner replies to the requestor
                    // and writes the line back to the home (DASH style).
                    tx.handler(g);
                    let t2 = tx.send(&mut self.fab, home, k, ctrl);
                    let g2 = self.dispatch(k, HandlerKind::Read, 0, t2);
                    let gr2 = g2.reply_at;
                    tx.handler(g2);
                    self.nodes[k].caches.downgrade(line);
                    tx.send(&mut self.fab, k, node, data);
                    let twb = self.fab.net.send(k, home, data, gr2);
                    self.local_mem(home, line, twb);
                    let e = self.dir.entry(line).or_default();
                    e.owner = None;
                    e.sharers.insert(k);
                    self.fab.stats.master_fetches += 1;
                    Level::Hop3
                }
                Some(k) if k == home => {
                    // Home itself holds it dirty in its caches.
                    tx.handler(g);
                    self.nodes[home].caches.downgrade(line);
                    let m = self.local_mem(home, line, tx.at());
                    tx.dram(m);
                    tx.send(&mut self.fab, home, node, data);
                    let e = self.dir.entry(line).or_default();
                    e.owner = None;
                    e.sharers.insert(home);
                    Level::Hop2
                }
                _ => {
                    // Clean at home: the directory access is overlapped
                    // with the memory access and adds no latency.
                    tx.handler_start(g);
                    let m = self.local_mem(home, line, g.start);
                    tx.dram(m);
                    tx.send(&mut self.fab, home, node, data);
                    Level::Hop2
                }
            }
        };

        self.dir.entry(line).or_default().sharers.insert(node);
        tx.fill(&self.fab);
        let victim = self.nodes[node].caches.fill(line, CState::Shared);
        self.handle_victim(node, victim, tx.at());
        tx.finish(&mut self.fab, level, TxnKind::Read, true)
    }

    fn write_walk(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        match self.nodes[node].caches.write_probe(line) {
            WriteProbe::Done(level) => return cache_hit(&mut self.fab, level, now, false),
            WriteProbe::NeedUpgrade => {
                let mut tx = Txn::start(node, line, now);
                tx.probe(self.fab.lat.l2);
                let home = self.home_of(line, node);
                self.await_recovery(&mut tx, node, line);
                let entry = self.dir.entry(line).or_default();
                let targets = NodeList::sharers_except(&entry.sharers, node);
                entry.sharers = NodeSet::singleton(node);
                entry.owner = Some(node);
                let n_inv = targets.len() as u32;
                let ctrl = self.fab.msg_ctrl();
                let level = if home == node {
                    let g = self.dispatch(home, HandlerKind::ReadExclusive, n_inv, tx.at());
                    tx.handler(g);
                    let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                    tx.to(NETWORK, acks);
                    Level::LocalMem
                } else {
                    self.fab.stats.remote_writes += 1;
                    let t1 = tx.send(&mut self.fab, node, home, ctrl);
                    let g = self.dispatch(home, HandlerKind::ReadExclusive, n_inv, t1);
                    tx.handler(g);
                    let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                    tx.send(&mut self.fab, home, node, ctrl);
                    tx.to(NETWORK, acks);
                    Level::Hop2
                };
                self.nodes[node].caches.mark_dirty(line);
                tx.fill(&self.fab);
                return tx.finish(&mut self.fab, level, TxnKind::Write, true);
            }
            WriteProbe::Miss => {}
        }

        // Read-exclusive: fetch the line with ownership.
        let mut tx = Txn::start(node, line, now);
        tx.probe(self.fab.lat.l2);
        let home = self.home_of(line, node);
        self.await_recovery(&mut tx, node, line);
        let entry = self.dir.get(&line).copied().unwrap_or_default();
        let targets = NodeList::sharers_except(&entry.sharers, node);
        let n_inv = targets.len() as u32;
        let ctrl = self.fab.msg_ctrl();
        let data = self.fab.msg_data();

        let level = if home == node {
            match entry.owner {
                Some(k) if k != node => {
                    let t1 = tx.send(&mut self.fab, node, k, ctrl);
                    let g = self.dispatch(k, HandlerKind::ReadExclusive, n_inv, t1);
                    tx.handler(g);
                    self.nodes[k].caches.invalidate(line);
                    self.fab.stats.invalidations += 1;
                    tx.send(&mut self.fab, k, node, data);
                    Level::Hop2
                }
                _ => {
                    // The directory access overlaps the memory read; the
                    // transaction completes when both the local line and
                    // the last invalidation ack are in.
                    let g = self.dispatch(node, HandlerKind::ReadExclusive, n_inv, tx.at());
                    let m = self.local_mem(node, line, tx.at());
                    let acks = self.invalidate_all(&targets, line, node, node, g.reply_at);
                    tx.dram(m);
                    tx.to(NETWORK, acks);
                    Level::LocalMem
                }
            }
        } else {
            self.fab.stats.remote_writes += 1;
            let t1 = tx.send(&mut self.fab, node, home, ctrl);
            let g = self.dispatch(home, HandlerKind::ReadExclusive, n_inv, t1);
            match entry.owner {
                Some(k) if k != node && k != home => {
                    tx.handler(g);
                    let t2 = tx.send(&mut self.fab, home, k, ctrl);
                    let g2 = self.dispatch(k, HandlerKind::Read, 0, t2);
                    tx.handler(g2);
                    self.nodes[k].caches.invalidate(line);
                    self.fab.stats.invalidations += 1;
                    tx.send(&mut self.fab, k, node, data);
                    Level::Hop3
                }
                Some(k) if k == home => {
                    tx.handler(g);
                    self.nodes[home].caches.invalidate(line);
                    self.fab.stats.invalidations += 1;
                    let m = self.local_mem(home, line, tx.at());
                    tx.dram(m);
                    tx.send(&mut self.fab, home, node, data);
                    Level::Hop2
                }
                _ => {
                    tx.handler_start(g);
                    let m = self.local_mem(home, line, g.start);
                    tx.dram(m);
                    let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                    tx.send(&mut self.fab, home, node, data);
                    tx.to(NETWORK, acks);
                    Level::Hop2
                }
            }
        };

        let e = self.dir.entry(line).or_default();
        e.sharers.clear();
        e.owner = Some(node);
        tx.fill(&self.fab);
        let victim = self.nodes[node].caches.fill(line, CState::Dirty);
        self.handle_victim(node, victim, tx.at());
        tx.finish(&mut self.fab, level, TxnKind::Write, true)
    }
}

impl MemSystem for NumaSystem {
    fn name(&self) -> &'static str {
        "NUMA"
    }

    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let a = self.read_walk(node, addr, now);
        #[cfg(feature = "coherence-oracle")]
        crate::check::numa_line(self, line_of(addr, self.cfg.line_shift));
        a
    }

    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let a = self.write_walk(node, addr, now);
        #[cfg(feature = "coherence-oracle")]
        crate::check::numa_line(self, line_of(addr, self.cfg.line_shift));
        a
    }

    fn fabric(&self) -> &Fabric {
        &self.fab
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fab
    }

    fn controllers_busy(&self) -> (Cycle, usize) {
        let busy: Cycle = self.ctrls.iter().map(|c| c.busy_cycles()).sum();
        (busy, self.ctrls.len())
    }

    fn check_coherence(&self) {
        crate::check::check_numa(self);
    }

    fn compute_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes)
            .filter(|&n| !self.fab.dead.contains(n))
            .collect()
    }

    fn apply_kill(
        &mut self,
        node: NodeId,
        now: Cycle,
        durability: Durability,
        rs: &mut RecoveryStats,
    ) -> Cycle {
        assert!(!self.fab.dead.contains(node), "node {node} is already dead");
        self.fab.dead.insert(node);
        let survivors: Vec<NodeId> = (0..self.cfg.nodes)
            .filter(|&n| !self.fab.dead.contains(n))
            .collect();
        assert!(!survivors.is_empty(), "cannot kill the last NUMA node");
        // The victim's SRAM caches vanish; its memory contents are only
        // reachable again via a replica or a stale home copy.
        let _ = self.nodes[node].caches.drain_all();
        for e in self.dir.values_mut() {
            e.sharers.remove(node);
            if e.owner == Some(node) {
                // The dirty cache copy died; the home memory now serves
                // the last written-back version of the line.
                e.owner = None;
                if durability == Durability::Replication {
                    rs.lines_recalled += 1;
                } else {
                    rs.lines_lost += 1;
                }
            }
        }
        // Re-home the victim's memory slice: each page's frames are
        // reconstructed at the new home (from a replica, or from the
        // stale backing data when nothing better survives).
        let moved = self
            .fab
            .pages
            .evacuate(node, |p| survivors[p as usize % survivors.len()]);
        rs.pages_rehomed += moved.len() as u64;
        let lpp = self.fab.lines_per_page();
        let line_transfer = self
            .fab
            .line_bytes()
            .div_ceil(self.cfg.net.bytes_per_cycle * 4);
        let mut t = now;
        for (page, _nh) in moved {
            t += self.fab.lat.am_tag_check + lpp * line_transfer;
            self.fab.mark_recovering(page, t);
            rs.recovery.record(t - now);
        }
        #[cfg(feature = "coherence-oracle")]
        self.check_coherence();
        t
    }

    fn apply_rejoin(&mut self, node: NodeId, now: Cycle) -> Cycle {
        assert!(self.fab.dead.contains(node), "node {node} is not dead");
        self.fab.dead.remove(node);
        now + self.fab.lat.disk
    }

    fn stall_controller(&mut self, node: NodeId, now: Cycle, extra: Cycle) {
        self.ctrls[node].occupy(now, extra);
    }

    fn census(&self) -> Census {
        let mut c = Census {
            d_slots: self.cfg.node_mem_lines * self.cfg.nodes as u64,
            ..Census::default()
        };
        for e in self.dir.values() {
            if e.owner.is_some() {
                c.dirty_in_p += 1;
            } else if !e.sharers.is_empty() {
                c.shared_in_p += 1;
                c.shared_with_home_copy += 1;
            } else {
                c.d_node_only += 1;
            }
        }
        c
    }

    fn preload(&mut self, addr: u64, owner: NodeId, _kind: PreloadKind) {
        let line = line_of(addr, self.cfg.line_shift);
        // Plain memory backs everything: establishing the page home is
        // all the state NUMA needs (capacity spill included).
        self.home_of(line, owner);
    }
}
