//! CC-NUMA baseline.
//!
//! Every node owns a slice of physical memory (first-touch page placement)
//! backed by plain DRAM; remote lines are cached only in the private L1/L2
//! SRAM caches. The directory controller sits on chip and its access is
//! overlapped with the memory access, so a transaction satisfied by the
//! home memory pays no directory latency (Section 3 of the paper). The
//! protocol is a DASH-style invalidation protocol: reads of remote-dirty
//! lines forward to the owner (3 hops) with a sharing write-back to the
//! home; writes invalidate sharers and collect acknowledgments.

use std::collections::BTreeMap;

use pimdsm_engine::{Cycle, Server};
use pimdsm_mem::{line_of, CacheCfg, Dram, Line, PageTable};
use pimdsm_net::{Mesh, NetCfg, NetStats, Network};

use crate::common::{
    Access, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level, MsgSize,
    NodeId, NodeSet, PreloadKind, ProtoStats,
};
use crate::pnode::{OnChipLru, PrivCaches, WriteProbe};
use crate::system::{data_bytes, MemSystem};

/// Configuration of a [`NumaSystem`].
#[derive(Debug, Clone)]
pub struct NumaCfg {
    /// Number of nodes (each runs one application thread).
    pub nodes: usize,
    /// L1 geometry.
    pub l1: CacheCfg,
    /// L2 geometry.
    pub l2: CacheCfg,
    /// Local memory capacity per node, in lines.
    pub node_mem_lines: u64,
    /// Of those, how many fit on chip.
    pub onchip_lines: u64,
    /// Line size shift (64 B lines → 6).
    pub line_shift: u32,
    /// Page size shift (4 KiB pages → 12).
    pub page_shift: u32,
    /// Latency table.
    pub lat: LatencyCfg,
    /// Message sizes.
    pub msg: MsgSize,
    /// Network timing (double-width links vs AGG, per Section 3).
    pub net: NetCfg,
    /// Directory controller costs (hardware: 70% of Table 2).
    pub handler: HandlerCosts,
    /// Local memory port bandwidth, bytes/cycle.
    pub mem_bytes_per_cycle: u64,
}

impl NumaCfg {
    /// A 32-node configuration with the paper's Table 1 parameters and
    /// the given per-application cache sizes / memory capacity.
    pub fn paper(nodes: usize, l1_kb: u64, l2_kb: u64, node_mem_lines: u64) -> Self {
        let line_shift = 6;
        NumaCfg {
            nodes,
            l1: CacheCfg::new(l1_kb * 1024, 1, line_shift),
            l2: CacheCfg::new(l2_kb * 1024, 4, line_shift),
            node_mem_lines,
            onchip_lines: node_mem_lines / 2,
            line_shift,
            page_shift: 12,
            lat: LatencyCfg::default(),
            msg: MsgSize::default(),
            net: NetCfg {
                bytes_per_cycle: 4,
                ..NetCfg::default()
            },
            handler: HandlerCosts::paper(ControllerKind::Hardware),
            mem_bytes_per_cycle: 32,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: NodeSet,
    owner: Option<NodeId>,
}

#[derive(Debug)]
struct NumaNode {
    caches: PrivCaches,
    onchip: OnChipLru,
    mem_on: Dram,
    mem_off: Dram,
    ctrl: Server,
}

/// The CC-NUMA machine.
#[derive(Debug)]
pub struct NumaSystem {
    cfg: NumaCfg,
    nodes: Vec<NumaNode>,
    // Sorted-key map: directory sweeps (the end-of-run census and any
    // whole-directory scan) must observe a deterministic order.
    dir: BTreeMap<Line, DirEntry>,
    pages: PageTable,
    net: Network,
    stats: ProtoStats,
}

impl NumaSystem {
    /// Builds an idle NUMA machine.
    pub fn new(cfg: NumaCfg) -> Self {
        assert!(cfg.nodes > 0 && cfg.nodes <= NodeSet::MAX_NODES);
        let line_bytes = 1u64 << cfg.line_shift;
        let transfer = line_bytes.div_ceil(cfg.mem_bytes_per_cycle);
        // Calibrate the DRAM device latency so the end-to-end local
        // round trip (L2 probe + device + line fill) lands on Table 1's
        // 37/57-cycle values.
        let overhead = cfg.lat.l2 + cfg.lat.fill + transfer;
        let nodes = (0..cfg.nodes)
            .map(|_| NumaNode {
                caches: PrivCaches::new(cfg.l1, cfg.l2),
                onchip: OnChipLru::new(cfg.onchip_lines as usize),
                mem_on: Dram::new(
                    cfg.lat.mem_on.saturating_sub(overhead),
                    cfg.mem_bytes_per_cycle,
                ),
                mem_off: Dram::new(
                    cfg.lat.mem_off.saturating_sub(overhead),
                    cfg.mem_bytes_per_cycle,
                ),
                ctrl: Server::new(),
            })
            .collect();
        let net = Network::new(Mesh::for_nodes(cfg.nodes), cfg.net);
        NumaSystem {
            pages: PageTable::new(cfg.page_shift),
            dir: BTreeMap::new(),
            nodes,
            net,
            stats: ProtoStats::default(),
            cfg,
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &NumaCfg {
        &self.cfg
    }

    fn lines_per_page(&self) -> u64 {
        1 << (self.cfg.page_shift - self.cfg.line_shift)
    }

    fn capacity_pages(&self) -> u64 {
        self.cfg.node_mem_lines / self.lines_per_page()
    }

    /// Home of a line: first-touch with capacity spill to the
    /// least-loaded node.
    fn home_of(&mut self, line: Line, toucher: NodeId) -> NodeId {
        let page = line >> (self.cfg.page_shift - self.cfg.line_shift);
        if let Some(h) = self.pages.home(page) {
            return h;
        }
        let cap = self.capacity_pages();
        let home = if self.pages.pages_at(toucher) < cap {
            toucher
        } else {
            (0..self.cfg.nodes)
                .min_by_key(|&n| (self.pages.pages_at(n), n))
                .expect("at least one node")
        };
        self.pages.home_or_assign(page, || home)
    }

    fn ctrl_bytes(&self) -> u32 {
        self.msg_ctrl()
    }

    fn msg_ctrl(&self) -> u32 {
        self.cfg.msg.ctrl
    }

    fn msg_data(&self) -> u32 {
        data_bytes(self.cfg.msg.data_header, self.cfg.line_shift)
    }

    /// Local memory access at `node` (dir access overlapped).
    fn local_mem(&mut self, node: NodeId, line: Line, now: Cycle) -> Cycle {
        let bytes = 1u64 << self.cfg.line_shift;
        let n = &mut self.nodes[node];
        match n.onchip.touch(line) {
            pimdsm_mem::Residency::OnChip => n.mem_on.access(now, bytes),
            pimdsm_mem::Residency::OffChip => n.mem_off.access(now, bytes),
        }
    }

    /// Handles an L2 victim produced by a fill at `node`.
    fn handle_victim(&mut self, node: NodeId, victim: Option<(Line, CState)>, now: Cycle) {
        let Some((line, state)) = victim else { return };
        match state {
            CState::Shared => {
                // Silent drop; the directory keeps a stale sharer bit,
                // which later costs at most a wasted invalidation.
            }
            CState::Dirty => {
                self.stats.write_backs += 1;
                let home = self
                    .pages
                    .home(line >> (self.cfg.page_shift - self.cfg.line_shift))
                    .expect("dirty line must have a mapped page");
                let entry = self.dir.entry(line).or_default();
                entry.owner = None;
                if home == node {
                    self.local_mem(node, line, now);
                } else {
                    let bytes = self.msg_data();
                    let t = self.net.send(node, home, bytes, now);
                    let (l, o) = self.cfg.handler.cost(HandlerKind::WriteBack, 0);
                    let g = self.nodes[home].ctrl.dispatch(t, l, o);
                    self.local_mem(home, line, g.start);
                }
            }
        }
    }

    /// Invalidates `line` at each node of `targets`, acks collected at
    /// `collector`. Returns the cycle when the last ack arrives.
    fn invalidate_all(
        &mut self,
        targets: &[NodeId],
        line: Line,
        from: NodeId,
        collector: NodeId,
        at: Cycle,
    ) -> Cycle {
        let mut done = at;
        let ctrl = self.ctrl_bytes();
        let (al, ao) = self.cfg.handler.cost(HandlerKind::Acknowledgment, 0);
        for &k in targets {
            self.stats.invalidations += 1;
            let t1 = self.net.send(from, k, ctrl, at);
            self.nodes[k].caches.invalidate(line);
            let start = self.nodes[k].ctrl.occupy(t1, ao);
            let t2 = self.net.send(k, collector, ctrl, start + al);
            done = done.max(t2);
        }
        done
    }
}

impl MemSystem for NumaSystem {
    fn name(&self) -> &'static str {
        "NUMA"
    }

    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        if let Some(level) = self.nodes[node].caches.read_probe(line) {
            let lat = match level {
                Level::L1 => self.cfg.lat.l1,
                _ => self.cfg.lat.l2,
            };
            let done = now + lat;
            self.stats.record_read(level, lat);
            return Access {
                done_at: done,
                level,
            };
        }

        let t = now + self.cfg.lat.l2; // L1+L2 probe time before going out
        let home = self.home_of(line, node);
        let entry = self.dir.get(&line).copied().unwrap_or_default();
        let ctrl = self.ctrl_bytes();
        let data = self.msg_data();
        let (rl, ro) = self.cfg.handler.cost(HandlerKind::Read, 0);

        let (data_at, level) = if home == node {
            match entry.owner {
                Some(k) if k != node => {
                    // Local home, dirty at remote k: fetch + write back here.
                    let t1 = self.net.send(node, k, ctrl, t);
                    let g = self.nodes[k].ctrl.dispatch(t1, rl, ro);
                    self.nodes[k].caches.downgrade(line);
                    let t2 = self.net.send(k, node, data, g.reply_at);
                    self.local_mem(node, line, t2); // sharing write-back
                    let e = self.dir.entry(line).or_default();
                    e.owner = None;
                    e.sharers.insert(k);
                    (t2, Level::Hop2)
                }
                _ => {
                    // Clean at local home: directory overlapped with memory.
                    let m = self.local_mem(node, line, t);
                    (m, Level::LocalMem)
                }
            }
        } else {
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.nodes[home].ctrl.dispatch(t1, rl, ro);
            match entry.owner {
                Some(k) if k != node && k != home => {
                    // Forward to the owner; owner replies to the requestor
                    // and writes the line back to the home (DASH style).
                    let t2 = self.net.send(home, k, ctrl, g.reply_at);
                    let g2 = self.nodes[k].ctrl.dispatch(t2, rl, ro);
                    self.nodes[k].caches.downgrade(line);
                    let t3 = self.net.send(k, node, data, g2.reply_at);
                    let twb = self.net.send(k, home, data, g2.reply_at);
                    self.local_mem(home, line, twb);
                    let e = self.dir.entry(line).or_default();
                    e.owner = None;
                    e.sharers.insert(k);
                    self.stats.master_fetches += 1;
                    (t3, Level::Hop3)
                }
                Some(k) if k == home => {
                    // Home itself holds it dirty in its caches.
                    self.nodes[home].caches.downgrade(line);
                    let m = self.local_mem(home, line, g.reply_at);
                    let t2 = self.net.send(home, node, data, m);
                    let e = self.dir.entry(line).or_default();
                    e.owner = None;
                    e.sharers.insert(home);
                    (t2, Level::Hop2)
                }
                _ => {
                    // Clean at home: the directory access is overlapped
                    // with the memory access and adds no latency.
                    let m = self.local_mem(home, line, g.start);
                    let t2 = self.net.send(home, node, data, m);
                    (t2, Level::Hop2)
                }
            }
        };

        self.dir.entry(line).or_default().sharers.insert(node);
        let done = data_at + self.cfg.lat.fill;
        let victim = self.nodes[node].caches.fill(line, CState::Shared);
        self.handle_victim(node, victim, done);
        self.stats.record_read(level, done - now);
        Access {
            done_at: done,
            level,
        }
    }

    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        match self.nodes[node].caches.write_probe(line) {
            WriteProbe::Done(level) => {
                let lat = match level {
                    Level::L1 => self.cfg.lat.l1,
                    _ => self.cfg.lat.l2,
                };
                return Access {
                    done_at: now + lat,
                    level,
                };
            }
            WriteProbe::NeedUpgrade => {
                let t = now + self.cfg.lat.l2;
                let home = self.home_of(line, node);
                let entry = self.dir.entry(line).or_default();
                let targets: Vec<NodeId> = entry.sharers.iter().filter(|&s| s != node).collect();
                entry.sharers.clear();
                entry.sharers.insert(node);
                entry.owner = Some(node);
                let ctrl = self.ctrl_bytes();
                let (xl, xo) = self
                    .cfg
                    .handler
                    .cost(HandlerKind::ReadExclusive, targets.len() as u32);
                let (done, level) = if home == node {
                    let g = self.nodes[home].ctrl.dispatch(t, xl, xo);
                    let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                    (acks.max(g.reply_at), Level::LocalMem)
                } else {
                    self.stats.remote_writes += 1;
                    let t1 = self.net.send(node, home, ctrl, t);
                    let g = self.nodes[home].ctrl.dispatch(t1, xl, xo);
                    let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                    let grant = self.net.send(home, node, ctrl, g.reply_at);
                    (acks.max(grant), Level::Hop2)
                };
                self.nodes[node].caches.mark_dirty(line);
                return Access {
                    done_at: done + self.cfg.lat.fill,
                    level,
                };
            }
            WriteProbe::Miss => {}
        }

        // Read-exclusive: fetch the line with ownership.
        let t = now + self.cfg.lat.l2;
        let home = self.home_of(line, node);
        let entry = self.dir.get(&line).copied().unwrap_or_default();
        let targets: Vec<NodeId> = entry.sharers.iter().filter(|&s| s != node).collect();
        let ctrl = self.ctrl_bytes();
        let data = self.msg_data();
        let (xl, xo) = self
            .cfg
            .handler
            .cost(HandlerKind::ReadExclusive, targets.len() as u32);

        let (data_at, level) = if home == node {
            match entry.owner {
                Some(k) if k != node => {
                    let t1 = self.net.send(node, k, ctrl, t);
                    let g = self.nodes[k].ctrl.dispatch(t1, xl, xo);
                    self.nodes[k].caches.invalidate(line);
                    self.stats.invalidations += 1;
                    let t2 = self.net.send(k, node, data, g.reply_at);
                    (t2, Level::Hop2)
                }
                _ => {
                    let g = self.nodes[node].ctrl.dispatch(t, xl, xo);
                    let m = self.local_mem(node, line, t);
                    let acks = self.invalidate_all(&targets, line, node, node, g.reply_at);
                    (m.max(acks), Level::LocalMem)
                }
            }
        } else {
            self.stats.remote_writes += 1;
            let t1 = self.net.send(node, home, ctrl, t);
            let g = self.nodes[home].ctrl.dispatch(t1, xl, xo);
            match entry.owner {
                Some(k) if k != node && k != home => {
                    let t2 = self.net.send(home, k, ctrl, g.reply_at);
                    let (rl, ro) = self.cfg.handler.cost(HandlerKind::Read, 0);
                    let g2 = self.nodes[k].ctrl.dispatch(t2, rl, ro);
                    self.nodes[k].caches.invalidate(line);
                    self.stats.invalidations += 1;
                    let t3 = self.net.send(k, node, data, g2.reply_at);
                    (t3, Level::Hop3)
                }
                Some(k) if k == home => {
                    self.nodes[home].caches.invalidate(line);
                    self.stats.invalidations += 1;
                    let m = self.local_mem(home, line, g.reply_at);
                    let t2 = self.net.send(home, node, data, m);
                    (t2, Level::Hop2)
                }
                _ => {
                    let m = self.local_mem(home, line, g.start);
                    let acks = self.invalidate_all(&targets, line, home, node, g.reply_at);
                    let t2 = self.net.send(home, node, data, m);
                    (t2.max(acks), Level::Hop2)
                }
            }
        };

        let e = self.dir.entry(line).or_default();
        e.sharers.clear();
        e.owner = Some(node);
        let done = data_at + self.cfg.lat.fill;
        let victim = self.nodes[node].caches.fill(line, CState::Dirty);
        self.handle_victim(node, victim, done);
        Access {
            done_at: done,
            level,
        }
    }

    fn line_shift(&self) -> u32 {
        self.cfg.line_shift
    }

    fn compute_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes).collect()
    }

    fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    fn census(&self) -> Census {
        let mut c = Census {
            d_slots: self.cfg.node_mem_lines * self.cfg.nodes as u64,
            ..Census::default()
        };
        for e in self.dir.values() {
            if e.owner.is_some() {
                c.dirty_in_p += 1;
            } else if !e.sharers.is_empty() {
                c.shared_in_p += 1;
                c.shared_with_home_copy += 1;
            } else {
                c.d_node_only += 1;
            }
        }
        c
    }

    fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    fn net_link_busy(&self) -> (Cycle, Cycle) {
        (self.net.total_link_busy(), self.net.max_link_busy())
    }

    fn controller_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        let busy: Cycle = self.nodes.iter().map(|n| n.ctrl.busy_cycles()).sum();
        busy as f64 / (elapsed * self.nodes.len() as u64) as f64
    }

    fn attach_tracer(&mut self, tracer: pimdsm_obs::Tracer) {
        // NUMA's hardware controllers emit no per-handler spans; link
        // transfers are still recorded by the network.
        self.net.attach_tracer(tracer);
    }

    fn epoch_probe(&self) -> pimdsm_obs::EpochProbe {
        pimdsm_obs::EpochProbe {
            ctrl_busy: self.nodes.iter().map(|n| n.ctrl.busy_cycles()).sum(),
            ctrl_count: self.nodes.len(),
            link_busy: self.net.total_link_busy(),
            link_count: self.net.num_links(),
            shared_list_depth: 0,
            free_slots: 0,
            reads_by_level: self.stats.reads_by_level,
            remote_writes: self.stats.remote_writes,
            net_messages: self.net.stats().messages,
        }
    }

    fn preload(&mut self, addr: u64, owner: NodeId, _kind: PreloadKind) {
        let line = line_of(addr, self.cfg.line_shift);
        // Plain memory backs everything: establishing the page home is
        // all the state NUMA needs (capacity spill included).
        self.home_of(line, owner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> NumaSystem {
        NumaSystem::new(NumaCfg::paper(4, 8, 32, 4096))
    }

    #[test]
    fn first_read_is_local_after_first_touch() {
        let mut s = sys();
        let a = s.read(0, 0x1000, 0);
        assert_eq!(a.level, Level::LocalMem);
        // Round trip within a few cycles of Table 1 (37) plus probe/fill.
        assert!(a.done_at < 70, "local read took {}", a.done_at);
    }

    #[test]
    fn cache_hits_after_fill() {
        let mut s = sys();
        s.read(0, 0x1000, 0);
        let a = s.read(0, 0x1000, 100);
        assert_eq!(a.level, Level::L1);
        assert_eq!(a.done_at, 103);
    }

    #[test]
    fn remote_read_is_two_hops() {
        let mut s = sys();
        s.read(0, 0x1000, 0); // node 0 first-touches the page
        let a = s.read(1, 0x1000, 1000);
        assert_eq!(a.level, Level::Hop2);
        assert!(a.done_at - 1000 > 100, "remote read too fast");
    }

    #[test]
    fn dirty_remote_read_is_three_hops() {
        let mut s = sys();
        s.read(0, 0x1000, 0); // home = node 0
        s.write(1, 0x1000, 100); // node 1 owns it dirty
        let a = s.read(2, 0x1000, 10_000);
        assert_eq!(a.level, Level::Hop3);
    }

    #[test]
    fn read_after_dirty_remote_finds_clean_home() {
        let mut s = sys();
        s.read(0, 0x1000, 0);
        s.write(1, 0x1000, 100);
        s.read(2, 0x1000, 10_000); // forces sharing write-back to home 0
        let a = s.read(3, 0x1000, 100_000);
        assert_eq!(a.level, Level::Hop2, "home has a clean copy again");
    }

    #[test]
    fn write_hit_dirty_is_cheap() {
        let mut s = sys();
        s.write(0, 0x1000, 0);
        let a = s.write(0, 0x1000, 500);
        assert_eq!(a.level, Level::L1);
        assert_eq!(a.done_at, 503);
    }

    #[test]
    fn upgrade_invalidates_sharers() {
        let mut s = sys();
        s.read(0, 0x1000, 0);
        s.read(1, 0x1000, 1000);
        s.read(2, 0x1000, 2000);
        let before = s.stats().invalidations;
        s.write(1, 0x1000, 10_000);
        assert!(s.stats().invalidations >= before + 2, "0 and 2 invalidated");
        // Node 2's cached copy is gone: reading again is remote.
        let a = s.read(2, 0x1000, 100_000);
        assert_ne!(a.level, Level::L1);
        assert_ne!(a.level, Level::L2);
    }

    #[test]
    fn local_write_to_uncached_line() {
        let mut s = sys();
        let a = s.write(0, 0x2000, 0);
        assert_eq!(a.level, Level::LocalMem);
    }

    #[test]
    fn census_counts_states() {
        let mut s = sys();
        s.read(0, 0x0, 0); // shared
        s.write(1, 0x4000, 0); // dirty at 1 (page homed at 1)
        let c = s.census();
        assert_eq!(c.shared_in_p, 1);
        assert_eq!(c.dirty_in_p, 1);
    }

    #[test]
    fn first_touch_spills_when_node_full() {
        // Tiny memory: 64 lines per node = 1 page of 64 lines.
        let mut cfg = NumaCfg::paper(2, 8, 32, 64);
        cfg.page_shift = 12;
        let mut s = NumaSystem::new(cfg);
        s.read(0, 0, 0); // page 0 -> node 0 (fills its 1-page capacity)
        s.read(0, 0x1000, 100); // page 1 must spill to node 1
        assert_eq!(s.pages.home(0), Some(0));
        assert_eq!(s.pages.home(1), Some(1));
    }
}
