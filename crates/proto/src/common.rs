//! Types shared by all three protocols.

use pimdsm_engine::Cycle;

/// Node index within the machine (mesh position).
pub type NodeId = usize;

/// A set of node ids as a bitset (machines in the paper's evaluation have
/// at most 64 nodes).
///
/// # Examples
///
/// ```
/// use pimdsm_proto::NodeSet;
///
/// let mut s = NodeSet::new();
/// s.insert(3);
/// s.insert(17);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 17]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct NodeSet(u64);

impl NodeSet {
    /// Maximum node id representable.
    pub const MAX_NODES: usize = 64;

    /// Creates an empty set.
    pub fn new() -> Self {
        NodeSet(0)
    }

    /// Creates a set containing one node.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = NodeSet::new();
        s.insert(node);
        s
    }

    /// Adds a node.
    ///
    /// # Panics
    ///
    /// Panics if `node >= 64`.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node < Self::MAX_NODES, "node {node} out of NodeSet range");
        self.0 |= 1 << node;
    }

    /// Removes a node; returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let had = self.contains(node);
        self.0 &= !(1u64 << node);
        had
    }

    /// Membership test.
    pub fn contains(&self, node: NodeId) -> bool {
        node < Self::MAX_NODES && self.0 & (1 << node) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        let bits = self.0;
        (0..Self::MAX_NODES).filter(move |i| bits & (1 << i) != 0)
    }

    /// An arbitrary member (the lowest), if any.
    pub fn first(&self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }
}

/// A fixed-capacity list of node ids, bounded by [`NodeSet::MAX_NODES`].
///
/// Protocol hot paths (write invalidations, page-out recalls) collect
/// small target sets per transaction; an inline array keeps those
/// collections allocation-free. Derefs to a slice, so all read-only
/// slice methods (`len`, `first`, `contains`, iteration) apply.
///
/// # Examples
///
/// ```
/// use pimdsm_proto::NodeList;
///
/// let mut l = NodeList::new();
/// l.push(3);
/// l.push(17);
/// l.retain(|&n| n != 3);
/// assert_eq!(&l[..], &[17]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NodeList {
    nodes: [NodeId; NodeSet::MAX_NODES],
    len: usize,
}

impl NodeList {
    /// Creates an empty list.
    pub fn new() -> Self {
        NodeList {
            nodes: [0; NodeSet::MAX_NODES],
            len: 0,
        }
    }

    /// Appends a node.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds [`NodeSet::MAX_NODES`] entries.
    pub fn push(&mut self, node: NodeId) {
        self.nodes[self.len] = node;
        self.len += 1;
    }

    /// Collects the members of `set` except `exclude` — the usual
    /// invalidation fan-out: every sharer but the requester.
    pub fn sharers_except(set: &NodeSet, exclude: NodeId) -> NodeList {
        let mut l = NodeList::new();
        for s in set.iter() {
            if s != exclude {
                l.push(s);
            }
        }
        l
    }

    /// Keeps only the nodes for which `keep` returns true, preserving
    /// order.
    pub fn retain(&mut self, mut keep: impl FnMut(&NodeId) -> bool) {
        let mut w = 0;
        for r in 0..self.len {
            if keep(&self.nodes[r]) {
                self.nodes[w] = self.nodes[r];
                w += 1;
            }
        }
        self.len = w;
    }
}

impl Default for NodeList {
    fn default() -> Self {
        NodeList::new()
    }
}

impl std::ops::Deref for NodeList {
    type Target = [NodeId];

    fn deref(&self) -> &[NodeId] {
        &self.nodes[..self.len]
    }
}

impl std::ops::DerefMut for NodeList {
    fn deref_mut(&mut self) -> &mut [NodeId] {
        &mut self.nodes[..self.len]
    }
}

/// Level of the memory hierarchy that satisfied a read — the categories of
/// the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// First-level cache hit.
    L1,
    /// Second-level cache hit.
    L2,
    /// Local memory (on- or off-chip DRAM of the requesting node).
    LocalMem,
    /// Remote, satisfied in two node hops (requestor → home → requestor).
    Hop2,
    /// Remote, satisfied in three node hops (requestor → home → owner →
    /// requestor).
    Hop3,
}

impl Level {
    /// All levels, in hierarchy order.
    pub const ALL: [Level; 5] = [
        Level::L1,
        Level::L2,
        Level::LocalMem,
        Level::Hop2,
        Level::Hop3,
    ];

    /// Index into [`Level::ALL`].
    pub fn index(self) -> usize {
        match self {
            Level::L1 => 0,
            Level::L2 => 1,
            Level::LocalMem => 2,
            Level::Hop2 => 3,
            Level::Hop3 => 4,
        }
    }

    /// Display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            Level::L1 => "FLC",
            Level::L2 => "SLC",
            Level::LocalMem => "Memory",
            Level::Hop2 => "2Hop",
            Level::Hop3 => "3Hop",
        }
    }
}

/// How initialization left a preloaded line (see
/// [`MemSystem::preload`](crate::MemSystem::preload)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreloadKind {
    /// Written by its owner and not shared since: caching architectures
    /// hold it dirty in the owner's local memory.
    ColdPrivate,
    /// Initialized once, read-shared afterwards: clean in backing memory,
    /// spread wherever init-time capacity pushed it.
    SharedInit,
}

/// Outcome of one memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the requesting processor has the data (reads) or
    /// ownership (writes).
    pub done_at: Cycle,
    /// Which level satisfied it.
    pub level: Level,
    /// Per-component latency decomposition, indexed by the constants in
    /// [`pimdsm_obs::breakdown`]. The five entries sum to the
    /// transaction's total latency (`done_at - now`) by construction.
    pub breakdown: [Cycle; 5],
}

/// State of a line in a private (L1/L2) cache. Absence means invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CState {
    /// Clean, possibly shared with other nodes.
    Shared,
    /// Modified; this cache owns the line.
    Dirty,
}

/// State of a line in an attraction memory. Absence means invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmState {
    /// Clean copy; the master copy is elsewhere.
    Shared,
    /// Clean copy holding *mastership* (the COMA-inspired shared-master
    /// state of Section 2.2.2): the home may have dropped its own copy, so
    /// this copy must be written back on displacement.
    SharedMaster,
    /// Modified; the only valid copy in the machine.
    Dirty,
}

impl AmState {
    /// Whether displacing this line requires writing it back (master or
    /// dirty copies cannot be dropped silently).
    pub fn must_write_back(self) -> bool {
        matches!(self, AmState::SharedMaster | AmState::Dirty)
    }
}

/// Uncontended round-trip latencies, after Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyCfg {
    /// L1 hit round trip (cycles).
    pub l1: Cycle,
    /// L2 hit round trip (cycles).
    pub l2: Cycle,
    /// Local on-chip memory round trip (cycles).
    pub mem_on: Cycle,
    /// Local off-chip memory round trip (cycles).
    pub mem_off: Cycle,
    /// Attraction-memory tag check on a miss (on-chip tags; cycles).
    pub am_tag_check: Cycle,
    /// Memory/cache-line fill overhead at the requestor (cycles).
    pub fill: Cycle,
    /// Disk round trip for paged-out lines (cycles).
    pub disk: Cycle,
}

impl Default for LatencyCfg {
    fn default() -> Self {
        LatencyCfg {
            l1: 3,
            l2: 6,
            mem_on: 37,
            mem_off: 57,
            am_tag_check: 6,
            fill: 4,
            disk: 2_000_000,
        }
    }
}

/// Message sizes on the interconnect, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSize {
    /// Control message (request, ack, invalidation, hint).
    pub ctrl: u32,
    /// Data message header; a data message is `header + line size`.
    pub data_header: u32,
}

impl Default for MsgSize {
    fn default() -> Self {
        MsgSize {
            ctrl: 16,
            data_header: 16,
        }
    }
}

/// The major protocol handler types of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerKind {
    /// Read request at the home.
    Read,
    /// Read-exclusive (write/upgrade) request at the home.
    ReadExclusive,
    /// Acknowledgment / replacement-hint processing.
    Acknowledgment,
    /// Write-back (displacement of a dirty or master line) at the home.
    WriteBack,
}

/// Latency/occupancy cost table for protocol handlers (Table 2).
///
/// The AGG D-nodes execute these in software; NUMA and COMA use
/// custom hardware the paper models at 70% of the software cost
/// ([`ControllerKind::Hardware`]).
///
/// # Examples
///
/// ```
/// use pimdsm_proto::{ControllerKind, HandlerCosts, HandlerKind};
///
/// let sw = HandlerCosts::paper(ControllerKind::Software);
/// let hw = HandlerCosts::paper(ControllerKind::Hardware);
/// let (sl, so) = sw.cost(HandlerKind::Read, 0);
/// let (hl, ho) = hw.cost(HandlerKind::Read, 0);
/// assert_eq!((sl, so), (40, 80));
/// assert_eq!((hl, ho), (28, 56));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerCosts {
    /// (latency, occupancy) for Read.
    pub read: (Cycle, Cycle),
    /// (latency, occupancy) for Read-Exclusive, before the per-invalidation
    /// occupancy term.
    pub read_ex: (Cycle, Cycle),
    /// Occupancy added per invalidation sent by Read-Exclusive.
    pub per_inval: Cycle,
    /// (latency, occupancy) for Acknowledgment.
    pub ack: (Cycle, Cycle),
    /// (latency, occupancy) for Write-Back.
    pub write_back: (Cycle, Cycle),
}

/// Whether protocol processing runs in software on a PIM core (AGG) or in
/// a custom hardware controller (NUMA/COMA, at 70% of the software cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// Software handlers on a D-node processor (Table 2 as-is).
    Software,
    /// Custom hardware controller (70% of Table 2, per Section 3).
    Hardware,
}

impl HandlerCosts {
    /// The paper's Table 2 costs, scaled for the controller kind.
    pub fn paper(kind: ControllerKind) -> Self {
        let base = HandlerCosts {
            read: (40, 80),
            read_ex: (45, 80),
            per_inval: 10,
            ack: (40, 40),
            write_back: (40, 140),
        };
        match kind {
            ControllerKind::Software => base,
            ControllerKind::Hardware => base.scaled(0.7),
        }
    }

    /// Returns the table scaled by `factor` (used for the handler-cost
    /// sensitivity ablation).
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |c: Cycle| ((c as f64 * factor).round() as Cycle).max(1);
        HandlerCosts {
            read: (s(self.read.0), s(self.read.1)),
            read_ex: (s(self.read_ex.0), s(self.read_ex.1)),
            per_inval: s(self.per_inval),
            ack: (s(self.ack.0), s(self.ack.1)),
            write_back: (s(self.write_back.0), s(self.write_back.1)),
        }
    }

    /// (latency, occupancy) for a handler sending `invals` invalidations.
    pub fn cost(&self, kind: HandlerKind, invals: u32) -> (Cycle, Cycle) {
        match kind {
            HandlerKind::Read => self.read,
            HandlerKind::ReadExclusive => (
                self.read_ex.0,
                self.read_ex.1 + self.per_inval * invals as Cycle,
            ),
            HandlerKind::Acknowledgment => self.ack,
            HandlerKind::WriteBack => self.write_back,
        }
    }
}

/// Classification of every mapped line in the machine, for Figure 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Census {
    /// Lines whose only valid copy is dirty in some P-node (the home keeps
    /// no place holder).
    pub dirty_in_p: u64,
    /// Lines cached shared by at least one P-node.
    pub shared_in_p: u64,
    /// Lines whose only copy sits in their home D-node memory.
    pub d_node_only: u64,
    /// Lines currently paged out to disk.
    pub paged_out: u64,
    /// Total line slots available in D-node (or home) memory.
    pub d_slots: u64,
    /// Of the `shared_in_p` lines, how many still have a home copy.
    pub shared_with_home_copy: u64,
}

impl Census {
    /// Total mapped lines.
    pub fn total_lines(&self) -> u64 {
        self.dirty_in_p + self.shared_in_p + self.d_node_only + self.paged_out
    }

    /// D-node memory slots not holding any line.
    pub fn unused_slots(&self) -> i64 {
        self.d_slots as i64 - self.d_node_only as i64 - self.shared_with_home_copy as i64
    }
}

/// Aggregate protocol statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtoStats {
    /// Reads satisfied per level (indexed by [`Level::index`]).
    pub reads_by_level: [u64; 5],
    /// Summed read latency per level, cycles.
    pub read_latency_by_level: [Cycle; 5],
    /// Summed per-component read latency per level: the outer index is
    /// [`Level::index`], the inner index the constants in
    /// [`pimdsm_obs::breakdown`]. Each row sums to the corresponding
    /// `read_latency_by_level` entry (the machine-checked Figure 7
    /// decomposition).
    pub read_breakdown_by_level: [[Cycle; 5]; 5],
    /// Write/upgrade transactions that left the node.
    pub remote_writes: u64,
    /// Invalidations sent.
    pub invalidations: u64,
    /// Write-backs of dirty/master lines to a home.
    pub write_backs: u64,
    /// COMA line injections (AGG never injects).
    pub injections: u64,
    /// Lines the home had dropped that needed a 3-hop master fetch.
    pub master_fetches: u64,
    /// Page-out events (AGG).
    pub page_outs: u64,
    /// Disk faults (paged-out or overflowed lines fetched back).
    pub disk_faults: u64,
    /// Master lines COMA had to spill to disk because no memory would
    /// absorb the injection.
    pub disk_spills: u64,
}

impl ProtoStats {
    /// Records a satisfied read.
    pub fn record_read(&mut self, level: Level, latency: Cycle) {
        self.reads_by_level[level.index()] += 1;
        self.read_latency_by_level[level.index()] += latency;
    }

    /// Accumulates a read's per-component latency decomposition (indexed
    /// by the constants in [`pimdsm_obs::breakdown`]).
    pub fn record_read_breakdown(&mut self, level: Level, comps: &[Cycle; 5]) {
        for (slot, c) in self.read_breakdown_by_level[level.index()]
            .iter_mut()
            .zip(comps)
        {
            *slot += c;
        }
    }

    /// Total reads.
    pub fn total_reads(&self) -> u64 {
        self.reads_by_level.iter().sum()
    }

    /// Total summed read latency.
    pub fn total_read_latency(&self) -> Cycle {
        self.read_latency_by_level.iter().sum()
    }
}

impl ProtoStats {
    /// Reconstructs the statistics from the JSON produced by
    /// [`ToJson::to_json`](pimdsm_obs::ToJson::to_json) — the inverse used
    /// by `pimdsm-lab`'s content-addressed result cache.
    pub fn from_json(v: &pimdsm_obs::JsonValue) -> Result<ProtoStats, String> {
        let by_level = |key: &str| -> Result<[u64; 5], String> {
            let obj = v.get(key).ok_or_else(|| format!("missing {key}"))?;
            let mut out = [0u64; 5];
            for l in Level::ALL {
                out[l.index()] = obj
                    .get(l.label())
                    .and_then(|x| x.as_u64())
                    .ok_or_else(|| format!("missing {key}.{}", l.label()))?;
            }
            Ok(out)
        };
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing {key}"))
        };
        let breakdown = |key: &str| -> Result<[[u64; 5]; 5], String> {
            let obj = v.get(key).ok_or_else(|| format!("missing {key}"))?;
            let mut out = [[0u64; 5]; 5];
            for l in Level::ALL {
                let row = obj
                    .get(l.label())
                    .ok_or_else(|| format!("missing {key}.{}", l.label()))?;
                for (i, name) in pimdsm_obs::breakdown::COMPONENTS.iter().enumerate() {
                    out[l.index()][i] = row
                        .get(name)
                        .and_then(|x| x.as_u64())
                        .ok_or_else(|| format!("missing {key}.{}.{name}", l.label()))?;
                }
            }
            Ok(out)
        };
        Ok(ProtoStats {
            reads_by_level: by_level("reads_by_level")?,
            read_latency_by_level: by_level("read_latency_by_level")?,
            read_breakdown_by_level: breakdown("read_breakdown_by_level")?,
            remote_writes: field("remote_writes")?,
            invalidations: field("invalidations")?,
            write_backs: field("write_backs")?,
            injections: field("injections")?,
            master_fetches: field("master_fetches")?,
            page_outs: field("page_outs")?,
            disk_faults: field("disk_faults")?,
            disk_spills: field("disk_spills")?,
        })
    }
}

impl pimdsm_obs::ToJson for ProtoStats {
    fn to_json(&self) -> pimdsm_obs::JsonValue {
        use pimdsm_obs::JsonValue;
        let by_level = |values: &[u64; 5]| {
            JsonValue::Obj(
                Level::ALL
                    .iter()
                    .map(|&l| (l.label().to_string(), JsonValue::u64(values[l.index()])))
                    .collect(),
            )
        };
        let breakdown = JsonValue::Obj(
            Level::ALL
                .iter()
                .map(|&l| {
                    let row = &self.read_breakdown_by_level[l.index()];
                    (
                        l.label().to_string(),
                        JsonValue::Obj(
                            pimdsm_obs::breakdown::COMPONENTS
                                .iter()
                                .enumerate()
                                .map(|(i, name)| (name.to_string(), JsonValue::u64(row[i])))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        JsonValue::obj([
            ("reads_by_level", by_level(&self.reads_by_level)),
            (
                "read_latency_by_level",
                by_level(&self.read_latency_by_level),
            ),
            ("read_breakdown_by_level", breakdown),
            ("remote_writes", JsonValue::u64(self.remote_writes)),
            ("invalidations", JsonValue::u64(self.invalidations)),
            ("write_backs", JsonValue::u64(self.write_backs)),
            ("injections", JsonValue::u64(self.injections)),
            ("master_fetches", JsonValue::u64(self.master_fetches)),
            ("page_outs", JsonValue::u64(self.page_outs)),
            ("disk_faults", JsonValue::u64(self.disk_faults)),
            ("disk_spills", JsonValue::u64(self.disk_spills)),
        ])
    }
}

impl Census {
    /// Reconstructs the census from its JSON form (inverse of
    /// [`ToJson::to_json`](pimdsm_obs::ToJson::to_json); the derived
    /// `total_lines` field is ignored).
    pub fn from_json(v: &pimdsm_obs::JsonValue) -> Result<Census, String> {
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing {key}"))
        };
        Ok(Census {
            dirty_in_p: field("dirty_in_p")?,
            shared_in_p: field("shared_in_p")?,
            d_node_only: field("d_node_only")?,
            paged_out: field("paged_out")?,
            d_slots: field("d_slots")?,
            shared_with_home_copy: field("shared_with_home_copy")?,
        })
    }
}

impl pimdsm_obs::ToJson for Census {
    fn to_json(&self) -> pimdsm_obs::JsonValue {
        use pimdsm_obs::JsonValue;
        JsonValue::obj([
            ("dirty_in_p", JsonValue::u64(self.dirty_in_p)),
            ("shared_in_p", JsonValue::u64(self.shared_in_p)),
            ("d_node_only", JsonValue::u64(self.d_node_only)),
            ("paged_out", JsonValue::u64(self.paged_out)),
            ("d_slots", JsonValue::u64(self.d_slots)),
            (
                "shared_with_home_copy",
                JsonValue::u64(self.shared_with_home_copy),
            ),
            ("total_lines", JsonValue::u64(self.total_lines())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_basics() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        assert_eq!(s.len(), 2);
        assert!(s.contains(0) && s.contains(63));
        assert!(!s.contains(5));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.first(), Some(63));
        s.clear();
        assert_eq!(s.first(), None);
    }

    #[test]
    #[should_panic(expected = "out of NodeSet range")]
    fn nodeset_rejects_large_ids() {
        NodeSet::new().insert(64);
    }

    #[test]
    fn nodeset_iter_ascending() {
        let mut s = NodeSet::new();
        for n in [9, 1, 33] {
            s.insert(n);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 9, 33]);
    }

    #[test]
    fn level_labels_match_paper() {
        let labels: Vec<_> = Level::ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["FLC", "SLC", "Memory", "2Hop", "3Hop"]);
        for (i, l) in Level::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn handler_costs_table2() {
        let c = HandlerCosts::paper(ControllerKind::Software);
        assert_eq!(c.cost(HandlerKind::Read, 0), (40, 80));
        assert_eq!(c.cost(HandlerKind::ReadExclusive, 3), (45, 110));
        assert_eq!(c.cost(HandlerKind::Acknowledgment, 0), (40, 40));
        assert_eq!(c.cost(HandlerKind::WriteBack, 0), (40, 140));
    }

    #[test]
    fn hardware_is_seventy_percent() {
        let hw = HandlerCosts::paper(ControllerKind::Hardware);
        assert_eq!(hw.cost(HandlerKind::WriteBack, 0), (28, 98));
        assert_eq!(hw.per_inval, 7);
    }

    #[test]
    fn am_state_write_back_rule() {
        assert!(!AmState::Shared.must_write_back());
        assert!(AmState::SharedMaster.must_write_back());
        assert!(AmState::Dirty.must_write_back());
    }

    #[test]
    fn census_accounting() {
        let c = Census {
            dirty_in_p: 10,
            shared_in_p: 5,
            d_node_only: 20,
            paged_out: 1,
            d_slots: 30,
            shared_with_home_copy: 4,
        };
        assert_eq!(c.total_lines(), 36);
        assert_eq!(c.unused_slots(), 6);
    }

    #[test]
    fn proto_stats_read_recording() {
        let mut s = ProtoStats::default();
        s.record_read(Level::L1, 3);
        s.record_read(Level::Hop2, 300);
        assert_eq!(s.total_reads(), 2);
        assert_eq!(s.total_read_latency(), 303);
        assert_eq!(s.reads_by_level[Level::Hop2.index()], 1);
    }

    #[test]
    fn breakdown_rows_accumulate_per_component() {
        let mut s = ProtoStats::default();
        s.record_read(Level::Hop2, 300);
        s.record_read_breakdown(Level::Hop2, &[10, 200, 50, 30, 10]);
        s.record_read_breakdown(Level::Hop2, &[5, 0, 0, 0, 0]);
        let row = s.read_breakdown_by_level[Level::Hop2.index()];
        assert_eq!(row, [15, 200, 50, 30, 10]);
        assert_eq!(row.iter().sum::<u64>(), 305);
    }
}
