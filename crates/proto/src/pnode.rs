//! Per-node storage substrate shared by the three protocols: the private
//! L1/L2 caches and, for AGG and COMA P-nodes, the attraction memory.

use pimdsm_engine::Cycle;
use pimdsm_mem::{AttractionMemory, CacheCfg, Dram, KeyedQueue, Line, Residency, SetAssocCache};

use crate::common::{AmState, CState, LatencyCfg, Level};

/// Attraction-memory replacement priority shared by AGG and COMA:
/// invalid ways are free, then shared non-master lines, then master,
/// then dirty (the paper's Section 3 preference order).
pub fn victim_class(s: &AmState) -> u32 {
    match s {
        AmState::Shared => 2,
        AmState::SharedMaster => 1,
        AmState::Dirty => 0,
    }
}

/// Result of probing the private caches for a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProbe {
    /// The line is already dirty in a private cache; the write completes
    /// at the given level.
    Done(Level),
    /// The line is cached shared; ownership must be obtained, then
    /// [`PrivCaches::mark_dirty`] applied.
    NeedUpgrade,
    /// The line is not cached.
    Miss,
}

/// The private (on-chip SRAM) L1 and L2 caches of a node, kept inclusive:
/// every L1 line is present in L2.
///
/// # Examples
///
/// ```
/// use pimdsm_mem::CacheCfg;
/// use pimdsm_proto::{CState, Level, PrivCaches};
///
/// let mut c = PrivCaches::new(
///     CacheCfg::new(8 * 1024, 1, 6),
///     CacheCfg::new(32 * 1024, 4, 6),
/// );
/// assert_eq!(c.read_probe(100), None);
/// c.fill(100, CState::Shared);
/// assert_eq!(c.read_probe(100), Some(Level::L1));
/// ```
#[derive(Debug, Clone)]
pub struct PrivCaches {
    l1: SetAssocCache<CState>,
    l2: SetAssocCache<CState>,
}

impl PrivCaches {
    /// Creates empty caches with the given geometries.
    ///
    /// # Panics
    ///
    /// Panics if L2 is smaller than L1 (inclusion would be impossible) or
    /// the line sizes differ.
    pub fn new(l1: CacheCfg, l2: CacheCfg) -> Self {
        assert!(
            l2.size_bytes() >= l1.size_bytes(),
            "inclusive L2 must be at least as large as L1"
        );
        assert_eq!(
            l1.line_shift(),
            l2.line_shift(),
            "L1 and L2 must share a line size"
        );
        PrivCaches {
            l1: SetAssocCache::new(l1),
            l2: SetAssocCache::new(l2),
        }
    }

    /// Probes for a read. On an L2 hit the line is filled into L1.
    /// Returns the level that hit, or `None` on a miss.
    pub fn read_probe(&mut self, line: Line) -> Option<Level> {
        if self.l1.get(line).is_some() {
            return Some(Level::L1);
        }
        if let Some(&mut state) = self.l2.get(line) {
            self.fill_l1(line, state);
            return Some(Level::L2);
        }
        None
    }

    /// Probes for a write.
    pub fn write_probe(&mut self, line: Line) -> WriteProbe {
        match self.l1.get(line) {
            Some(CState::Dirty) => return WriteProbe::Done(Level::L1),
            Some(CState::Shared) => return WriteProbe::NeedUpgrade,
            None => {}
        }
        match self.l2.get(line) {
            Some(&mut CState::Dirty) => {
                self.fill_l1(line, CState::Dirty);
                WriteProbe::Done(Level::L2)
            }
            Some(&mut CState::Shared) => WriteProbe::NeedUpgrade,
            None => WriteProbe::Miss,
        }
    }

    fn fill_l1(&mut self, line: Line, state: CState) {
        if let Some(victim) = self.l1.insert(line, state, |_| 0) {
            // Inclusion: the victim is still in L2; propagate dirtiness.
            if victim.state == CState::Dirty {
                if let Some(s) = self.l2.peek_mut(victim.line) {
                    *s = CState::Dirty;
                }
            }
        }
    }

    /// Fills a line into L2 and L1 after a miss was serviced.
    ///
    /// Returns the L2 victim (already purged from L1) that the memory
    /// system must now handle, if any. If the victim had a dirty L1 copy,
    /// the returned state reflects it.
    pub fn fill(&mut self, line: Line, state: CState) -> Option<(Line, CState)> {
        let victim = self.l2.insert(line, state, |_| 0);
        let out = victim.map(|v| {
            let mut st = v.state;
            if let Some(l1st) = self.l1.remove(v.line) {
                if l1st == CState::Dirty {
                    st = CState::Dirty;
                }
            }
            (v.line, st)
        });
        self.fill_l1(line, state);
        out
    }

    /// Removes a line from both caches (remote invalidation), returning
    /// the strongest state removed.
    pub fn invalidate(&mut self, line: Line) -> Option<CState> {
        let s1 = self.l1.remove(line);
        let s2 = self.l2.remove(line);
        match (s1, s2) {
            (Some(CState::Dirty), _) | (_, Some(CState::Dirty)) => Some(CState::Dirty),
            (Some(CState::Shared), _) | (_, Some(CState::Shared)) => Some(CState::Shared),
            _ => None,
        }
    }

    /// Upgrades a cached shared line to dirty after ownership was granted.
    pub fn mark_dirty(&mut self, line: Line) {
        if let Some(s) = self.l1.peek_mut(line) {
            *s = CState::Dirty;
        }
        if let Some(s) = self.l2.peek_mut(line) {
            *s = CState::Dirty;
        }
    }

    /// Downgrades a dirty line to shared (a remote node read it). Returns
    /// whether a dirty copy was present.
    pub fn downgrade(&mut self, line: Line) -> bool {
        let mut was_dirty = false;
        if let Some(s) = self.l1.peek_mut(line) {
            was_dirty |= *s == CState::Dirty;
            *s = CState::Shared;
        }
        if let Some(s) = self.l2.peek_mut(line) {
            was_dirty |= *s == CState::Dirty;
            *s = CState::Shared;
        }
        was_dirty
    }

    /// Strongest cached state of a line (L2 is authoritative under
    /// inclusion), without LRU effects.
    pub fn peek_state(&self, line: Line) -> Option<CState> {
        match (self.l1.peek(line), self.l2.peek(line)) {
            (Some(CState::Dirty), _) | (_, Some(CState::Dirty)) => Some(CState::Dirty),
            (None, None) => None,
            _ => Some(CState::Shared),
        }
    }

    /// Drains both caches, returning every line with its strongest state
    /// (used when a node is reconfigured).
    pub fn drain_all(&mut self) -> Vec<(Line, CState)> {
        let l1: std::collections::BTreeMap<Line, CState> = self.l1.drain_all().collect();
        self.l2
            .drain_all()
            .map(|(line, st)| {
                let strongest = match l1.get(&line) {
                    Some(CState::Dirty) => CState::Dirty,
                    _ => st,
                };
                (line, strongest)
            })
            .collect()
    }

    /// L1 geometry.
    pub fn l1_cfg(&self) -> &CacheCfg {
        self.l1.cfg()
    }

    /// L2 geometry.
    pub fn l2_cfg(&self) -> &CacheCfg {
        self.l2.cfg()
    }
}

/// LRU membership tracker for the on-chip portion of a NUMA node's plain
/// local memory (same swap mechanism as the attraction memory, but every
/// local line is always backed off-chip).
#[derive(Debug, Clone)]
pub struct OnChipLru {
    queue: KeyedQueue<Line>,
    cap: usize,
}

impl OnChipLru {
    /// Tracks at most `cap` on-chip lines.
    pub fn new(cap: usize) -> Self {
        OnChipLru {
            queue: KeyedQueue::new(),
            cap,
        }
    }

    /// Touches a line: returns where it was found; promotes it on chip.
    pub fn touch(&mut self, line: Line) -> Residency {
        if self.cap == 0 {
            return Residency::OffChip;
        }
        if self.queue.move_to_back(&line) {
            Residency::OnChip
        } else {
            if self.queue.len() >= self.cap {
                self.queue.pop_front();
            }
            self.queue.push_back(line);
            Residency::OffChip
        }
    }
}

/// The memory-side storage of an AGG or COMA P-node: attraction memory
/// plus the DRAM devices that time its accesses.
#[derive(Debug, Clone)]
pub struct PNodeStore {
    /// Private caches.
    pub caches: PrivCaches,
    /// Tagged local memory organized as a cache.
    pub am: AttractionMemory<AmState>,
    /// On-chip DRAM device (timing).
    pub mem_on: Dram,
    /// Off-chip DRAM device (timing).
    pub mem_off: Dram,
}

impl PNodeStore {
    /// Builds a P-node store.
    ///
    /// `am_cfg` covers the *total* local memory; `onchip_lines` of it are
    /// on chip. DRAM device latencies are derived from `lat_on`/`lat_off`
    /// round trips minus the line transfer time.
    pub fn new(
        l1: CacheCfg,
        l2: CacheCfg,
        am_cfg: CacheCfg,
        onchip_lines: usize,
        lat_on: Cycle,
        lat_off: Cycle,
        mem_bytes_per_cycle: u64,
    ) -> Self {
        let line_bytes = 1u64 << am_cfg.line_shift();
        let transfer = line_bytes.div_ceil(mem_bytes_per_cycle);
        PNodeStore {
            caches: PrivCaches::new(l1, l2),
            am: AttractionMemory::new(am_cfg, onchip_lines),
            mem_on: Dram::new(lat_on.saturating_sub(transfer), mem_bytes_per_cycle),
            mem_off: Dram::new(lat_off.saturating_sub(transfer), mem_bytes_per_cycle),
        }
    }

    /// Builds a store whose DRAM device latencies are calibrated so the
    /// end-to-end local round trip (L2 probe + AM tag check + device +
    /// fill) lands on the latency table's `mem_on`/`mem_off` values.
    pub fn calibrated(
        l1: CacheCfg,
        l2: CacheCfg,
        am_cfg: CacheCfg,
        onchip_lines: usize,
        lat: &LatencyCfg,
        mem_bytes_per_cycle: u64,
    ) -> Self {
        let overhead = lat.l2 + lat.am_tag_check + lat.fill;
        PNodeStore::new(
            l1,
            l2,
            am_cfg,
            onchip_lines,
            lat.mem_on.saturating_sub(overhead),
            lat.mem_off.saturating_sub(overhead),
            mem_bytes_per_cycle,
        )
    }

    /// Drops a line from the private caches only; a dirty cached copy
    /// folds its modification back into the attraction memory (which
    /// backs the caches, so no data is lost).
    pub fn purge_caches(&mut self, line: Line) {
        if self.caches.invalidate(line) == Some(CState::Dirty) {
            if let Some(s) = self.am.peek_mut(line) {
                *s = AmState::Dirty;
            }
        }
    }

    /// Times a local memory access that hit with the given residency.
    pub fn mem_access(&mut self, residency: Residency, now: Cycle, bytes: u64) -> Cycle {
        match residency {
            Residency::OnChip => self.mem_on.access(now, bytes),
            Residency::OffChip => self.mem_off.access(now, bytes),
        }
    }

    /// Fills the private caches after a serviced miss, folding a dirty L2
    /// victim's modification into the attraction memory (the AM backs the
    /// caches, so the victim's data merges locally rather than writing
    /// back). Returns the victim so protocol-specific directory state can
    /// follow the merge (COMA reinstates ownership at this node).
    pub fn fill_caches(&mut self, line: Line, state: CState) -> Option<(Line, CState)> {
        let victim = self.caches.fill(line, state);
        if let Some((vline, CState::Dirty)) = victim {
            if let Some(am) = self.am.peek_mut(vline) {
                *am = AmState::Dirty;
            }
        }
        victim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caches() -> PrivCaches {
        // L1: 2 sets direct-mapped; L2: 4 sets 2-way (64 B lines).
        PrivCaches::new(CacheCfg::new(128, 1, 6), CacheCfg::new(512, 2, 6))
    }

    #[test]
    fn read_miss_then_hits() {
        let mut c = caches();
        assert_eq!(c.read_probe(10), None);
        assert_eq!(c.fill(10, CState::Shared), None);
        assert_eq!(c.read_probe(10), Some(Level::L1));
    }

    #[test]
    fn l2_hit_refills_l1() {
        let mut c = caches();
        c.fill(0, CState::Shared);
        c.fill(2, CState::Shared); // L1 conflict (2 sets): evicts 0 from L1
        assert_eq!(c.read_probe(0), Some(Level::L2));
        assert_eq!(c.read_probe(0), Some(Level::L1));
    }

    #[test]
    fn dirty_l1_victim_propagates_to_l2() {
        let mut c = caches();
        c.fill(0, CState::Shared);
        c.mark_dirty(0);
        c.fill(2, CState::Shared); // evicts 0 from L1 (dirty)
        assert_eq!(c.peek_state(0), Some(CState::Dirty));
    }

    #[test]
    fn l2_eviction_purges_l1_and_reports_dirty() {
        let mut c = caches();
        // L2 set 0 holds lines 0 and 4 (4 sets, 2 ways).
        c.fill(0, CState::Shared);
        c.mark_dirty(0);
        c.fill(4, CState::Shared);
        let victim = c.fill(8, CState::Shared);
        assert_eq!(victim, Some((0, CState::Dirty)));
        assert_eq!(c.peek_state(0), None, "inclusion: purged from L1 too");
    }

    #[test]
    fn write_probe_transitions() {
        let mut c = caches();
        assert_eq!(c.write_probe(0), WriteProbe::Miss);
        c.fill(0, CState::Shared);
        assert_eq!(c.write_probe(0), WriteProbe::NeedUpgrade);
        c.mark_dirty(0);
        assert_eq!(c.write_probe(0), WriteProbe::Done(Level::L1));
    }

    #[test]
    fn write_probe_l2_dirty_promotes() {
        let mut c = caches();
        c.fill(0, CState::Dirty);
        c.fill(2, CState::Shared); // push 0 out of L1 only
        assert_eq!(c.write_probe(0), WriteProbe::Done(Level::L2));
        assert_eq!(c.write_probe(0), WriteProbe::Done(Level::L1));
    }

    #[test]
    fn invalidate_removes_everywhere() {
        let mut c = caches();
        c.fill(0, CState::Dirty);
        assert_eq!(c.invalidate(0), Some(CState::Dirty));
        assert_eq!(c.peek_state(0), None);
        assert_eq!(c.invalidate(0), None);
    }

    #[test]
    fn downgrade_reports_dirtiness() {
        let mut c = caches();
        c.fill(0, CState::Dirty);
        assert!(c.downgrade(0));
        assert_eq!(c.peek_state(0), Some(CState::Shared));
        assert!(!c.downgrade(0));
    }

    #[test]
    fn drain_reports_strongest_state() {
        let mut c = caches();
        c.fill(0, CState::Shared);
        c.mark_dirty(0);
        c.fill(4, CState::Shared);
        let mut drained = c.drain_all();
        drained.sort_by_key(|&(l, _)| l);
        assert_eq!(drained, vec![(0, CState::Dirty), (4, CState::Shared)]);
    }

    #[test]
    fn onchip_lru_swaps() {
        let mut o = OnChipLru::new(2);
        assert_eq!(o.touch(1), Residency::OffChip);
        assert_eq!(o.touch(1), Residency::OnChip);
        o.touch(2);
        o.touch(3); // demotes 1
        assert_eq!(o.touch(1), Residency::OffChip);
    }

    #[test]
    fn onchip_lru_zero_capacity() {
        let mut o = OnChipLru::new(0);
        assert_eq!(o.touch(1), Residency::OffChip);
        assert_eq!(o.touch(1), Residency::OffChip);
    }

    #[test]
    #[should_panic(expected = "inclusive")]
    fn l2_smaller_than_l1_rejected() {
        PrivCaches::new(CacheCfg::new(512, 2, 6), CacheCfg::new(128, 1, 6));
    }
}
