//! The shared transaction-walk builder.
//!
//! A memory transaction is a *walk*: cache probe → AM tag check → network
//! request → handler dispatch → DRAM access → line fill, with the
//! protocol's state machine deciding which steps run. [`Txn`] threads a
//! completion frontier through those steps and attributes every cycle of
//! the walk to exactly one latency component ([`pimdsm_obs::breakdown`]),
//! so the per-component breakdown sums to the transaction's total latency
//! *by construction*. [`Txn::finish`] then emits the walk's trace span and
//! records [`ProtoStats`](crate::ProtoStats) in one place for all three
//! protocols.
//!
//! The contended resources themselves (links, controllers, DRAM ports)
//! are booked by the steps' underlying [`Fabric`] and store calls in
//! walk order; `Txn` never reorders a booking, it only accounts for the
//! result.

use pimdsm_engine::{Cycle, ServerGrant};
use pimdsm_mem::Line;
use pimdsm_obs::breakdown::{CACHE, DRAM, HANDLER, NETWORK, QUEUE};
use pimdsm_obs::trace::track;

use crate::common::{Access, Level, NodeId};
use crate::fabric::Fabric;

/// Whether a transaction is a read or a write/upgrade — decides the span
/// category and whether [`Txn::finish`] records read statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// A read; `finish` records it under the satisfying level.
    Read,
    /// A write or ownership upgrade; only timing is accounted.
    Write,
}

/// One in-flight transaction walk: a monotone completion frontier plus
/// the per-component attribution of every cycle since issue.
#[derive(Debug, Clone)]
pub struct Txn {
    node: NodeId,
    line: Line,
    start: Cycle,
    t: Cycle,
    comps: [Cycle; 5],
    steps: u32,
}

impl Txn {
    /// Opens a walk for `node` on `line` at cycle `now`.
    pub fn start(node: NodeId, line: Line, now: Cycle) -> Self {
        Txn {
            node,
            line,
            start: now,
            t: now,
            comps: [0; 5],
            steps: 0,
        }
    }

    /// The walk's current completion frontier.
    pub fn at(&self) -> Cycle {
        self.t
    }

    /// Advances the frontier to `at`, attributing the added cycles to
    /// component `comp`. A target at or before the frontier (an overlapped
    /// step) adds nothing.
    pub fn to(&mut self, comp: usize, at: Cycle) -> Cycle {
        self.steps += 1;
        if at > self.t {
            self.comps[comp] += at - self.t;
            self.t = at;
        }
        self.t
    }

    /// A cache/tag probe taking `cycles`.
    pub fn probe(&mut self, cycles: Cycle) -> Cycle {
        let t = self.t + cycles;
        self.to(CACHE, t)
    }

    /// Sends `bytes` from `from` to `to` at the current frontier, booking
    /// links; link queueing is attributed to the queue component, the rest
    /// of the flight time to the network component.
    pub fn send(&mut self, fab: &mut Fabric, from: NodeId, to: NodeId, bytes: u32) -> Cycle {
        let q0 = fab.net.stats().total_queueing;
        let at = self.t;
        let arrive = fab.net.send(from, to, bytes, at);
        let queued = fab.net.stats().total_queueing - q0;
        self.to(QUEUE, (at + queued).min(arrive));
        self.to(NETWORK, arrive)
    }

    /// Accounts a dispatched handler: queueing until the grant's start,
    /// then handler latency until its reply.
    pub fn handler(&mut self, g: ServerGrant) -> Cycle {
        self.to(QUEUE, g.start);
        self.to(HANDLER, g.reply_at)
    }

    /// Accounts only the queueing of a dispatched handler whose latency is
    /// overlapped with a memory access (the walk continues from the
    /// grant's start).
    pub fn handler_start(&mut self, g: ServerGrant) -> Cycle {
        self.to(QUEUE, g.start)
    }

    /// Accounts a DRAM access completing at `m`.
    pub fn dram(&mut self, m: Cycle) -> Cycle {
        self.to(DRAM, m)
    }

    /// A disk round trip for a paged-out or spilled line.
    pub fn disk(&mut self, fab: &Fabric) -> Cycle {
        let t = self.t + fab.lat.disk;
        self.to(DRAM, t)
    }

    /// The line-fill overhead at the requestor.
    pub fn fill(&mut self, fab: &Fabric) -> Cycle {
        let t = self.t + fab.lat.fill;
        self.to(CACHE, t)
    }

    /// Closes the walk: optionally emits the read/write span, records read
    /// statistics and the component breakdown, and returns the [`Access`].
    pub fn finish(self, fab: &mut Fabric, level: Level, kind: TxnKind, span: bool) -> Access {
        // Host-side profiler: one thread-local bump per walk, amortized
        // over the walk's many booked steps. Pure observation.
        pimdsm_prof::counters::add(pimdsm_prof::counters::TXN_WALKS, 1);
        pimdsm_prof::counters::add(pimdsm_prof::counters::TXN_STEPS, self.steps as u64);
        let total = self.t - self.start;
        debug_assert_eq!(
            self.comps.iter().sum::<Cycle>(),
            total,
            "breakdown must sum to the walk's total latency"
        );
        if span {
            let (name, cat) = match kind {
                TxnKind::Read => ("read.remote", "proto.read"),
                TxnKind::Write => ("write.remote", "proto.write"),
            };
            fab.tracer.span(
                track::PROTO,
                self.node as u32,
                name,
                cat,
                self.start,
                total.max(1),
                &[("line", self.line), ("level", level.index() as u64)],
            );
        }
        if kind == TxnKind::Read {
            fab.stats.record_read(level, total);
            fab.stats.record_read_breakdown(level, &self.comps);
        }
        Access {
            done_at: self.t,
            level,
            breakdown: self.comps,
        }
    }
}

/// The private-cache fast path: a hit at `level` costing that level's
/// configured latency, recorded (for reads) without a trace span.
pub fn cache_hit(fab: &mut Fabric, level: Level, now: Cycle, record: bool) -> Access {
    let lat = match level {
        Level::L1 => fab.lat.l1,
        _ => fab.lat.l2,
    };
    let mut comps = [0; 5];
    comps[CACHE] = lat;
    if record {
        fab.stats.record_read(level, lat);
        fab.stats.record_read_breakdown(level, &comps);
    }
    Access {
        done_at: now + lat,
        level,
        breakdown: comps,
    }
}
