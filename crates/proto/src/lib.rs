//! DSM cache-coherence protocols for the PIM-DSM simulator.
//!
//! Three complete memory systems, all implementing [`MemSystem`]:
//!
//! - [`AggSystem`] — the paper's proposal (Section 2): P-nodes whose tagged
//!   local memory is a huge cache, and D-nodes — identical PIM chips —
//!   running the directory protocol in *software* with the
//!   Directory/Data/Pointer-array organization of Section 2.2.2
//!   (fully-associative D-memory, FreeList/SharedList, the COMA-inspired
//!   *shared-master* state, threshold-triggered page-out instead of
//!   injection).
//! - [`ComaSystem`] — a flat COMA baseline: every node's memory is an
//!   attraction memory, directory homes keep only state, and replaced
//!   master lines are *injected* into other memories (Joe & Hennessy).
//! - [`NumaSystem`] — a CC-NUMA baseline: plain home memory, on-chip
//!   directory controller whose access is overlapped with the memory
//!   access.
//!
//! All three share the same node substrate (L1/L2 private caches from
//! [`pimdsm_mem`], the wormhole mesh from [`pimdsm_net`]) and the same
//! conservatively-ordered transaction-walk timing model: every memory
//! transaction books contended resources (links, protocol
//! processors/controllers, DRAM ports) on its path and returns a completion
//! cycle plus the satisfaction [`Level`] used for the paper's Figure 7
//! breakdown.

pub mod agg;
pub mod coma;
pub mod common;
pub mod dnode;
pub mod numa;
pub mod pnode;
pub mod system;

pub use agg::{AggCfg, AggSystem};
pub use coma::{ComaCfg, ComaSystem};
pub use common::{
    Access, AmState, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level,
    MsgSize, NodeId, NodeSet, PreloadKind, ProtoStats,
};
pub use dnode::DNode;
pub use numa::{NumaCfg, NumaSystem};
pub use pnode::{PNodeStore, PrivCaches};
pub use system::MemSystem;
