//! DSM cache-coherence protocols for the PIM-DSM simulator.
//!
//! Three complete memory systems, all implementing [`MemSystem`]:
//!
//! - [`AggSystem`] — the paper's proposal (Section 2): P-nodes whose tagged
//!   local memory is a huge cache, and D-nodes — identical PIM chips —
//!   running the directory protocol in *software* with the
//!   Directory/Data/Pointer-array organization of Section 2.2.2
//!   (fully-associative D-memory, FreeList/SharedList, the COMA-inspired
//!   *shared-master* state, threshold-triggered page-out instead of
//!   injection).
//! - [`ComaSystem`] — a flat COMA baseline: every node's memory is an
//!   attraction memory, directory homes keep only state, and replaced
//!   master lines are *injected* into other memories (Joe & Hennessy).
//! - [`NumaSystem`] — a CC-NUMA baseline: plain home memory, on-chip
//!   directory controller whose access is overlapped with the memory
//!   access.
//!
//! All three are thin protocol walks over a shared three-layer substrate:
//!
//! 1. [`fabric`] — the per-node machinery every protocol owns one of:
//!    mesh links, first-touch page table, handler cost table, message
//!    sizes, central [`ProtoStats`], tracer. It also hosts the shared
//!    *mechanisms* (handler dispatch, invalidation fan-out, first-touch
//!    placement) so the systems only encode protocol *policy*.
//! 2. [`txn`] — the transaction-walk builder. A [`Txn`] walks one memory
//!    transaction through the machine: each typed step (probe, send,
//!    handler, DRAM access, fill) books the contended resource (links,
//!    protocol processors/controllers, DRAM ports), emits the matching
//!    trace event, and attributes the elapsed cycles to exactly one
//!    latency component, so the cache/network/handler/DRAM/queueing
//!    breakdown sums to the transaction's total latency (the paper's
//!    Figure 7 decomposition, machine-checked).
//! 3. [`check`] — the coherence oracle: full-sweep directory-vs-cache
//!    assertions behind [`MemSystem::check_coherence`], and per-line
//!    checks that run after **every** transaction when the
//!    `coherence-oracle` feature is enabled.
//!
//! Every walk returns a completion cycle plus the satisfaction [`Level`]
//! and per-component breakdown used for the paper's Figure 7.

pub mod agg;
pub mod check;
pub mod coma;
pub mod common;
pub mod dnode;
pub mod fabric;
pub mod numa;
pub mod pnode;
pub mod system;
pub mod txn;

pub use agg::{AggCfg, AggSystem};
pub use check::{check_agg, check_coma, check_numa};
pub use coma::{ComaCfg, ComaSystem};
pub use common::{
    Access, AmState, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level,
    MsgSize, NodeId, NodeList, NodeSet, PreloadKind, ProtoStats,
};
pub use dnode::DNode;
pub use fabric::Fabric;
pub use numa::{NumaCfg, NumaSystem};
pub use pnode::{PNodeStore, PrivCaches};
pub use system::MemSystem;
pub use txn::{Txn, TxnKind};
