//! The shared per-node protocol substrate.
//!
//! All three memory systems ([`AggSystem`](crate::AggSystem),
//! [`ComaSystem`](crate::ComaSystem), [`NumaSystem`](crate::NumaSystem))
//! sit on the same physical substrate: a page table mapping pages to
//! homes, a wormhole mesh, a handler cost table, message sizing, the
//! uncontended latency card and the aggregate statistics/tracing sinks.
//! [`Fabric`] owns that substrate once, so a protocol file holds only its
//! state machine (directory entries and per-node stores) and walks
//! transactions over the shared [`Txn`](crate::txn::Txn) steps.
//!
//! Everything here is *timing-stateful*: dispatching a handler books a
//! [`Server`], sending a message books link timelines. Callers must invoke
//! these in transaction order with explicit cycle arguments, exactly as
//! the protocol walks do.

use std::collections::BTreeMap;

use pimdsm_engine::{Cycle, Server, ServerGrant};
use pimdsm_faults::RetryCfg;
use pimdsm_mem::{Line, Page, PageTable};
use pimdsm_net::Network;
use pimdsm_obs::{trace::track, EpochProbe, Tracer};

use crate::common::{HandlerCosts, HandlerKind, LatencyCfg, MsgSize, NodeId, NodeSet, ProtoStats};

/// Display name for a handler span.
fn handler_name(kind: HandlerKind) -> &'static str {
    match kind {
        HandlerKind::Read => "Read",
        HandlerKind::ReadExclusive => "ReadEx",
        HandlerKind::Acknowledgment => "Ack",
        HandlerKind::WriteBack => "WriteBack",
    }
}

/// The substrate shared by every protocol: homing, interconnect, handler
/// costs, message sizing, statistics and tracing.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// Line size shift (lines are `1 << line_shift` bytes).
    pub line_shift: u32,
    /// Page size shift (pages are `1 << page_shift` bytes).
    pub page_shift: u32,
    /// Uncontended latency card (Table 1).
    pub lat: LatencyCfg,
    /// Interconnect message sizing.
    pub msg: MsgSize,
    /// Protocol handler cost table (Table 2).
    pub handler: HandlerCosts,
    /// Page → home-node map (first-touch or interleaved, per protocol).
    pub pages: PageTable,
    /// The contended interconnect.
    pub net: Network,
    /// Aggregate protocol statistics.
    pub stats: ProtoStats,
    /// Trace sink (disabled by default).
    pub tracer: Tracer,
    /// Nodes currently dead (fault injection). Dead nodes take no new
    /// pages, serve no requests, and are excluded from compute binding.
    pub dead: NodeSet,
    /// Pages whose home is mid-reconstruction after a kill, mapped to the
    /// cycle their recovery completes. Transactions that touch one pay a
    /// bounded retry wait (see [`Fabric::retry_wait`]).
    pub recovering: BTreeMap<Page, Cycle>,
    /// Retry/backoff policy for transactions racing a recovery.
    pub retry: RetryCfg,
    /// Retry probes issued so far (drained into `RecoveryStats`).
    pub retries: u64,
    /// Total cycles spent in retry waits (drained into `RecoveryStats`).
    pub retry_wait_cycles: Cycle,
}

impl Fabric {
    /// Assembles a fabric over a prebuilt network.
    pub fn new(
        line_shift: u32,
        page_shift: u32,
        lat: LatencyCfg,
        msg: MsgSize,
        handler: HandlerCosts,
        net: Network,
    ) -> Self {
        Fabric {
            line_shift,
            page_shift,
            lat,
            msg,
            handler,
            pages: PageTable::new(page_shift),
            net,
            stats: ProtoStats::default(),
            tracer: Tracer::disabled(),
            dead: NodeSet::new(),
            recovering: BTreeMap::new(),
            retry: RetryCfg::default(),
            retries: 0,
            retry_wait_cycles: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        1u64 << self.line_shift
    }

    /// Lines per page.
    pub fn lines_per_page(&self) -> u64 {
        1u64 << (self.page_shift - self.line_shift)
    }

    /// The page a line belongs to.
    pub fn page_of(&self, line: Line) -> Page {
        line >> (self.page_shift - self.line_shift)
    }

    /// Size in bytes of a control message.
    pub fn msg_ctrl(&self) -> u32 {
        self.msg.ctrl
    }

    /// Size in bytes of a data-bearing message (header plus one line).
    pub fn msg_data(&self) -> u32 {
        self.msg.data_header + (1u32 << self.line_shift)
    }

    /// The home of a line that must already be mapped.
    ///
    /// # Panics
    ///
    /// Panics if the line's page has no home.
    pub fn mapped_home(&self, line: Line) -> NodeId {
        self.pages
            .home(self.page_of(line))
            .expect("resident line must have a home")
    }

    /// First-touch page homing with a capacity fallback (NUMA/COMA): the
    /// toucher becomes the home while it has page capacity, otherwise the
    /// least-loaded node takes the page.
    pub fn first_touch_home(
        &mut self,
        line: Line,
        toucher: NodeId,
        n_nodes: usize,
        cap_pages: u64,
    ) -> NodeId {
        let page = self.page_of(line);
        if let Some(home) = self.pages.home(page) {
            return home;
        }
        let home = if self.pages.pages_at(toucher) < cap_pages && !self.dead.contains(toucher) {
            toucher
        } else {
            (0..n_nodes)
                .filter(|&n| !self.dead.contains(n))
                .min_by_key(|&n| (self.pages.pages_at(n), n))
                .expect("machine has at least one live node")
        };
        self.pages.home_or_assign(page, || home)
    }

    /// Marks `page` as recovering until `until` (its home is being
    /// reconstructed after a kill).
    pub fn mark_recovering(&mut self, page: Page, until: Cycle) {
        let slot = self.recovering.entry(page).or_insert(until);
        *slot = (*slot).max(until);
    }

    /// Retry wait a transaction from `node` pays at `now` if `page` is
    /// still recovering: bounded timeout/backoff per the fabric's
    /// [`RetryCfg`]. Returns 0 (and clears the marker) once the page's
    /// recovery has completed.
    pub fn retry_wait(&mut self, node: NodeId, page: Page, now: Cycle) -> Cycle {
        let Some(&recovered_at) = self.recovering.get(&page) else {
            return 0;
        };
        if recovered_at <= now {
            self.recovering.remove(&page);
            return 0;
        }
        let (wait, probes) = self.retry.wait_for(now, recovered_at);
        self.retries += probes as u64;
        self.retry_wait_cycles += wait;
        self.tracer.instant(
            track::PROTO,
            node as u32,
            "retry",
            "proto.retry",
            now,
            &[("page", page), ("wait", wait), ("probes", probes as u64)],
        );
        wait
    }

    /// Threads a tracer through the fabric and its interconnect.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.net.attach_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Dispatches a protocol handler of `kind` (sending `invals`
    /// invalidations) on `server` at node `at_node`, and traces its
    /// occupancy span.
    pub fn dispatch(
        &mut self,
        server: &mut Server,
        at_node: NodeId,
        kind: HandlerKind,
        invals: u32,
        at: Cycle,
    ) -> ServerGrant {
        let (lat, occ) = self.handler.cost(kind, invals);
        let g = server.dispatch(at, lat, occ);
        self.tracer.span(
            track::PROTO,
            at_node as u32,
            handler_name(kind),
            "proto.handler",
            g.start,
            occ.max(1),
            &[("invals", invals as u64), ("queued", g.start - at)],
        );
        g
    }

    /// Books acknowledgment occupancy for a replacement hint on `server`
    /// and traces it; returns the occupancy start.
    pub fn hint_occupy(&mut self, server: &mut Server, at_node: NodeId, at: Cycle) -> Cycle {
        let (_, ack_occ) = self.handler.cost(HandlerKind::Acknowledgment, 0);
        let start = server.occupy(at, ack_occ);
        self.tracer.span(
            track::PROTO,
            at_node as u32,
            "Hint",
            "proto.handler",
            start,
            ack_occ.max(1),
            &[],
        );
        start
    }

    /// Invalidates a set of remote copies (NUMA/COMA shape): for each
    /// target, a control message from `from`, acknowledgment occupancy on
    /// the target's controller, the protocol-state effect via
    /// `invalidate`, and an ack back to `collector`. Returns the cycle at
    /// which the last ack arrives.
    pub fn invalidate_fanout(
        &mut self,
        ctrls: &mut [Server],
        targets: &[NodeId],
        from: NodeId,
        collector: NodeId,
        at: Cycle,
        mut invalidate: impl FnMut(NodeId),
    ) -> Cycle {
        let mut done = at;
        let ctrl_bytes = self.msg_ctrl();
        let (ack_lat, ack_occ) = self.handler.cost(HandlerKind::Acknowledgment, 0);
        for &k in targets {
            self.stats.invalidations += 1;
            let t1 = self.net.send(from, k, ctrl_bytes, at);
            invalidate(k);
            let start = ctrls[k].occupy(t1, ack_occ);
            let t2 = self.net.send(k, collector, ctrl_bytes, start + ack_lat);
            done = done.max(t2);
        }
        done
    }

    /// Traces an attraction-memory hit at `node`.
    pub fn am_hit(&mut self, node: NodeId, line: Line, at: Cycle) {
        self.tracer.instant(
            track::PROTO,
            node as u32,
            "hit",
            "am.hit",
            at,
            &[("line", line)],
        );
    }

    /// Traces an attraction-memory miss at `node`.
    pub fn am_miss(&mut self, node: NodeId, line: Line, at: Cycle) {
        self.tracer.instant(
            track::PROTO,
            node as u32,
            "miss",
            "am.miss",
            at,
            &[("line", line)],
        );
    }

    /// Traces an attraction-memory insertion that displaced `victim`.
    pub fn am_swap(&mut self, node: NodeId, new_line: Line, victim: Line, at: Cycle) {
        self.tracer.instant(
            track::PROTO,
            node as u32,
            "swap",
            "am.swap",
            at,
            &[("line", new_line), ("victim", victim)],
        );
    }

    /// Traces a disk fault at `home` (a paged-out or spilled line coming
    /// back from disk).
    pub fn disk_fault(&mut self, home: NodeId, line: Line, at: Cycle) {
        self.tracer.instant(
            track::PROTO,
            home as u32,
            "fault",
            "proto.disk",
            at,
            &[("line", line)],
        );
    }

    /// Traces a COMA master-line injection into `target`.
    pub fn am_inject(&mut self, target: NodeId, line: Line, at: Cycle) {
        self.tracer.instant(
            track::PROTO,
            target as u32,
            "inject",
            "am.inject",
            at,
            &[("line", line)],
        );
    }

    /// Snapshot of cumulative counters for epoch sampling, given the
    /// protocol's controller inventory (total busy cycles and count).
    pub fn epoch_probe(&self, (ctrl_busy, ctrl_count): (Cycle, usize)) -> EpochProbe {
        let n = self.net.stats();
        EpochProbe {
            ctrl_busy,
            ctrl_count,
            link_busy: self.net.total_link_busy(),
            link_count: self.net.num_links(),
            reads_by_level: self.stats.reads_by_level,
            remote_writes: self.stats.remote_writes,
            net_messages: n.messages,
            ..EpochProbe::default()
        }
    }

    /// Mean utilization of `count` controllers with `busy` total busy
    /// cycles over `elapsed` cycles.
    pub fn utilization(busy: Cycle, count: usize, elapsed: Cycle) -> f64 {
        if elapsed == 0 || count == 0 {
            0.0
        } else {
            busy as f64 / (elapsed as f64 * count as f64)
        }
    }
}
