//! The coherence oracle: shadow-state assertions over a whole system.
//!
//! Each protocol gets two entry points:
//!
//! - a *full sweep* (`check_agg`, `check_coma`, `check_numa`) walking
//!   every directory entry — cheap enough for test epilogues and exposed
//!   through [`MemSystem::check_coherence`];
//! - a *per-line* check (`agg_line`, …) run after **every** transaction
//!   when the `coherence-oracle` feature is enabled, so a protocol bug
//!   trips at the first transaction that corrupts state, not at the end
//!   of a run.
//!
//! The oracle only ever *peeks* — it must not touch LRU state or book
//! timing, or enabling it would perturb the simulation it checks.
//!
//! The invariants asserted here are the single-writer/multiple-reader
//! discipline every protocol shares, plus each protocol's own shape:
//! AGG's unique master and cache⊆AM inclusion (Section 2.2.2), COMA's
//! master-copy accounting, and NUMA's directory-vs-cache agreement
//! (stale sharer bits are legal there — silent Shared drops — but a
//! dirty copy unknown to the directory is not).

use pimdsm_mem::Line;

use crate::agg::AggSystem;
use crate::coma::ComaSystem;
use crate::common::{AmState, CState};
use crate::dnode::Master;
use crate::numa::NumaSystem;
use crate::system::MemSystem;

/// Full-sweep oracle for AGG: D-node storage invariants, every directory
/// entry's line-level invariants, and cache/AM inclusion of every
/// resident line (which must have a directory entry at its home).
pub fn check_agg(sys: &AggSystem) {
    for &d in sys.d_nodes() {
        sys.dnode(d).check_invariants();
        let lines: Vec<Line> = sys.dnode(d).entries().map(|(l, _)| l).collect();
        for line in lines {
            agg_line(sys, line);
        }
    }
    for &p in sys.p_nodes() {
        for (line, _) in sys.pstore_ref(p).am.iter() {
            let home = sys.fabric().pages.home(sys.fabric().page_of(line));
            let home = home.unwrap_or_else(|| panic!("AM line {line:#x} at node {p} has no home"));
            assert!(
                sys.dnode(home).entry(line).is_some(),
                "AM line {line:#x} at node {p} has no directory entry at home {home}"
            );
        }
    }
}

/// Line-level AGG oracle: the directory entry at the line's home must
/// agree exactly with the P-node attraction memories and private caches.
pub(crate) fn agg_line(sys: &AggSystem, line: Line) {
    let Some(home) = sys.fabric().pages.home(sys.fabric().page_of(line)) else {
        return;
    };
    let Some(e) = sys.dnode(home).entry(line) else {
        return;
    };
    // Who holds the line, at memory and cache level.
    let mut holders: Vec<(usize, AmState)> = Vec::new();
    for &p in sys.p_nodes() {
        let ps = sys.pstore_ref(p);
        let am = ps.am.peek(line).copied();
        if let Some(st) = am {
            holders.push((p, st));
        }
        if let Some(c) = ps.caches.peek_state(line) {
            assert!(
                am.is_some(),
                "node {p} caches line {line:#x} not present in its AM (inclusion)"
            );
            if c == CState::Dirty {
                assert_eq!(
                    am,
                    Some(AmState::Dirty),
                    "node {p} holds line {line:#x} dirty in cache but not in AM"
                );
            }
        }
    }

    if let Some(k) = e.owner {
        assert_eq!(
            holders,
            vec![(k, AmState::Dirty)],
            "owned line {line:#x}: owner {k} must be the unique (dirty) holder"
        );
        assert_eq!(
            e.master,
            Master::Node(k),
            "owned line {line:#x}: mastership must sit with the owner"
        );
        return;
    }
    if e.paged_out {
        assert!(
            holders.is_empty(),
            "paged-out line {line:#x} still held: {holders:?}"
        );
        return;
    }
    // Shared (or home-only) line: holders and sharer bits agree exactly;
    // a single shared-master copy exists iff mastership is outside.
    for &(p, st) in &holders {
        assert!(
            e.sharers.contains(p),
            "node {p} holds shared line {line:#x} without a sharer bit"
        );
        let expect = if e.master == Master::Node(p) {
            AmState::SharedMaster
        } else {
            AmState::Shared
        };
        assert_eq!(
            st, expect,
            "node {p} holds line {line:#x} as {st:?}, directory implies {expect:?}"
        );
    }
    for s in e.sharers.iter() {
        assert!(
            holders.iter().any(|&(p, _)| p == s),
            "sharer bit for node {s} on line {line:#x} but no AM copy"
        );
    }
    if let Master::Node(m) = e.master {
        assert!(
            e.sharers.contains(m),
            "master {m} of line {line:#x} is not a sharer"
        );
    }
}

/// Full-sweep oracle for flat COMA: every directory entry's line-level
/// invariants (unique dirty holder, master-copy accounting, inclusion).
pub fn check_coma(sys: &ComaSystem) {
    let lines: Vec<Line> = sys.dir_lines();
    for line in lines {
        coma_line(sys, line);
    }
}

/// Line-level COMA oracle.
pub(crate) fn coma_line(sys: &ComaSystem, line: Line) {
    let Some(e) = sys.dir_entry(line) else { return };
    let n = sys.n_nodes();
    let mut holders: Vec<(usize, AmState)> = Vec::new();
    for p in 0..n {
        let ps = sys.pstore_ref(p);
        let am = ps.am.peek(line).copied();
        if let Some(st) = am {
            holders.push((p, st));
        }
        if let Some(c) = ps.caches.peek_state(line) {
            assert!(
                am.is_some(),
                "node {p} caches line {line:#x} not present in its AM (inclusion)"
            );
            if c == CState::Dirty {
                assert_eq!(
                    am,
                    Some(AmState::Dirty),
                    "node {p} holds line {line:#x} dirty in cache but not in AM"
                );
            }
        }
    }

    if let Some(k) = e.owner {
        assert_eq!(
            holders,
            vec![(k, AmState::Dirty)],
            "owned line {line:#x}: owner {k} must be the unique (dirty) holder"
        );
        assert_eq!(
            e.master,
            Some(k),
            "owned line {line:#x}: mastership must sit with the owner"
        );
        assert!(e.sharers.contains(k), "owner {k} must appear as a sharer");
        assert_eq!(e.sharers.len(), 1, "owned line {line:#x} has extra sharers");
        return;
    }
    if e.on_disk {
        // Forced spill keeps the sharer bits conservative: stale *shared*
        // holders are tolerated, dirty ones never.
        assert!(
            !holders.iter().any(|&(_, st)| st == AmState::Dirty),
            "on-disk line {line:#x} has a dirty holder"
        );
        return;
    }
    for &(p, st) in &holders {
        assert!(
            e.sharers.contains(p),
            "node {p} holds shared line {line:#x} without a sharer bit"
        );
        let expect = if e.master == Some(p) {
            AmState::SharedMaster
        } else {
            AmState::Shared
        };
        assert_eq!(
            st, expect,
            "node {p} holds line {line:#x} as {st:?}, directory implies {expect:?}"
        );
    }
    for s in e.sharers.iter() {
        assert!(
            holders.iter().any(|&(p, _)| p == s),
            "sharer bit for node {s} on line {line:#x} but no AM copy"
        );
    }
    if let Some(m) = e.master {
        assert!(
            e.sharers.contains(m),
            "master {m} of line {line:#x} is not a sharer"
        );
    }
}

/// Full-sweep oracle for CC-NUMA.
pub fn check_numa(sys: &NumaSystem) {
    let lines: Vec<Line> = sys.dir_lines();
    for line in lines {
        numa_line(sys, line);
    }
}

/// Line-level NUMA oracle: caches and directory agree up to silent
/// Shared drops (a cached copy needs a directory record; a stale sharer
/// bit without a copy is legal), and a dirty copy implies sole ownership.
pub(crate) fn numa_line(sys: &NumaSystem, line: Line) {
    let Some(e) = sys.dir_entry(line) else { return };
    let n = sys.n_nodes();
    let mut dirty_holder = None;
    for p in 0..n {
        let Some(c) = sys.cached_state(p, line) else {
            continue;
        };
        assert!(
            e.sharers.contains(p) || e.owner == Some(p),
            "node {p} caches line {line:#x} unknown to the directory"
        );
        if c == CState::Dirty {
            assert!(
                dirty_holder.is_none(),
                "two dirty copies of line {line:#x}: {dirty_holder:?} and {p}"
            );
            dirty_holder = Some(p);
            assert_eq!(
                e.owner,
                Some(p),
                "node {p} holds line {line:#x} dirty without directory ownership"
            );
        }
    }
    if let Some(k) = e.owner {
        for p in 0..n {
            if p != k {
                assert_eq!(
                    sys.cached_state(p, line),
                    None,
                    "line {line:#x} is owned by {k} but node {p} still caches it"
                );
            }
        }
    }
}
