//! The paper's AGG architecture.
//!
//! A single type of off-the-shelf PIM chip plays two roles:
//!
//! - **P-nodes** run application threads. Their local DRAM is tagged and
//!   organized as a big 4-way set-associative cache (attraction memory),
//!   so after a cache miss the processor can always probe its local memory
//!   first, whatever the address (Section 2.1.1).
//! - **D-nodes** run the directory protocol in *software* (Table 2 costs)
//!   over the Directory/Data/Pointer arrays of Section 2.2.2; their memory
//!   is the only backing store. Replaced master/dirty lines are always
//!   taken in by the home (fully-associative software allocation), so AGG
//!   never injects; under space pressure it pages out to disk instead.
//!
//! The system also implements the machine-level operations the paper's
//! Sections 2.3 and 2.4 need: converting nodes between the P and D roles
//! at runtime (with page/directory migration) and offloading
//! computation-in-memory requests to D-node processors.
//!
//! The shared substrate (homing, interconnect, handler costs, statistics,
//! tracing) lives in the [`Fabric`]; transactions walk over [`Txn`] steps
//! so every cycle is attributed to a latency component.

use pimdsm_engine::{Cycle, ServerGrant};
use pimdsm_faults::{Durability, RecoveryStats};
use pimdsm_mem::{line_of, CacheCfg, Line, Page};
use pimdsm_net::{Mesh, NetCfg, Network};
use pimdsm_obs::breakdown::{DRAM, HANDLER, NETWORK, QUEUE};
use pimdsm_obs::{trace::track, EpochProbe};

use crate::common::{
    Access, AmState, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level,
    MsgSize, NodeId, NodeList, PreloadKind,
};
use crate::dnode::{DNode, DNodeCfg, Master};
use crate::fabric::Fabric;
use crate::pnode::{victim_class, PNodeStore, WriteProbe};
use crate::system::MemSystem;
use crate::txn::{cache_hit, Txn, TxnKind};

/// Configuration of an [`AggSystem`].
#[derive(Debug, Clone)]
pub struct AggCfg {
    /// Number of compute nodes.
    pub n_p: usize,
    /// Number of directory nodes.
    pub n_d: usize,
    /// L1 geometry.
    pub l1: CacheCfg,
    /// L2 geometry.
    pub l2: CacheCfg,
    /// P-node attraction-memory geometry (4-way in the paper).
    pub p_am: CacheCfg,
    /// Lines of the P-node memory resident on chip.
    pub p_onchip_lines: u64,
    /// D-node sizing and policy.
    pub dnode: DNodeCfg,
    /// Line size shift.
    pub line_shift: u32,
    /// Page size shift.
    pub page_shift: u32,
    /// Latency table.
    pub lat: LatencyCfg,
    /// Message sizes.
    pub msg: MsgSize,
    /// Network timing (2 B/cycle links in the paper).
    pub net: NetCfg,
    /// Protocol handler costs (software, Table 2).
    pub handler: HandlerCosts,
    /// Memory port bandwidth, bytes/cycle.
    pub mem_bytes_per_cycle: u64,
    /// Extra D-node processor occupancy per page paged out.
    pub pageout_page_occupancy: Cycle,
}

impl AggCfg {
    /// A paper-parameter configuration: `n_p` P-nodes with `p_am_lines`
    /// lines of tagged local memory each, `n_d` D-nodes with
    /// `d_data_lines` Data-array lines each.
    pub fn paper(
        n_p: usize,
        n_d: usize,
        l1_kb: u64,
        l2_kb: u64,
        p_am_lines: u64,
        d_data_lines: u64,
    ) -> Self {
        let line_shift = 6;
        AggCfg {
            n_p,
            n_d,
            l1: CacheCfg::new(l1_kb * 1024, 1, line_shift),
            l2: CacheCfg::new(l2_kb * 1024, 4, line_shift),
            p_am: CacheCfg::new(p_am_lines * 64, 4, line_shift),
            p_onchip_lines: p_am_lines / 2,
            dnode: DNodeCfg {
                data_lines: d_data_lines,
                onchip_lines: d_data_lines / 2,
                shared_list_min: (d_data_lines / 64).max(4),
                pageout_batch: 1,
                reuse_shared_list: true,
                lines_per_page: 1 << (12 - line_shift),
                lat_on: 37,
                lat_off: 57,
                mem_bytes_per_cycle: 32,
                line_bytes: 64,
            },
            line_shift,
            page_shift: 12,
            lat: LatencyCfg::default(),
            msg: MsgSize::default(),
            net: NetCfg::default(),
            handler: HandlerCosts::paper(ControllerKind::Software),
            mem_bytes_per_cycle: 32,
            pageout_page_occupancy: 1_000,
        }
    }
}

/// What a mesh slot currently is.
#[derive(Debug)]
pub(crate) enum Role {
    P(Box<PNodeStore>),
    D(Box<DNode>),
}

/// The AGG machine.
#[derive(Debug)]
pub struct AggSystem {
    cfg: AggCfg,
    pub(crate) roles: Vec<Role>,
    p_list: Vec<NodeId>,
    d_list: Vec<NodeId>,
    fab: Fabric,
}

impl AggSystem {
    /// Builds an idle AGG machine with D-nodes interleaved evenly among
    /// the P-nodes on the mesh.
    ///
    /// # Panics
    ///
    /// Panics if there are zero P- or D-nodes.
    pub fn new(cfg: AggCfg) -> Self {
        assert!(cfg.n_p > 0, "need at least one P-node");
        assert!(cfg.n_d > 0, "need at least one D-node");
        let total = cfg.n_p + cfg.n_d;
        assert!(total <= crate::common::NodeSet::MAX_NODES);

        // Spread D-nodes evenly across the linear node order (which the
        // row-major mesh turns into a 2D interleaving).
        let mut is_d = vec![false; total];
        for i in 0..cfg.n_d {
            let pos = (i * total + total / 2) / cfg.n_d;
            is_d[pos.min(total - 1)] = true;
        }
        // Rounding collisions: fix up to exactly n_d.
        let mut count = is_d.iter().filter(|&&d| d).count();
        let mut idx = 0;
        while count < cfg.n_d {
            if !is_d[idx] {
                is_d[idx] = true;
                count += 1;
            }
            idx += 1;
        }

        let mut roles = Vec::with_capacity(total);
        let mut p_list = Vec::new();
        let mut d_list = Vec::new();
        for (node, &d) in is_d.iter().enumerate() {
            if d {
                d_list.push(node);
                roles.push(Role::D(Box::new(DNode::new(cfg.dnode))));
            } else {
                p_list.push(node);
                roles.push(Role::P(Box::new(Self::new_pstore(&cfg))));
            }
        }

        let net = Network::new(Mesh::for_nodes(total), cfg.net);
        let fab = Fabric::new(
            cfg.line_shift,
            cfg.page_shift,
            cfg.lat,
            cfg.msg,
            cfg.handler,
            net,
        );
        AggSystem {
            roles,
            p_list,
            d_list,
            fab,
            cfg,
        }
    }

    fn new_pstore(cfg: &AggCfg) -> PNodeStore {
        PNodeStore::calibrated(
            cfg.l1,
            cfg.l2,
            cfg.p_am,
            cfg.p_onchip_lines as usize,
            &cfg.lat,
            cfg.mem_bytes_per_cycle,
        )
    }

    /// The configuration.
    pub fn cfg(&self) -> &AggCfg {
        &self.cfg
    }

    /// Current P-nodes.
    pub fn p_nodes(&self) -> &[NodeId] {
        &self.p_list
    }

    /// Current D-nodes.
    pub fn d_nodes(&self) -> &[NodeId] {
        &self.d_list
    }

    /// Attraction-memory state of a line at P-node `node`, without LRU
    /// effects (`None` at D-nodes or when the line is absent).
    pub fn am_state(&self, node: NodeId, line: Line) -> Option<AmState> {
        match &self.roles[node] {
            Role::P(s) => s.am.peek(line).copied(),
            Role::D(_) => None,
        }
    }

    /// Read access to a D-node's directory/data arrays (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `d` is not a D-node.
    pub fn dnode(&self, d: NodeId) -> &DNode {
        self.dstore_ref(d)
    }

    fn pstore(&mut self, p: NodeId) -> &mut PNodeStore {
        match &mut self.roles[p] {
            Role::P(s) => s,
            Role::D(_) => panic!("node {p} is a D-node, expected P"),
        }
    }

    pub(crate) fn pstore_ref(&self, p: NodeId) -> &PNodeStore {
        match &self.roles[p] {
            Role::P(s) => s,
            Role::D(_) => panic!("node {p} is a D-node, expected P"),
        }
    }

    fn dstore(&mut self, d: NodeId) -> &mut DNode {
        match &mut self.roles[d] {
            Role::D(s) => s,
            Role::P(_) => panic!("node {d} is a P-node, expected D"),
        }
    }

    fn dstore_ref(&self, d: NodeId) -> &DNode {
        match &self.roles[d] {
            Role::D(s) => s,
            Role::P(_) => panic!("node {d} is a P-node, expected D"),
        }
    }

    /// Home D-node of a line. Homes interleave across the D-nodes by page
    /// number ("each D-node is home to a fraction of the physical
    /// addresses", Section 2.2.1), which also spreads protocol load.
    fn home_of(&mut self, line: Line, _toucher: NodeId) -> NodeId {
        let page = self.fab.page_of(line);
        if let Some(h) = self.fab.pages.home(page) {
            return h;
        }
        let best = self.d_list[(page as usize) % self.d_list.len()];
        self.fab.pages.home_or_assign(page, || best);
        self.dstore(best).map_page(page);
        best
    }

    /// Dispatches a software handler at D-node `d`; returns its grant.
    fn dispatch(&mut self, d: NodeId, kind: HandlerKind, invals: u32, at: Cycle) -> ServerGrant {
        let Role::D(dn) = &mut self.roles[d] else {
            panic!("node {d} is a P-node, expected D")
        };
        self.fab.dispatch(&mut dn.server, d, kind, invals, at)
    }

    /// Ensures D-node `d` has a free Data slot, paging out if necessary.
    /// Returns the cycle by which the slot is available.
    fn ensure_slot(&mut self, d: NodeId, line: Line, at: Cycle) -> Cycle {
        let mut t = at;
        loop {
            match self.dstore(d).alloc_slot(line) {
                Ok(_dropped) => return t,
                Err(()) => {
                    t = self.page_out(d, t);
                }
            }
        }
    }

    /// Threshold-triggered page-out at D-node `d` (Section 2.2.2): the OS
    /// walks the directory entries of victim pages, recalls lines cached
    /// in P-nodes, and writes the pages to disk. Returns the cycle at
    /// which the freed space is usable.
    fn page_out(&mut self, d: NodeId, at: Cycle) -> Cycle {
        let batch = self.dstore_ref(d).cfg().pageout_batch;
        let victims = self.dstore_ref(d).pageout_victims(batch);
        assert!(
            !victims.is_empty(),
            "D-node {d} must page out but maps no pages"
        );
        self.fab.stats.page_outs += 1;
        let n_pages = victims.len() as u64;
        let lpp = self.dstore_ref(d).cfg().lines_per_page;
        let data = self.fab.msg_data();
        let ctrl = self.fab.msg_ctrl();
        let mut t = at;
        for page in victims {
            let first = page * lpp;
            let mut recalled = 0;
            for line in first..first + lpp {
                let Some(e) = self.dstore_ref(d).entry(line).copied() else {
                    continue;
                };
                let mut holders = NodeList::new();
                for s in e.sharers.iter() {
                    holders.push(s);
                }
                if let Some(o) = e.owner {
                    if !holders.contains(&o) {
                        holders.push(o);
                    }
                }
                for &k in holders.iter() {
                    // Recall: invalidate at the P-node; dirty/master data
                    // travels back.
                    if let Role::P(s) = &mut self.roles[k] {
                        s.caches.invalidate(line);
                        s.am.remove(line);
                    }
                    let t1 = self.fab.net.send(d, k, ctrl, t);
                    let t2 = self
                        .fab
                        .net
                        .send(k, d, data, t1 + self.fab.lat.am_tag_check);
                    t = t.max(t2);
                    recalled += 1;
                }
                let e = self.dstore(d).entry_mut(line);
                e.owner = None;
                e.sharers.clear();
                e.master = Master::Home;
            }
            let occ = self.cfg.pageout_page_occupancy;
            let dn = self.dstore(d);
            dn.note_recalled(recalled);
            dn.apply_pageout(page);
            t = dn.server.occupy(t, occ) + occ;
        }
        self.fab.tracer.span(
            track::PROTO,
            d as u32,
            "pageout",
            "am.pageout",
            at,
            (t - at).max(1),
            &[("pages", n_pages)],
        );
        t
    }

    /// Write-back of a displaced dirty/shared-master line from P-node `p`
    /// to its home D-node. Booked asynchronously from `at`.
    fn write_back(&mut self, p: NodeId, line: Line, at: Cycle) {
        self.fab.stats.write_backs += 1;
        let home = self.fab.mapped_home(line);
        let data = self.fab.msg_data();
        let t1 = self.fab.net.send(p, home, data, at);
        let g = self.dispatch(home, HandlerKind::WriteBack, 0, t1);
        if !self.dstore_ref(home).entry(line).is_some_and(|e| e.in_mem) {
            let t_slot = self.ensure_slot(home, line, g.start);
            self.dstore(home).fill_slot(line);
            self.dstore(home).data_access(line, t_slot);
        } else {
            self.dstore(home).data_access(line, g.start);
        }
        self.dstore(home).write_back(line, p);
    }

    /// Silent drop of a shared non-master copy + asynchronous hint.
    fn drop_shared(&mut self, p: NodeId, line: Line, at: Cycle) {
        let home = self.fab.mapped_home(line);
        let ctrl = self.fab.msg_ctrl();
        let t1 = self.fab.net.send(p, home, ctrl, at);
        let Role::D(dn) = &mut self.roles[home] else {
            panic!("home {home} is a P-node, expected D")
        };
        self.fab.hint_occupy(&mut dn.server, home, t1);
        dn.replacement_hint(line, p);
    }

    /// Inserts a line into P-node `p`'s attraction memory, handling the
    /// displaced victim per the AGG protocol (write back to the home —
    /// never inject).
    fn am_fill(&mut self, p: NodeId, line: Line, state: AmState, at: Cycle) {
        let r = self.pstore(p).am.insert(line, state, victim_class);
        let Some(victim) = r.victim else { return };
        let vline = victim.line;
        self.fab.am_swap(p, line, vline, at);
        let cached = self.pstore(p).caches.invalidate(vline);
        let vstate = match (victim.state, cached) {
            (_, Some(CState::Dirty)) => AmState::Dirty,
            (s, _) => s,
        };
        match vstate {
            AmState::Shared => self.drop_shared(p, vline, at),
            AmState::SharedMaster | AmState::Dirty => self.write_back(p, vline, at),
        }
    }

    /// Invalidates the given P-nodes' copies; acks collected at
    /// `collector`. Returns last ack arrival. Unlike the NUMA/COMA
    /// fan-out, the P-node's memory controller handles the invalidation
    /// without occupying any protocol processor.
    fn invalidate_p_copies(
        &mut self,
        targets: &[NodeId],
        line: Line,
        from: NodeId,
        collector: NodeId,
        at: Cycle,
    ) -> Cycle {
        let mut done = at;
        let ctrl = self.fab.msg_ctrl();
        for &k in targets {
            self.fab.stats.invalidations += 1;
            let t1 = self.fab.net.send(from, k, ctrl, at);
            if let Role::P(s) = &mut self.roles[k] {
                s.caches.invalidate(line);
                s.am.remove(line);
            }
            let t2 = self
                .fab
                .net
                .send(k, collector, ctrl, t1 + self.fab.lat.am_tag_check);
            done = done.max(t2);
        }
        done
    }

    /// Local memory (AM data) access for a line resident at P-node `p`.
    fn mem_access(&mut self, p: NodeId, line: Line, at: Cycle) -> Cycle {
        let bytes = self.fab.line_bytes();
        let ps = self.pstore(p);
        let res = ps
            .am
            .touch(line)
            .expect("line must be resident for mem_access");
        ps.mem_access(res, at, bytes)
    }

    /// Supplies a line from P-node `k`'s memory to `to` along the walk:
    /// the remote memory controller reads the AM and replies without
    /// processor involvement.
    fn supply_from_p(&mut self, tx: &mut Txn, k: NodeId, to: NodeId, line: Line) -> Cycle {
        let m = self.mem_access(k, line, tx.at());
        tx.dram(m);
        let data = self.fab.msg_data();
        tx.send(&mut self.fab, k, to, data)
    }

    fn read_walk(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        if let Some(level) = self.pstore(node).caches.read_probe(line) {
            return cache_hit(&mut self.fab, level, now, true);
        }

        let mut tx = Txn::start(node, line, now);
        tx.probe(self.fab.lat.l2 + self.fab.lat.am_tag_check);
        if self.pstore(node).am.contains(line) {
            self.fab.am_hit(node, line, tx.at());
            let m = self.mem_access(node, line, tx.at());
            tx.dram(m);
            tx.fill(&self.fab);
            self.pstore(node).fill_caches(line, CState::Shared);
            return tx.finish(&mut self.fab, Level::LocalMem, TxnKind::Read, false);
        }
        self.fab.am_miss(node, line, tx.at());

        let home = self.home_of(line, node);
        self.await_recovery(&mut tx, node, line);
        let ctrl = self.fab.msg_ctrl();
        let data = self.fab.msg_data();
        let t1 = tx.send(&mut self.fab, node, home, ctrl);
        let entry = self.dstore_ref(home).entry(line).copied();

        let (level, new_state) = match entry {
            Some(e) if e.paged_out => {
                self.fab.stats.disk_faults += 1;
                self.fab.disk_fault(home, line, t1);
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                tx.handler_start(g);
                tx.disk(&self.fab);
                let t_slot = self.ensure_slot(home, line, tx.at());
                tx.to(DRAM, t_slot);
                let dn = self.dstore(home);
                dn.fill_slot(line);
                dn.apply_pagein(line);
                dn.grant_master_read(line, node);
                tx.send(&mut self.fab, home, node, data);
                (Level::Hop2, AmState::SharedMaster)
            }
            Some(e) if e.owner.is_some() => {
                let k = e.owner.expect("checked");
                debug_assert_ne!(k, node, "owner cannot miss in its own memory");
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                tx.handler(g);
                tx.send(&mut self.fab, home, k, ctrl);
                // Owner downgrades to shared-master; the home takes no copy.
                self.pstore(k).caches.downgrade(line);
                if let Some(s) = self.pstore(k).am.peek_mut(line) {
                    *s = AmState::SharedMaster;
                }
                self.supply_from_p(&mut tx, k, node, line);
                self.dstore(home).dirty_to_shared(line, node);
                (Level::Hop3, AmState::Shared)
            }
            Some(e) if !e.sharers.is_empty() => {
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                let pg = self.fab.page_of(line);
                self.dstore(home).touch_page(pg);
                if e.in_mem {
                    tx.handler_start(g);
                    let state = if e.master == Master::Home {
                        // Home holds the master: give mastership out again.
                        self.dstore(home).grant_master_read(line, node);
                        AmState::SharedMaster
                    } else {
                        self.dstore(home).add_sharer(line, node);
                        AmState::Shared
                    };
                    let m = self.dstore(home).data_access(line, g.start);
                    tx.dram(m);
                    tx.to(HANDLER, g.reply_at);
                    tx.send(&mut self.fab, home, node, data);
                    (Level::Hop2, state)
                } else {
                    // Home dropped its copy: 3-hop fetch from the master.
                    let Master::Node(k) = e.master else {
                        unreachable!("dropped home copy implies an outside master")
                    };
                    debug_assert_ne!(k, node);
                    self.fab.stats.master_fetches += 1;
                    tx.handler(g);
                    tx.send(&mut self.fab, home, k, ctrl);
                    self.supply_from_p(&mut tx, k, node, line);
                    self.dstore(home).add_sharer(line, node);
                    (Level::Hop3, AmState::Shared)
                }
            }
            Some(e) if e.in_mem => {
                // D-node-only line (master at home): grant mastership out.
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                tx.handler_start(g);
                let pg = self.fab.page_of(line);
                self.dstore(home).touch_page(pg);
                self.dstore(home).grant_master_read(line, node);
                let m = self.dstore(home).data_access(line, g.start);
                tx.dram(m);
                tx.to(HANDLER, g.reply_at);
                tx.send(&mut self.fab, home, node, data);
                (Level::Hop2, AmState::SharedMaster)
            }
            _ => {
                // Virgin line: materialize at the home, grant mastership.
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                tx.handler_start(g);
                let t_slot = self.ensure_slot(home, line, g.start);
                tx.to(DRAM, t_slot);
                self.dstore(home).grant_first_read(line, node);
                let m = self.dstore(home).data_access(line, t_slot);
                tx.dram(m);
                tx.to(HANDLER, g.reply_at);
                tx.send(&mut self.fab, home, node, data);
                (Level::Hop2, AmState::SharedMaster)
            }
        };

        tx.fill(&self.fab);
        self.am_fill(node, line, new_state, tx.at());
        self.pstore(node).fill_caches(line, CState::Shared);
        tx.finish(&mut self.fab, level, TxnKind::Read, true)
    }

    fn write_walk(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        match self.pstore(node).caches.write_probe(line) {
            WriteProbe::Done(level) => return cache_hit(&mut self.fab, level, now, false),
            WriteProbe::NeedUpgrade | WriteProbe::Miss => {}
        }

        let mut tx = Txn::start(node, line, now);
        tx.probe(self.fab.lat.l2 + self.fab.lat.am_tag_check);
        let am_state = self.pstore(node).am.peek(line).copied();

        if am_state == Some(AmState::Dirty) {
            // Exclusive at the memory level already.
            let m = self.mem_access(node, line, tx.at());
            tx.dram(m);
            tx.fill(&self.fab);
            self.pstore(node).fill_caches(line, CState::Dirty);
            return tx.finish(&mut self.fab, Level::LocalMem, TxnKind::Write, false);
        }

        let home = self.home_of(line, node);
        self.await_recovery(&mut tx, node, line);
        let ctrl = self.fab.msg_ctrl();
        let data = self.fab.msg_data();
        self.fab.stats.remote_writes += 1;
        let t1 = tx.send(&mut self.fab, node, home, ctrl);
        let entry = self.dstore_ref(home).entry(line).copied();

        // Handle a paged-out line first: bring the page back.
        if let Some(e) = entry {
            if e.paged_out {
                self.fab.stats.disk_faults += 1;
                self.fab.disk_fault(home, line, t1);
                let g = self.dispatch(home, HandlerKind::ReadExclusive, 0, t1);
                tx.handler(g);
                tx.disk(&self.fab);
                self.dstore(home).apply_pagein(line);
                let targets = self.dstore(home).make_owner(line, node);
                debug_assert!(targets.is_empty());
                tx.send(&mut self.fab, home, node, data);
                tx.fill(&self.fab);
                self.am_fill(node, line, AmState::Dirty, tx.at());
                self.pstore(node).fill_caches(line, CState::Dirty);
                return tx.finish(&mut self.fab, Level::Hop2, TxnKind::Write, false);
            }
        }

        let had_local_copy = am_state.is_some();
        let prev_owner = entry.and_then(|e| e.owner);
        let home_had_copy = entry.is_some_and(|e| e.in_mem);

        // Directory mutation: who must be invalidated.
        let mut targets = self.dstore(home).make_owner(line, node);
        let g = self.dispatch(home, HandlerKind::ReadExclusive, targets.len() as u32, t1);

        let level = if had_local_copy {
            // Upgrade: data already local, just ownership + invalidations.
            tx.handler(g);
            let acks = self.invalidate_p_copies(&targets, line, home, node, tx.at());
            tx.send(&mut self.fab, home, node, ctrl);
            if let Some(s) = self.pstore(node).am.peek_mut(line) {
                *s = AmState::Dirty;
            }
            tx.to(NETWORK, acks);
            Level::Hop2
        } else if let Some(k) = prev_owner {
            debug_assert_ne!(k, node);
            targets.retain(|&x| x != k);
            tx.handler(g);
            let acks = self.invalidate_p_copies(&targets, line, home, node, tx.at());
            tx.send(&mut self.fab, home, k, ctrl);
            self.supply_from_p(&mut tx, k, node, line);
            self.pstore(k).caches.invalidate(line);
            self.pstore(k).am.remove(line);
            self.fab.stats.invalidations += 1;
            tx.to(NETWORK, acks);
            Level::Hop3
        } else if home_had_copy {
            tx.handler_start(g);
            let m = self.dstore(home).data_access(line, g.start);
            tx.dram(m);
            tx.to(HANDLER, g.reply_at);
            let acks = self.invalidate_p_copies(&targets, line, home, node, g.reply_at);
            tx.send(&mut self.fab, home, node, data);
            tx.to(NETWORK, acks);
            Level::Hop2
        } else if let Some(&k) = targets.first() {
            // Home copy dropped: fetch from the master (first target holds
            // it — the master is always a sharer).
            let master = entry
                .map(|e| match e.master {
                    Master::Node(m) => m,
                    Master::Home => k,
                })
                .unwrap_or(k);
            let supplier = if targets.contains(&master) { master } else { k };
            targets.retain(|&x| x != supplier);
            tx.handler(g);
            let acks = self.invalidate_p_copies(&targets, line, home, node, tx.at());
            tx.send(&mut self.fab, home, supplier, ctrl);
            self.supply_from_p(&mut tx, supplier, node, line);
            self.pstore(supplier).caches.invalidate(line);
            self.pstore(supplier).am.remove(line);
            self.fab.stats.invalidations += 1;
            self.fab.stats.master_fetches += 1;
            tx.to(NETWORK, acks);
            Level::Hop3
        } else {
            // Virgin line: ownership granted, data materializes.
            tx.handler(g);
            tx.send(&mut self.fab, home, node, data);
            Level::Hop2
        };

        tx.fill(&self.fab);
        if !had_local_copy {
            self.am_fill(node, line, AmState::Dirty, tx.at());
        }
        self.pstore(node).fill_caches(line, CState::Dirty);
        tx.finish(&mut self.fab, level, TxnKind::Write, true)
    }

    /// Generic computation-in-memory offload (Section 2.4): P-node `p`
    /// sends a request of `request_bytes`; the D-node processor runs a
    /// software handler for `occupancy` cycles (plus `mem_bytes` of Data
    /// traffic on its memory port) and replies with `reply_bytes`.
    /// Returns the cycle the reply reaches `p`.
    #[allow(clippy::too_many_arguments)]
    pub fn offload(
        &mut self,
        p: NodeId,
        d: NodeId,
        request_bytes: u32,
        occupancy: Cycle,
        mem_bytes: u64,
        reply_bytes: u32,
        now: Cycle,
    ) -> Cycle {
        let t1 = self.fab.net.send(p, d, request_bytes, now);
        let start = self.dstore(d).server.occupy(t1, occupancy);
        let t_mem = self.dstore(d).bulk_data_access(start, mem_bytes);
        let done = (start + occupancy).max(t_mem);
        self.fab.tracer.span(
            track::PROTO,
            d as u32,
            "offload",
            "svc.offload",
            start,
            (done - start).max(1),
            &[("from", p as u64), ("bytes", mem_bytes)],
        );
        self.fab.net.send(d, p, reply_bytes, done)
    }

    /// Home D-node of an address (first-touch assigning if needed) —
    /// exposed so computation-in-memory callers can route their requests.
    pub fn home_for_addr(&mut self, addr: u64, toucher: NodeId) -> NodeId {
        let line = line_of(addr, self.cfg.line_shift);
        self.home_of(line, toucher)
    }

    /// Converts D-node `node` into a P-node (Section 2.3): its pages and
    /// directory entries migrate to the remaining D-nodes; in-memory lines
    /// travel over the network. Returns `(completion_cycle, pages_moved,
    /// lines_moved)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a D-node or it is the last one.
    pub fn convert_d_to_p(&mut self, node: NodeId, now: Cycle) -> (Cycle, u64, u64) {
        assert!(self.d_list.contains(&node), "node {node} is not a D-node");
        assert!(self.d_list.len() > 1, "cannot convert the last D-node");
        let targets: Vec<NodeId> = self.d_list.iter().copied().filter(|&d| d != node).collect();
        let pages = self.fab.pages.pages_homed_at(node);
        let lpp = self.dstore_ref(node).cfg().lines_per_page;
        // Bulk migration: the node streams its warm resident lines to the
        // new homes at link bandwidth; initialization-cold pages are sent
        // to disk instead (the paper: "these pages can be mapped to
        // another D-node or sent to disk"), off the critical path.
        // The converting node streams over its four mesh links in
        // parallel, without per-line message headers (bulk DMA).
        let line_transfer = (self.fab.line_bytes()).div_ceil(self.cfg.net.bytes_per_cycle * 4);
        let mut t = now;
        let mut lines_moved = 0u64;
        for (i, &page) in pages.iter().enumerate() {
            let nh = targets[i % targets.len()];
            let cold = self.dstore_ref(node).is_cold_page(page);
            self.fab.pages.reassign(page, nh);
            self.dstore(node).unmap_page(page);
            if cold {
                // Hand the page to disk: the new home keeps directory
                // entries marked paged-out; no data moves now.
                self.dstore(nh).map_page(page);
                self.dstore(nh).mark_page_cold(page);
                let first = page * lpp;
                for line in first..first + lpp {
                    if let Some(mut e) = self.dstore(node).evict_entry(line) {
                        e.in_mem = false;
                        e.paged_out = true;
                        e.master = Master::Home;
                        self.dstore(nh).install_entry(line, e);
                    }
                }
                continue;
            }
            self.dstore(nh).map_page(page);
            let first = page * lpp;
            for line in first..first + lpp {
                let Some(e) = self.dstore(node).evict_entry(line) else {
                    continue;
                };
                if e.in_mem {
                    lines_moved += 1;
                    t += line_transfer;
                }
                let mut entry = e;
                while !self.dstore(nh).install_entry(line, entry) {
                    t = self.page_out(nh, t);
                    entry = e;
                }
            }
        }
        self.d_list.retain(|&d| d != node);
        self.roles[node] = Role::P(Box::new(Self::new_pstore(&self.cfg)));
        self.p_list.push(node);
        self.p_list.sort_unstable();
        (t, pages.len() as u64, lines_moved)
    }

    /// Converts P-node `node` into a D-node: the OS writes back its dirty
    /// and shared-master lines to their homes, then reconfigures the
    /// memory controller to plain-memory mode. Returns `(completion_cycle,
    /// lines_flushed)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a P-node.
    pub fn convert_p_to_d(&mut self, node: NodeId, now: Cycle) -> (Cycle, u64) {
        assert!(self.p_list.contains(&node), "node {node} is not a P-node");
        // Take the store out so its in-place drains don't borrow `self`
        // across the flush calls below. The slot temporarily holds an empty
        // P-store, which nothing on the flush path reads: `drop_shared` and
        // `write_back` only touch the home D-nodes and the fabric.
        let placeholder = Role::P(Box::new(Self::new_pstore(&self.cfg)));
        let Role::P(mut store) = std::mem::replace(&mut self.roles[node], placeholder) else {
            panic!("node {node} is a D-node, expected P")
        };
        for (line, st) in store.caches.drain_all() {
            if st == CState::Dirty {
                if let Some(s) = store.am.peek_mut(line) {
                    *s = AmState::Dirty;
                }
            }
        }
        let mut t = now;
        let mut flushed = 0u64;
        for (line, st) in store.am.drain_all() {
            match st {
                AmState::Shared => self.drop_shared(node, line, t),
                AmState::SharedMaster | AmState::Dirty => {
                    flushed += 1;
                    self.write_back(node, line, t);
                    t += 2; // message issue pacing
                }
            }
        }
        self.p_list.retain(|&p| p != node);
        self.roles[node] = Role::D(Box::new(DNode::new(self.cfg.dnode)));
        self.d_list.push(node);
        self.d_list.sort_unstable();
        (t, flushed)
    }

    /// Drops an address from a P-node's private caches without touching
    /// its attraction memory or the directory — a probe helper for
    /// calibration and tests (equivalent to capacity-evicting the line
    /// from the SRAM caches).
    pub fn purge_caches(&mut self, p: NodeId, addr: u64) {
        let line = line_of(addr, self.cfg.line_shift);
        self.pstore(p).purge_caches(line);
    }

    /// Resident line count and capacity of a P-node's attraction memory
    /// (diagnostics).
    pub fn am_occupancy(&self, p: NodeId) -> (usize, u64) {
        match &self.roles[p] {
            Role::P(s) => (s.am.len(), s.am.cfg().capacity_lines()),
            Role::D(_) => (0, 0),
        }
    }

    /// Verifies D-node storage invariants (tests).
    pub fn check_invariants(&self) {
        for &d in &self.d_list {
            self.dstore_ref(d).check_invariants();
        }
    }

    /// Total page-out events across D-nodes.
    pub fn total_page_outs(&self) -> u64 {
        self.d_list
            .iter()
            .map(|&d| self.dstore_ref(d).stats().page_outs)
            .sum()
    }

    /// Pays the bounded retry wait if `line`'s page is mid-recovery.
    fn await_recovery(&mut self, tx: &mut Txn, node: NodeId, line: Line) {
        let page = self.fab.page_of(line);
        let w = self.fab.retry_wait(node, page, tx.at());
        if w > 0 {
            let resume = tx.at() + w;
            tx.to(QUEUE, resume);
        }
    }

    /// Bulk line-transfer cycles during recovery sweeps (same four-link
    /// DMA streaming model as reconfiguration migration).
    fn recovery_line_transfer(&self) -> Cycle {
        self.fab
            .line_bytes()
            .div_ceil(self.cfg.net.bytes_per_cycle * 4)
    }

    /// Kill of a P-node: its caches and attraction memory vanish, so
    /// every directory entry naming it is scrubbed — sharer bits dropped,
    /// mastership re-elected onto a surviving sharer, dirty ownership
    /// either restored from a replica or written off to disk as lost.
    fn kill_p(
        &mut self,
        victim: NodeId,
        now: Cycle,
        durability: Durability,
        rs: &mut RecoveryStats,
    ) -> Cycle {
        self.p_list.retain(|&p| p != victim);
        self.roles[victim] = Role::P(Box::new(Self::new_pstore(&self.cfg)));
        self.fab.dead.insert(victim);

        let line_transfer = self.recovery_line_transfer();
        let mut t = now;
        let d_list = self.d_list.clone();
        for d in d_list {
            let affected: Vec<Line> = self
                .dstore_ref(d)
                .entries()
                .filter(|(_, e)| {
                    e.owner == Some(victim)
                        || e.sharers.contains(victim)
                        || e.master == Master::Node(victim)
                })
                .map(|(l, _)| l)
                .collect();
            let mut touched_pages: Vec<(Page, u64)> = Vec::new();
            for line in affected {
                let mut e = self
                    .dstore(d)
                    .evict_entry(line)
                    .expect("affected entry must exist");
                if e.owner == Some(victim) {
                    // The only up-to-date copy was dirty at the victim.
                    e.owner = None;
                    e.sharers.clear();
                    e.master = Master::Home;
                    if durability == Durability::Replication {
                        // The replica refreshes the home copy if a Data
                        // slot is free; otherwise it rests on disk.
                        e.in_mem = true;
                        if !self.dstore(d).install_entry(line, e) {
                            e.in_mem = false;
                            e.paged_out = true;
                            assert!(self.dstore(d).install_entry(line, e));
                        }
                    } else {
                        e.paged_out = true;
                        rs.lines_lost += 1;
                        assert!(self.dstore(d).install_entry(line, e));
                    }
                } else {
                    e.sharers.remove(victim);
                    if e.master == Master::Node(victim) {
                        if let Some(s) = e.sharers.first() {
                            // Re-elect mastership onto a surviving sharer.
                            e.master = Master::Node(s);
                            if let Some(st) = self.pstore(s).am.peek_mut(line) {
                                *st = AmState::SharedMaster;
                            }
                            rs.lines_recalled += 1;
                        } else if e.in_mem {
                            e.master = Master::Home;
                        } else if durability == Durability::Replication {
                            e.master = Master::Home;
                            e.paged_out = true;
                        } else {
                            e.master = Master::Home;
                            e.paged_out = true;
                            rs.lines_lost += 1;
                        }
                    }
                    assert!(self.dstore(d).install_entry(line, e));
                }
                let page = self.fab.page_of(line);
                match touched_pages.iter_mut().find(|(p, _)| *p == page) {
                    Some((_, n)) => *n += 1,
                    None => touched_pages.push((page, 1)),
                }
            }
            // The home walks each affected page's directory once; pages
            // become usable again as their sweep completes.
            for (page, lines) in touched_pages {
                t += self.fab.lat.am_tag_check + lines * line_transfer;
                self.fab.mark_recovering(page, t);
                rs.recovery.record(t - now);
            }
        }

        // Reconfiguration under failure (Section 2.3 applied to a crash):
        // restore compute capacity by converting a D-node into a P-node,
        // provided the directory set can spare one.
        if self.d_list.len() > 1 {
            let drafted = *self.d_list.last().expect("nonempty");
            let drafted_pages = self.fab.pages.pages_homed_at(drafted);
            let (t_conv, pages, lines) = self.convert_d_to_p(drafted, t);
            for page in drafted_pages {
                self.fab.mark_recovering(page, t_conv);
                rs.recovery.record(t_conv - now);
            }
            rs.pages_rehomed += pages;
            rs.lines_recalled += lines;
            t = t_conv;
        }
        t
    }

    /// Kill of a D-node: the pages it was home to are re-homed across the
    /// surviving D-nodes, reconstructing each directory entry from what
    /// the surviving P-nodes still hold. Home copies and D-node-only data
    /// die with the victim unless replication covers them.
    fn kill_d(
        &mut self,
        victim: NodeId,
        now: Cycle,
        durability: Durability,
        rs: &mut RecoveryStats,
    ) -> Cycle {
        assert!(
            self.d_list.len() > 1,
            "cannot kill the only D-node {victim}"
        );
        self.fab.dead.insert(victim);
        let targets: Vec<NodeId> = self
            .d_list
            .iter()
            .copied()
            .filter(|&d| d != victim)
            .collect();
        let pages = self.fab.pages.pages_homed_at(victim);
        let lpp = self.dstore_ref(victim).cfg().lines_per_page;
        let line_transfer = self.recovery_line_transfer();
        let mut t = now;
        for (i, &page) in pages.iter().enumerate() {
            let nh = targets[i % targets.len()];
            let cold = self.dstore_ref(victim).is_cold_page(page);
            self.fab.pages.reassign(page, nh);
            self.dstore(victim).unmap_page(page);
            self.dstore(nh).map_page(page);
            if cold {
                self.dstore(nh).mark_page_cold(page);
            }
            let page_start = t;
            let first = page * lpp;
            let mut touched = 0u64;
            for line in first..first + lpp {
                let Some(mut e) = self.dstore(victim).evict_entry(line) else {
                    continue;
                };
                touched += 1;
                if e.paged_out || e.owner.is_some() {
                    // Disk copies and dirty lines at live P-nodes survive
                    // untouched; only the directory entry moves.
                    if e.owner.is_some() {
                        rs.lines_recalled += 1;
                    }
                    assert!(self.dstore(nh).install_entry(line, e));
                } else if !e.sharers.is_empty() {
                    // Any home copy died with the victim's memory.
                    e.in_mem = false;
                    if e.master == Master::Home {
                        let s = e.sharers.first().expect("nonempty");
                        e.master = Master::Node(s);
                        if let Some(st) = self.pstore(s).am.peek_mut(line) {
                            *st = AmState::SharedMaster;
                        }
                    }
                    rs.lines_recalled += 1;
                    assert!(self.dstore(nh).install_entry(line, e));
                } else if e.in_mem {
                    // D-node-only data: gone unless a replica exists.
                    if durability == Durability::Replication {
                        while !self.dstore(nh).install_entry(line, e) {
                            t = self.page_out(nh, t);
                        }
                        t += line_transfer;
                    } else {
                        e.in_mem = false;
                        e.paged_out = true;
                        rs.lines_lost += 1;
                        assert!(self.dstore(nh).install_entry(line, e));
                    }
                } else {
                    // Virgin entry: nothing to reconstruct.
                    assert!(self.dstore(nh).install_entry(line, e));
                }
            }
            t = t.max(page_start) + self.fab.lat.am_tag_check + touched * line_transfer;
            self.fab.mark_recovering(page, t);
            rs.recovery.record(t - now);
        }
        rs.pages_rehomed += pages.len() as u64;
        self.d_list.retain(|&d| d != victim);
        self.roles[victim] = Role::D(Box::new(DNode::new(self.cfg.dnode)));
        t
    }
}

impl MemSystem for AggSystem {
    fn name(&self) -> &'static str {
        "AGG"
    }

    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let a = self.read_walk(node, addr, now);
        #[cfg(feature = "coherence-oracle")]
        crate::check::agg_line(self, line_of(addr, self.cfg.line_shift));
        a
    }

    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let a = self.write_walk(node, addr, now);
        #[cfg(feature = "coherence-oracle")]
        crate::check::agg_line(self, line_of(addr, self.cfg.line_shift));
        a
    }

    fn fabric(&self) -> &Fabric {
        &self.fab
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fab
    }

    fn controllers_busy(&self) -> (Cycle, usize) {
        let busy: Cycle = self
            .d_list
            .iter()
            .map(|&d| self.dstore_ref(d).server.busy_cycles())
            .sum();
        (busy, self.d_list.len())
    }

    fn check_coherence(&self) {
        crate::check::check_agg(self);
    }

    fn compute_nodes(&self) -> Vec<NodeId> {
        self.p_list.clone()
    }

    fn apply_kill(
        &mut self,
        node: NodeId,
        now: Cycle,
        durability: Durability,
        rs: &mut RecoveryStats,
    ) -> Cycle {
        assert!(!self.fab.dead.contains(node), "node {node} is already dead");
        let done = match &self.roles[node] {
            Role::P(_) => self.kill_p(node, now, durability, rs),
            Role::D(_) => self.kill_d(node, now, durability, rs),
        };
        #[cfg(feature = "coherence-oracle")]
        self.check_coherence();
        done
    }

    fn apply_rejoin(&mut self, node: NodeId, now: Cycle) -> Cycle {
        assert!(self.fab.dead.contains(node), "node {node} is not dead");
        self.fab.dead.remove(node);
        match &self.roles[node] {
            Role::P(_) => {
                self.p_list.push(node);
                self.p_list.sort_unstable();
            }
            Role::D(_) => {
                self.d_list.push(node);
                self.d_list.sort_unstable();
            }
        }
        // The returning node cold-starts from disk-resident state.
        now + self.fab.lat.disk
    }

    fn stall_controller(&mut self, node: NodeId, now: Cycle, extra: Cycle) {
        if let Role::D(dn) = &mut self.roles[node] {
            dn.server.occupy(now, extra);
        }
    }

    fn census(&self) -> Census {
        let mut c = Census::default();
        for &d in &self.d_list {
            let dn = self.dstore_ref(d);
            c.d_slots += dn.cfg().data_lines;
            for (_, e) in dn.entries() {
                if e.paged_out {
                    c.paged_out += 1;
                } else if e.owner.is_some() {
                    c.dirty_in_p += 1;
                } else if !e.sharers.is_empty() {
                    c.shared_in_p += 1;
                    if e.in_mem {
                        c.shared_with_home_copy += 1;
                    }
                } else if e.in_mem {
                    c.d_node_only += 1;
                }
            }
        }
        c
    }

    fn epoch_probe(&self) -> EpochProbe {
        let mut busy = 0;
        let mut shared_list_depth = 0;
        let mut free_slots = 0;
        for &d in &self.d_list {
            let dn = self.dstore_ref(d);
            busy += dn.server.busy_cycles();
            shared_list_depth += dn.shared_list_len();
            free_slots += dn.free_slots();
        }
        let mut probe = self.fab.epoch_probe((busy, self.d_list.len()));
        probe.shared_list_depth = shared_list_depth;
        probe.free_slots = free_slots;
        probe
    }

    fn preload(&mut self, addr: u64, owner: NodeId, kind: PreloadKind) {
        let line = line_of(addr, self.cfg.line_shift);
        let home = self.home_of(line, owner);
        if self.dstore_ref(home).entry(line).is_some() {
            return;
        }
        // Initialization data rests clean at its home D-node (it was
        // written long ago and drained out of the P-node memories). When
        // the Data arrays fill up, the threshold page-out of Section
        // 2.2.2 has already pushed the least-recently-used — i.e. cold —
        // pages to disk, which is exactly how the paper argues AGG runs
        // at high memory pressures.
        let page = self.fab.page_of(line);
        match self.dstore(home).alloc_slot(line) {
            Ok(_) => {
                let dn = self.dstore(home);
                dn.entry_mut(line);
                dn.fill_slot(line);
                if kind == PreloadKind::ColdPrivate {
                    dn.mark_page_cold(page);
                }
            }
            Err(()) => {
                let dn = self.dstore(home);
                let e = dn.entry_mut(line);
                e.paged_out = true;
            }
        }
    }
}
