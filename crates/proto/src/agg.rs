//! The paper's AGG architecture.
//!
//! A single type of off-the-shelf PIM chip plays two roles:
//!
//! - **P-nodes** run application threads. Their local DRAM is tagged and
//!   organized as a big 4-way set-associative cache (attraction memory),
//!   so after a cache miss the processor can always probe its local memory
//!   first, whatever the address (Section 2.1.1).
//! - **D-nodes** run the directory protocol in *software* (Table 2 costs)
//!   over the Directory/Data/Pointer arrays of Section 2.2.2; their memory
//!   is the only backing store. Replaced master/dirty lines are always
//!   taken in by the home (fully-associative software allocation), so AGG
//!   never injects; under space pressure it pages out to disk instead.
//!
//! The system also implements the machine-level operations the paper's
//! Sections 2.3 and 2.4 need: converting nodes between the P and D roles
//! at runtime (with page/directory migration) and offloading
//! computation-in-memory requests to D-node processors.

use pimdsm_engine::Cycle;
use pimdsm_mem::{line_of, CacheCfg, Line, Page, PageTable};
use pimdsm_net::{Mesh, NetCfg, NetStats, Network};
use pimdsm_obs::{trace::track, EpochProbe, Tracer};

use crate::common::{
    Access, AmState, CState, Census, ControllerKind, HandlerCosts, HandlerKind, LatencyCfg, Level,
    MsgSize, NodeId, PreloadKind, ProtoStats,
};
use crate::dnode::{DNode, DNodeCfg, Master};
use crate::pnode::{PNodeStore, WriteProbe};
use crate::system::{data_bytes, MemSystem};

/// Configuration of an [`AggSystem`].
#[derive(Debug, Clone)]
pub struct AggCfg {
    /// Number of compute nodes.
    pub n_p: usize,
    /// Number of directory nodes.
    pub n_d: usize,
    /// L1 geometry.
    pub l1: CacheCfg,
    /// L2 geometry.
    pub l2: CacheCfg,
    /// P-node attraction-memory geometry (4-way in the paper).
    pub p_am: CacheCfg,
    /// Lines of the P-node memory resident on chip.
    pub p_onchip_lines: u64,
    /// D-node sizing and policy.
    pub dnode: DNodeCfg,
    /// Line size shift.
    pub line_shift: u32,
    /// Page size shift.
    pub page_shift: u32,
    /// Latency table.
    pub lat: LatencyCfg,
    /// Message sizes.
    pub msg: MsgSize,
    /// Network timing (2 B/cycle links in the paper).
    pub net: NetCfg,
    /// Protocol handler costs (software, Table 2).
    pub handler: HandlerCosts,
    /// Memory port bandwidth, bytes/cycle.
    pub mem_bytes_per_cycle: u64,
    /// Extra D-node processor occupancy per page paged out.
    pub pageout_page_occupancy: Cycle,
}

impl AggCfg {
    /// A paper-parameter configuration: `n_p` P-nodes with `p_am_lines`
    /// lines of tagged local memory each, `n_d` D-nodes with
    /// `d_data_lines` Data-array lines each.
    pub fn paper(
        n_p: usize,
        n_d: usize,
        l1_kb: u64,
        l2_kb: u64,
        p_am_lines: u64,
        d_data_lines: u64,
    ) -> Self {
        let line_shift = 6;
        AggCfg {
            n_p,
            n_d,
            l1: CacheCfg::new(l1_kb * 1024, 1, line_shift),
            l2: CacheCfg::new(l2_kb * 1024, 4, line_shift),
            p_am: CacheCfg::new(p_am_lines * 64, 4, line_shift),
            p_onchip_lines: p_am_lines / 2,
            dnode: DNodeCfg {
                data_lines: d_data_lines,
                onchip_lines: d_data_lines / 2,
                shared_list_min: (d_data_lines / 64).max(4),
                pageout_batch: 1,
                reuse_shared_list: true,
                lines_per_page: 1 << (12 - line_shift),
                lat_on: 37,
                lat_off: 57,
                mem_bytes_per_cycle: 32,
                line_bytes: 64,
            },
            line_shift,
            page_shift: 12,
            lat: LatencyCfg::default(),
            msg: MsgSize::default(),
            net: NetCfg::default(),
            handler: HandlerCosts::paper(ControllerKind::Software),
            mem_bytes_per_cycle: 32,
            pageout_page_occupancy: 1_000,
        }
    }
}

/// Trace label for a software handler kind.
fn handler_name(kind: HandlerKind) -> &'static str {
    match kind {
        HandlerKind::Read => "Read",
        HandlerKind::ReadExclusive => "ReadEx",
        HandlerKind::Acknowledgment => "Ack",
        HandlerKind::WriteBack => "WriteBack",
    }
}

/// What a mesh slot currently is.
#[derive(Debug)]
enum Role {
    P(Box<PNodeStore>),
    D(Box<DNode>),
}

/// The AGG machine.
#[derive(Debug)]
pub struct AggSystem {
    cfg: AggCfg,
    roles: Vec<Role>,
    p_list: Vec<NodeId>,
    d_list: Vec<NodeId>,
    pages: PageTable,
    net: Network,
    stats: ProtoStats,
    tracer: Tracer,
}

impl AggSystem {
    /// Builds an idle AGG machine with D-nodes interleaved evenly among
    /// the P-nodes on the mesh.
    ///
    /// # Panics
    ///
    /// Panics if there are zero P- or D-nodes.
    pub fn new(cfg: AggCfg) -> Self {
        assert!(cfg.n_p > 0, "need at least one P-node");
        assert!(cfg.n_d > 0, "need at least one D-node");
        let total = cfg.n_p + cfg.n_d;
        assert!(total <= crate::common::NodeSet::MAX_NODES);

        // Spread D-nodes evenly across the linear node order (which the
        // row-major mesh turns into a 2D interleaving).
        let mut is_d = vec![false; total];
        for i in 0..cfg.n_d {
            let pos = (i * total + total / 2) / cfg.n_d;
            is_d[pos.min(total - 1)] = true;
        }
        // Rounding collisions: fix up to exactly n_d.
        let mut count = is_d.iter().filter(|&&d| d).count();
        let mut idx = 0;
        while count < cfg.n_d {
            if !is_d[idx] {
                is_d[idx] = true;
                count += 1;
            }
            idx += 1;
        }

        let mut roles = Vec::with_capacity(total);
        let mut p_list = Vec::new();
        let mut d_list = Vec::new();
        for (node, &d) in is_d.iter().enumerate() {
            if d {
                d_list.push(node);
                roles.push(Role::D(Box::new(DNode::new(cfg.dnode))));
            } else {
                p_list.push(node);
                roles.push(Role::P(Box::new(Self::new_pstore(&cfg))));
            }
        }

        let net = Network::new(Mesh::for_nodes(total), cfg.net);
        AggSystem {
            pages: PageTable::new(cfg.page_shift),
            roles,
            p_list,
            d_list,
            net,
            stats: ProtoStats::default(),
            cfg,
            tracer: Tracer::disabled(),
        }
    }

    fn new_pstore(cfg: &AggCfg) -> PNodeStore {
        // Calibrate device latencies so the end-to-end local round trip
        // (L2 probe + AM tag check + device + fill) lands on Table 1.
        let overhead = cfg.lat.l2 + cfg.lat.am_tag_check + cfg.lat.fill;
        PNodeStore::new(
            cfg.l1,
            cfg.l2,
            cfg.p_am,
            cfg.p_onchip_lines as usize,
            cfg.lat.mem_on.saturating_sub(overhead),
            cfg.lat.mem_off.saturating_sub(overhead),
            cfg.mem_bytes_per_cycle,
        )
    }

    /// The configuration.
    pub fn cfg(&self) -> &AggCfg {
        &self.cfg
    }

    /// Current P-nodes.
    pub fn p_nodes(&self) -> &[NodeId] {
        &self.p_list
    }

    /// Current D-nodes.
    pub fn d_nodes(&self) -> &[NodeId] {
        &self.d_list
    }

    fn pstore(&mut self, p: NodeId) -> &mut PNodeStore {
        match &mut self.roles[p] {
            Role::P(s) => s,
            Role::D(_) => panic!("node {p} is a D-node, expected P"),
        }
    }

    fn dstore(&mut self, d: NodeId) -> &mut DNode {
        match &mut self.roles[d] {
            Role::D(s) => s,
            Role::P(_) => panic!("node {d} is a P-node, expected D"),
        }
    }

    fn dstore_ref(&self, d: NodeId) -> &DNode {
        match &self.roles[d] {
            Role::D(s) => s,
            Role::P(_) => panic!("node {d} is a P-node, expected D"),
        }
    }

    fn line_bytes(&self) -> u64 {
        1 << self.cfg.line_shift
    }

    fn msg_ctrl(&self) -> u32 {
        self.cfg.msg.ctrl
    }

    fn msg_data(&self) -> u32 {
        data_bytes(self.cfg.msg.data_header, self.cfg.line_shift)
    }

    fn page_of(&self, line: Line) -> Page {
        line >> (self.cfg.page_shift - self.cfg.line_shift)
    }

    /// Home D-node of a line. Homes interleave across the D-nodes by page
    /// number ("each D-node is home to a fraction of the physical
    /// addresses", Section 2.2.1), which also spreads protocol load.
    fn home_of(&mut self, line: Line, _toucher: NodeId) -> NodeId {
        let page = self.page_of(line);
        if let Some(h) = self.pages.home(page) {
            return h;
        }
        let best = self.d_list[(page as usize) % self.d_list.len()];
        self.pages.home_or_assign(page, || best);
        self.dstore(best).map_page(page);
        best
    }

    /// Dispatches a software handler at D-node `d`; returns its grant.
    /// An enabled tracer records the handler's occupancy window on the
    /// D-node processor as a `proto.handler` span (tid = D-node id).
    fn dispatch(
        &mut self,
        d: NodeId,
        kind: HandlerKind,
        invals: u32,
        at: Cycle,
    ) -> pimdsm_engine::ServerGrant {
        let (l, o) = self.cfg.handler.cost(kind, invals);
        let g = self.dstore(d).server.dispatch(at, l, o);
        self.tracer.span(
            track::PROTO,
            d as u32,
            handler_name(kind),
            "proto.handler",
            g.start,
            o.max(1),
            &[("invals", invals as u64), ("queued", g.start - at)],
        );
        g
    }

    /// Ensures D-node `d` has a free Data slot, paging out if necessary.
    /// Returns the cycle by which the slot is available.
    fn ensure_slot(&mut self, d: NodeId, line: Line, at: Cycle) -> Cycle {
        let mut t = at;
        loop {
            match self.dstore(d).alloc_slot(line) {
                Ok(_dropped) => return t,
                Err(()) => {
                    t = self.page_out(d, t);
                }
            }
        }
    }

    /// Threshold-triggered page-out at D-node `d` (Section 2.2.2): the OS
    /// walks the directory entries of victim pages, recalls lines cached
    /// in P-nodes, and writes the pages to disk. Returns the cycle at
    /// which the freed space is usable.
    fn page_out(&mut self, d: NodeId, at: Cycle) -> Cycle {
        let batch = self.dstore_ref(d).cfg().pageout_batch;
        let victims = self.dstore_ref(d).pageout_victims(batch);
        assert!(
            !victims.is_empty(),
            "D-node {d} must page out but maps no pages"
        );
        self.stats.page_outs += 1;
        let n_pages = victims.len() as u64;
        let lpp = self.dstore_ref(d).cfg().lines_per_page;
        let data = self.msg_data();
        let ctrl = self.msg_ctrl();
        let mut t = at;
        for page in victims {
            let first = page * lpp;
            let mut recalled = 0;
            for line in first..first + lpp {
                let Some(e) = self.dstore_ref(d).entry(line).copied() else {
                    continue;
                };
                let mut holders: Vec<NodeId> = e.sharers.iter().collect();
                if let Some(o) = e.owner {
                    if !holders.contains(&o) {
                        holders.push(o);
                    }
                }
                for k in holders {
                    // Recall: invalidate at the P-node; dirty/master data
                    // travels back.
                    if let Role::P(s) = &mut self.roles[k] {
                        s.caches.invalidate(line);
                        s.am.remove(line);
                    }
                    let t1 = self.net.send(d, k, ctrl, t);
                    let t2 = self.net.send(k, d, data, t1 + self.cfg.lat.am_tag_check);
                    t = t.max(t2);
                    recalled += 1;
                }
                let e = self.dstore(d).entry_mut(line);
                e.owner = None;
                e.sharers.clear();
                e.master = Master::Home;
            }
            let occ = self.cfg.pageout_page_occupancy;
            let dn = self.dstore(d);
            dn.note_recalled(recalled);
            dn.apply_pageout(page);
            t = dn.server.occupy(t, occ) + occ;
        }
        self.tracer.span(
            track::PROTO,
            d as u32,
            "pageout",
            "am.pageout",
            at,
            (t - at).max(1),
            &[("pages", n_pages)],
        );
        t
    }

    /// Write-back of a displaced dirty/shared-master line from P-node `p`
    /// to its home D-node. Booked asynchronously from `at`.
    fn write_back(&mut self, p: NodeId, line: Line, at: Cycle) {
        self.stats.write_backs += 1;
        let home = self
            .pages
            .home(self.page_of(line))
            .expect("displaced line must be mapped");
        let data = self.msg_data();
        let t1 = self.net.send(p, home, data, at);
        let g = self.dispatch(home, HandlerKind::WriteBack, 0, t1);
        if !self.dstore_ref(home).entry(line).is_some_and(|e| e.in_mem) {
            let t_slot = self.ensure_slot(home, line, g.start);
            self.dstore(home).fill_slot(line);
            self.dstore(home).data_access(line, t_slot);
        } else {
            self.dstore(home).data_access(line, g.start);
        }
        self.dstore(home).write_back(line, p);
    }

    /// Silent drop of a shared non-master copy + asynchronous hint.
    fn drop_shared(&mut self, p: NodeId, line: Line, at: Cycle) {
        let home = self
            .pages
            .home(self.page_of(line))
            .expect("resident line must be mapped");
        let t1 = self.net.send(p, home, self.msg_ctrl(), at);
        let (_, ao) = self.cfg.handler.cost(HandlerKind::Acknowledgment, 0);
        let start = self.dstore(home).server.occupy(t1, ao);
        self.tracer.span(
            track::PROTO,
            home as u32,
            "Hint",
            "proto.handler",
            start,
            ao.max(1),
            &[],
        );
        self.dstore(home).replacement_hint(line, p);
    }

    /// Inserts a line into P-node `p`'s attraction memory, handling the
    /// displaced victim per the AGG protocol (write back to the home —
    /// never inject).
    fn am_fill(&mut self, p: NodeId, line: Line, state: AmState, at: Cycle) {
        let r = self.pstore(p).am.insert(line, state, |s| match s {
            AmState::Shared => 2,
            AmState::SharedMaster => 1,
            AmState::Dirty => 0,
        });
        let Some(victim) = r.victim else { return };
        let vline = victim.line;
        self.tracer.instant(
            track::PROTO,
            p as u32,
            "swap",
            "am.swap",
            at,
            &[("new", line), ("victim", vline)],
        );
        let cached = self.pstore(p).caches.invalidate(vline);
        let vstate = match (victim.state, cached) {
            (_, Some(CState::Dirty)) => AmState::Dirty,
            (s, _) => s,
        };
        match vstate {
            AmState::Shared => self.drop_shared(p, vline, at),
            AmState::SharedMaster | AmState::Dirty => self.write_back(p, vline, at),
        }
    }

    /// Invalidates the given P-nodes' copies; acks collected at
    /// `collector`. Returns last ack arrival.
    fn invalidate_p_copies(
        &mut self,
        targets: &[NodeId],
        line: Line,
        from: NodeId,
        collector: NodeId,
        at: Cycle,
    ) -> Cycle {
        let mut done = at;
        let ctrl = self.msg_ctrl();
        for &k in targets {
            self.stats.invalidations += 1;
            let t1 = self.net.send(from, k, ctrl, at);
            if let Role::P(s) = &mut self.roles[k] {
                s.caches.invalidate(line);
                s.am.remove(line);
            }
            // The P-node's memory controller handles the invalidation
            // without involving its processor.
            let t2 = self
                .net
                .send(k, collector, ctrl, t1 + self.cfg.lat.am_tag_check);
            done = done.max(t2);
        }
        done
    }

    /// Merges an L2 victim into the local AM.
    fn merge_l2_victim(&mut self, p: NodeId, victim: Option<(Line, CState)>) {
        let Some((line, state)) = victim else { return };
        if state == CState::Dirty {
            if let Some(s) = self.pstore(p).am.peek_mut(line) {
                *s = AmState::Dirty;
            }
        }
    }

    fn fill_caches(&mut self, p: NodeId, line: Line, state: CState) {
        let victim = self.pstore(p).caches.fill(line, state);
        self.merge_l2_victim(p, victim);
    }

    /// Supplies a line from P-node `k`'s memory to `to`: the remote memory
    /// controller reads the AM and replies without processor involvement.
    fn supply_from_p(&mut self, k: NodeId, to: NodeId, line: Line, at: Cycle) -> Cycle {
        let bytes = self.line_bytes();
        let m = {
            let ps = self.pstore(k);
            let res = ps.am.touch(line).expect("supplier must hold the line");
            ps.mem_access(res, at, bytes)
        };
        let data = self.msg_data();
        self.net.send(k, to, data, m)
    }

    /// Generic computation-in-memory offload (Section 2.4): P-node `p`
    /// sends a request of `request_bytes`; the D-node processor runs a
    /// software handler for `occupancy` cycles (plus `mem_bytes` of Data
    /// traffic on its memory port) and replies with `reply_bytes`.
    /// Returns the cycle the reply reaches `p`.
    #[allow(clippy::too_many_arguments)]
    pub fn offload(
        &mut self,
        p: NodeId,
        d: NodeId,
        request_bytes: u32,
        occupancy: Cycle,
        mem_bytes: u64,
        reply_bytes: u32,
        now: Cycle,
    ) -> Cycle {
        let t1 = self.net.send(p, d, request_bytes, now);
        let start = self.dstore(d).server.occupy(t1, occupancy);
        let t_mem = self.dstore(d).bulk_data_access(start, mem_bytes);
        let done = (start + occupancy).max(t_mem);
        self.net.send(d, p, reply_bytes, done)
    }

    /// Home D-node of an address (first-touch assigning if needed) —
    /// exposed so computation-in-memory callers can route their requests.
    pub fn home_for_addr(&mut self, addr: u64, toucher: NodeId) -> NodeId {
        let line = line_of(addr, self.cfg.line_shift);
        self.home_of(line, toucher)
    }

    /// Converts D-node `node` into a P-node (Section 2.3): its pages and
    /// directory entries migrate to the remaining D-nodes; in-memory lines
    /// travel over the network. Returns `(completion_cycle, pages_moved,
    /// lines_moved)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a D-node or it is the last one.
    pub fn convert_d_to_p(&mut self, node: NodeId, now: Cycle) -> (Cycle, u64, u64) {
        assert!(self.d_list.contains(&node), "node {node} is not a D-node");
        assert!(self.d_list.len() > 1, "cannot convert the last D-node");
        let targets: Vec<NodeId> = self.d_list.iter().copied().filter(|&d| d != node).collect();
        let pages = self.pages.pages_homed_at(node);
        let lpp = self.dstore_ref(node).cfg().lines_per_page;
        // Bulk migration: the node streams its warm resident lines to the
        // new homes at link bandwidth; initialization-cold pages are sent
        // to disk instead (the paper: "these pages can be mapped to
        // another D-node or sent to disk"), off the critical path.
        // The converting node streams over its four mesh links in
        // parallel, without per-line message headers (bulk DMA).
        let line_transfer = (self.line_bytes()).div_ceil(self.cfg.net.bytes_per_cycle * 4);
        let mut t = now;
        let mut lines_moved = 0u64;
        for (i, &page) in pages.iter().enumerate() {
            let nh = targets[i % targets.len()];
            let cold = self.dstore_ref(node).is_cold_page(page);
            self.pages.reassign(page, nh);
            self.dstore(node).unmap_page(page);
            if cold {
                // Hand the page to disk: the new home keeps directory
                // entries marked paged-out; no data moves now.
                self.dstore(nh).map_page(page);
                self.dstore(nh).mark_page_cold(page);
                let first = page * lpp;
                for line in first..first + lpp {
                    if let Some(mut e) = self.dstore(node).evict_entry(line) {
                        e.in_mem = false;
                        e.paged_out = true;
                        e.master = Master::Home;
                        self.dstore(nh).install_entry(line, e);
                    }
                }
                continue;
            }
            self.dstore(nh).map_page(page);
            let first = page * lpp;
            for line in first..first + lpp {
                let Some(e) = self.dstore(node).evict_entry(line) else {
                    continue;
                };
                if e.in_mem {
                    lines_moved += 1;
                    t += line_transfer;
                }
                let mut entry = e;
                while !self.dstore(nh).install_entry(line, entry) {
                    t = self.page_out(nh, t);
                    entry = e;
                }
            }
        }
        self.d_list.retain(|&d| d != node);
        self.roles[node] = Role::P(Box::new(Self::new_pstore(&self.cfg)));
        self.p_list.push(node);
        self.p_list.sort_unstable();
        (t, pages.len() as u64, lines_moved)
    }

    /// Converts P-node `node` into a D-node: the OS writes back its dirty
    /// and shared-master lines to their homes, then reconfigures the
    /// memory controller to plain-memory mode. Returns `(completion_cycle,
    /// lines_flushed)`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a P-node.
    pub fn convert_p_to_d(&mut self, node: NodeId, now: Cycle) -> (Cycle, u64) {
        assert!(self.p_list.contains(&node), "node {node} is not a P-node");
        let cached = self.pstore(node).caches.drain_all();
        for (line, st) in cached {
            if st == CState::Dirty {
                if let Some(s) = self.pstore(node).am.peek_mut(line) {
                    *s = AmState::Dirty;
                }
            }
        }
        let resident = self.pstore(node).am.drain_all();
        let mut t = now;
        let mut flushed = 0u64;
        for (line, st) in resident {
            match st {
                AmState::Shared => self.drop_shared(node, line, t),
                AmState::SharedMaster | AmState::Dirty => {
                    flushed += 1;
                    self.write_back(node, line, t);
                    t += 2; // message issue pacing
                }
            }
        }
        self.p_list.retain(|&p| p != node);
        self.roles[node] = Role::D(Box::new(DNode::new(self.cfg.dnode)));
        self.d_list.push(node);
        self.d_list.sort_unstable();
        (t, flushed)
    }

    /// Drops an address from a P-node's private caches without touching
    /// its attraction memory or the directory — a probe helper for
    /// calibration and tests (equivalent to capacity-evicting the line
    /// from the SRAM caches).
    pub fn purge_caches(&mut self, p: NodeId, addr: u64) {
        let line = line_of(addr, self.cfg.line_shift);
        let dirty = self.pstore(p).caches.invalidate(line);
        if dirty == Some(CState::Dirty) {
            if let Some(s) = self.pstore(p).am.peek_mut(line) {
                *s = AmState::Dirty;
            }
        }
    }

    /// Resident line count and capacity of a P-node's attraction memory
    /// (diagnostics).
    pub fn am_occupancy(&self, p: NodeId) -> (usize, u64) {
        match &self.roles[p] {
            Role::P(s) => (s.am.len(), s.am.cfg().capacity_lines()),
            Role::D(_) => (0, 0),
        }
    }

    /// Verifies D-node storage invariants (tests).
    pub fn check_invariants(&self) {
        for &d in &self.d_list {
            self.dstore_ref(d).check_invariants();
        }
    }

    /// Total page-out events across D-nodes.
    pub fn total_page_outs(&self) -> u64 {
        self.d_list
            .iter()
            .map(|&d| self.dstore_ref(d).stats().page_outs)
            .sum()
    }
}

impl MemSystem for AggSystem {
    fn name(&self) -> &'static str {
        "AGG"
    }

    fn read(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        if let Some(level) = self.pstore(node).caches.read_probe(line) {
            let lat = match level {
                Level::L1 => self.cfg.lat.l1,
                _ => self.cfg.lat.l2,
            };
            self.stats.record_read(level, lat);
            return Access {
                done_at: now + lat,
                level,
            };
        }

        let t = now + self.cfg.lat.l2 + self.cfg.lat.am_tag_check;
        if let Some(res) = self.pstore(node).am.touch(line) {
            self.tracer.instant(
                track::PROTO,
                node as u32,
                "hit",
                "am.hit",
                t,
                &[("line", line)],
            );
            let bytes = self.line_bytes();
            let m = self.pstore(node).mem_access(res, t, bytes);
            let done = m + self.cfg.lat.fill;
            self.fill_caches(node, line, CState::Shared);
            self.stats.record_read(Level::LocalMem, done - now);
            return Access {
                done_at: done,
                level: Level::LocalMem,
            };
        }
        self.tracer.instant(
            track::PROTO,
            node as u32,
            "miss",
            "am.miss",
            t,
            &[("line", line)],
        );

        let home = self.home_of(line, node);
        let ctrl = self.msg_ctrl();
        let data = self.msg_data();
        let t1 = self.net.send(node, home, ctrl, t);
        let entry = self.dstore_ref(home).entry(line).copied();

        let (data_at, level, new_state) = match entry {
            Some(e) if e.paged_out => {
                self.stats.disk_faults += 1;
                self.tracer.instant(
                    track::PROTO,
                    home as u32,
                    "fault",
                    "proto.disk",
                    t1,
                    &[("line", line)],
                );
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                let t_slot = self.ensure_slot(home, line, g.start + self.cfg.lat.disk);
                let dn = self.dstore(home);
                dn.fill_slot(line);
                dn.apply_pagein(line);
                dn.grant_master_read(line, node);
                let arrive = self.net.send(home, node, data, t_slot);
                (arrive, Level::Hop2, AmState::SharedMaster)
            }
            Some(e) if e.owner.is_some() => {
                let k = e.owner.expect("checked");
                debug_assert_ne!(k, node, "owner cannot miss in its own memory");
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                let fwd = self.net.send(home, k, ctrl, g.reply_at);
                // Owner downgrades to shared-master; the home takes no copy.
                self.pstore(k).caches.downgrade(line);
                if let Some(s) = self.pstore(k).am.peek_mut(line) {
                    *s = AmState::SharedMaster;
                }
                let arrive = self.supply_from_p(k, node, line, fwd);
                self.dstore(home).dirty_to_shared(line, node);
                (arrive, Level::Hop3, AmState::Shared)
            }
            Some(e) if !e.sharers.is_empty() => {
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                let pg = self.page_of(line);
                self.dstore(home).touch_page(pg);
                if e.in_mem {
                    let state = if e.master == Master::Home {
                        // Home holds the master: give mastership out again.
                        self.dstore(home).grant_master_read(line, node);
                        AmState::SharedMaster
                    } else {
                        self.dstore(home).add_sharer(line, node);
                        AmState::Shared
                    };
                    let m = self.dstore(home).data_access(line, g.start);
                    let arrive = self.net.send(home, node, data, m.max(g.reply_at));
                    (arrive, Level::Hop2, state)
                } else {
                    // Home dropped its copy: 3-hop fetch from the master.
                    let Master::Node(k) = e.master else {
                        unreachable!("dropped home copy implies an outside master")
                    };
                    debug_assert_ne!(k, node);
                    self.stats.master_fetches += 1;
                    let fwd = self.net.send(home, k, ctrl, g.reply_at);
                    let arrive = self.supply_from_p(k, node, line, fwd);
                    self.dstore(home).add_sharer(line, node);
                    (arrive, Level::Hop3, AmState::Shared)
                }
            }
            Some(e) if e.in_mem => {
                // D-node-only line (master at home): grant mastership out.
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                let pg = self.page_of(line);
                self.dstore(home).touch_page(pg);
                self.dstore(home).grant_master_read(line, node);
                let m = self.dstore(home).data_access(line, g.start);
                let arrive = self.net.send(home, node, data, m.max(g.reply_at));
                (arrive, Level::Hop2, AmState::SharedMaster)
            }
            _ => {
                // Virgin line: materialize at the home, grant mastership.
                let g = self.dispatch(home, HandlerKind::Read, 0, t1);
                let t_slot = self.ensure_slot(home, line, g.start);
                self.dstore(home).grant_first_read(line, node);
                let m = self.dstore(home).data_access(line, t_slot);
                let arrive = self.net.send(home, node, data, m.max(g.reply_at));
                (arrive, Level::Hop2, AmState::SharedMaster)
            }
        };

        let done = data_at + self.cfg.lat.fill;
        self.tracer.span(
            track::PROTO,
            node as u32,
            "read.remote",
            "proto.read",
            now,
            (done - now).max(1),
            &[("line", line), ("level", level.index() as u64)],
        );
        self.am_fill(node, line, new_state, done);
        self.fill_caches(node, line, CState::Shared);
        self.stats.record_read(level, done - now);
        Access {
            done_at: done,
            level,
        }
    }

    fn write(&mut self, node: NodeId, addr: u64, now: Cycle) -> Access {
        let line = line_of(addr, self.cfg.line_shift);
        match self.pstore(node).caches.write_probe(line) {
            WriteProbe::Done(level) => {
                let lat = match level {
                    Level::L1 => self.cfg.lat.l1,
                    _ => self.cfg.lat.l2,
                };
                return Access {
                    done_at: now + lat,
                    level,
                };
            }
            WriteProbe::NeedUpgrade | WriteProbe::Miss => {}
        }

        let t = now + self.cfg.lat.l2 + self.cfg.lat.am_tag_check;
        let am_state = self.pstore(node).am.peek(line).copied();

        if am_state == Some(AmState::Dirty) {
            // Exclusive at the memory level already.
            let bytes = self.line_bytes();
            let m = {
                let ps = self.pstore(node);
                let res = ps.am.touch(line).expect("present");
                ps.mem_access(res, t, bytes)
            };
            self.fill_caches(node, line, CState::Dirty);
            return Access {
                done_at: m + self.cfg.lat.fill,
                level: Level::LocalMem,
            };
        }

        let home = self.home_of(line, node);
        let ctrl = self.msg_ctrl();
        let data = self.msg_data();
        self.stats.remote_writes += 1;
        let t1 = self.net.send(node, home, ctrl, t);
        let entry = self.dstore_ref(home).entry(line).copied();

        // Handle a paged-out line first: bring the page back.
        if let Some(e) = entry {
            if e.paged_out {
                self.stats.disk_faults += 1;
                self.tracer.instant(
                    track::PROTO,
                    home as u32,
                    "fault",
                    "proto.disk",
                    t1,
                    &[("line", line)],
                );
                let g = self.dispatch(home, HandlerKind::ReadExclusive, 0, t1);
                self.dstore(home).apply_pagein(line);
                let targets = self.dstore(home).make_owner(line, node);
                debug_assert!(targets.is_empty());
                let arrive = self
                    .net
                    .send(home, node, data, g.reply_at + self.cfg.lat.disk);
                let done = arrive + self.cfg.lat.fill;
                self.am_fill(node, line, AmState::Dirty, done);
                self.fill_caches(node, line, CState::Dirty);
                return Access {
                    done_at: done,
                    level: Level::Hop2,
                };
            }
        }

        let had_local_copy = am_state.is_some();
        let prev_owner = entry.and_then(|e| e.owner);
        let home_had_copy = entry.is_some_and(|e| e.in_mem);

        // Directory mutation: who must be invalidated.
        let mut targets = self.dstore(home).make_owner(line, node);
        let g = self.dispatch(home, HandlerKind::ReadExclusive, targets.len() as u32, t1);

        let (data_at, level) = if had_local_copy {
            // Upgrade: data already local, just ownership + invalidations.
            let acks = self.invalidate_p_copies(&targets, line, home, node, g.reply_at);
            let grant = self.net.send(home, node, ctrl, g.reply_at);
            if let Some(s) = self.pstore(node).am.peek_mut(line) {
                *s = AmState::Dirty;
            }
            (acks.max(grant), Level::Hop2)
        } else if let Some(k) = prev_owner {
            debug_assert_ne!(k, node);
            targets.retain(|&x| x != k);
            let acks = self.invalidate_p_copies(&targets, line, home, node, g.reply_at);
            let fwd = self.net.send(home, k, ctrl, g.reply_at);
            let arrive = self.supply_from_p(k, node, line, fwd);
            self.pstore(k).caches.invalidate(line);
            self.pstore(k).am.remove(line);
            self.stats.invalidations += 1;
            (arrive.max(acks), Level::Hop3)
        } else if home_had_copy {
            let m = self.dstore(home).data_access(line, g.start);
            let acks = self.invalidate_p_copies(&targets, line, home, node, g.reply_at);
            let arrive = self.net.send(home, node, data, m.max(g.reply_at));
            (arrive.max(acks), Level::Hop2)
        } else if let Some(&k) = targets.first() {
            // Home copy dropped: fetch from the master (first target holds
            // it — the master is always a sharer).
            let master = entry
                .map(|e| match e.master {
                    Master::Node(m) => m,
                    Master::Home => k,
                })
                .unwrap_or(k);
            let supplier = if targets.contains(&master) { master } else { k };
            targets.retain(|&x| x != supplier);
            let acks = self.invalidate_p_copies(&targets, line, home, node, g.reply_at);
            let fwd = self.net.send(home, supplier, ctrl, g.reply_at);
            let arrive = self.supply_from_p(supplier, node, line, fwd);
            self.pstore(supplier).caches.invalidate(line);
            self.pstore(supplier).am.remove(line);
            self.stats.invalidations += 1;
            self.stats.master_fetches += 1;
            (arrive.max(acks), Level::Hop3)
        } else {
            // Virgin line: ownership granted, data materializes.
            let arrive = self.net.send(home, node, data, g.reply_at);
            (arrive, Level::Hop2)
        };

        let done = data_at + self.cfg.lat.fill;
        self.tracer.span(
            track::PROTO,
            node as u32,
            "write.remote",
            "proto.write",
            now,
            (done - now).max(1),
            &[("line", line), ("level", level.index() as u64)],
        );
        if !had_local_copy {
            self.am_fill(node, line, AmState::Dirty, done);
        }
        self.fill_caches(node, line, CState::Dirty);
        Access {
            done_at: done,
            level,
        }
    }

    fn line_shift(&self) -> u32 {
        self.cfg.line_shift
    }

    fn compute_nodes(&self) -> Vec<NodeId> {
        self.p_list.clone()
    }

    fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    fn census(&self) -> Census {
        let mut c = Census::default();
        for &d in &self.d_list {
            let dn = self.dstore_ref(d);
            c.d_slots += dn.cfg().data_lines;
            for (_, e) in dn.entries() {
                if e.paged_out {
                    c.paged_out += 1;
                } else if e.owner.is_some() {
                    c.dirty_in_p += 1;
                } else if !e.sharers.is_empty() {
                    c.shared_in_p += 1;
                    if e.in_mem {
                        c.shared_with_home_copy += 1;
                    }
                } else if e.in_mem {
                    c.d_node_only += 1;
                }
            }
        }
        c
    }

    fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    fn net_link_busy(&self) -> (Cycle, Cycle) {
        (self.net.total_link_busy(), self.net.max_link_busy())
    }

    fn controller_utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 || self.d_list.is_empty() {
            return 0.0;
        }
        let busy: Cycle = self
            .d_list
            .iter()
            .map(|&d| self.dstore_ref(d).server.busy_cycles())
            .sum();
        busy as f64 / (elapsed * self.d_list.len() as u64) as f64
    }

    fn attach_tracer(&mut self, tracer: Tracer) {
        self.net.attach_tracer(tracer.clone());
        self.tracer = tracer;
    }

    fn epoch_probe(&self) -> EpochProbe {
        let mut probe = EpochProbe {
            ctrl_busy: 0,
            ctrl_count: self.d_list.len(),
            link_busy: self.net.total_link_busy(),
            link_count: self.net.num_links(),
            shared_list_depth: 0,
            free_slots: 0,
            reads_by_level: self.stats.reads_by_level,
            remote_writes: self.stats.remote_writes,
            net_messages: self.net.stats().messages,
        };
        for &d in &self.d_list {
            let dn = self.dstore_ref(d);
            probe.ctrl_busy += dn.server.busy_cycles();
            probe.shared_list_depth += dn.shared_list_len();
            probe.free_slots += dn.free_slots();
        }
        probe
    }

    fn preload(&mut self, addr: u64, owner: NodeId, kind: PreloadKind) {
        let line = line_of(addr, self.cfg.line_shift);
        let home = self.home_of(line, owner);
        if self.dstore_ref(home).entry(line).is_some() {
            return;
        }
        // Initialization data rests clean at its home D-node (it was
        // written long ago and drained out of the P-node memories). When
        // the Data arrays fill up, the threshold page-out of Section
        // 2.2.2 has already pushed the least-recently-used — i.e. cold —
        // pages to disk, which is exactly how the paper argues AGG runs
        // at high memory pressures.
        let _ = owner;
        let page = self.page_of(line);
        match self.dstore(home).alloc_slot(line) {
            Ok(_) => {
                let dn = self.dstore(home);
                dn.entry_mut(line);
                dn.fill_slot(line);
                if kind == PreloadKind::ColdPrivate {
                    dn.mark_page_cold(page);
                }
            }
            Err(()) => {
                let dn = self.dstore(home);
                let e = dn.entry_mut(line);
                e.paged_out = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(n_p: usize, n_d: usize, p_am_lines: u64, d_lines: u64) -> AggSystem {
        AggSystem::new(AggCfg::paper(n_p, n_d, 8, 32, p_am_lines, d_lines))
    }

    #[test]
    fn placement_interleaves_roles() {
        let s = sys(4, 2, 256, 1024);
        assert_eq!(s.p_nodes().len(), 4);
        assert_eq!(s.d_nodes().len(), 2);
        let mut all: Vec<NodeId> = s.p_nodes().to_vec();
        all.extend_from_slice(s.d_nodes());
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn first_read_grants_mastership_to_reader() {
        let mut s = sys(2, 1, 256, 1024);
        let p = s.p_nodes()[0];
        let a = s.read(p, 0x1000, 0);
        assert_eq!(a.level, Level::Hop2);
        let line = 0x1000 >> 6;
        assert_eq!(s.pstore(p).am.peek(line), Some(&AmState::SharedMaster));
        let d = s.d_nodes()[0];
        let e = s.dstore_ref(d).entry(line).unwrap();
        assert_eq!(e.master, Master::Node(p));
        assert!(e.in_mem, "home keeps a reclaimable duplicate");
        assert_eq!(s.dstore_ref(d).shared_list_len(), 1);
        s.check_invariants();
    }

    #[test]
    fn second_read_hits_local_memory() {
        let mut s = sys(2, 1, 256, 1024);
        let p = s.p_nodes()[0];
        s.read(p, 0x1000, 0);
        let line = 0x1000 >> 6;
        s.pstore(p).caches.invalidate(line);
        let a = s.read(p, 0x1000, 10_000);
        assert_eq!(a.level, Level::LocalMem);
    }

    #[test]
    fn write_makes_dirty_and_frees_home_slot() {
        let mut s = sys(2, 1, 256, 1024);
        let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
        s.read(p0, 0x1000, 0);
        s.read(p1, 0x1000, 1000);
        let d = s.d_nodes()[0];
        let free_before = s.dstore_ref(d).free_slots();
        let a = s.write(p1, 0x1000, 10_000);
        assert_eq!(a.level, Level::Hop2);
        let line = 0x1000 >> 6;
        let e = s.dstore_ref(d).entry(line).unwrap();
        assert_eq!(e.owner, Some(p1));
        assert!(!e.in_mem, "dirty lines keep no home place holder");
        assert_eq!(s.dstore_ref(d).free_slots(), free_before + 1);
        assert!(s.pstore(p0).am.peek(line).is_none(), "sharer invalidated");
        s.check_invariants();
    }

    #[test]
    fn read_of_dirty_line_is_three_hops() {
        let mut s = sys(3, 1, 256, 1024);
        let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
        s.write(p0, 0x1000, 0);
        let a = s.read(p1, 0x1000, 10_000);
        assert_eq!(a.level, Level::Hop3);
        let line = 0x1000 >> 6;
        assert_eq!(s.pstore(p0).am.peek(line), Some(&AmState::SharedMaster));
        s.check_invariants();
    }

    #[test]
    fn displaced_master_writes_back_home_no_injection() {
        // P AM: 1 set × 1 way → every new line displaces the previous.
        let mut cfg = AggCfg::paper(2, 1, 8, 32, 4, 1024);
        cfg.p_am = CacheCfg::new(64, 1, 6);
        cfg.l1 = CacheCfg::new(64, 1, 6);
        cfg.l2 = CacheCfg::new(64, 1, 6);
        let mut s = AggSystem::new(cfg);
        let p = s.p_nodes()[0];
        s.write(p, 0, 0); // dirty master of line 0
        s.write(p, 64, 10_000); // displaces line 0 → write back home
        assert_eq!(s.stats().write_backs, 1);
        assert_eq!(s.stats().injections, 0);
        let d = s.d_nodes()[0];
        let e = s.dstore_ref(d).entry(0).unwrap();
        assert_eq!(e.owner, None);
        assert_eq!(e.master, Master::Home);
        assert!(e.in_mem);
        s.check_invariants();
    }

    #[test]
    fn home_copy_reclaim_causes_three_hop_reads() {
        // D-node with 2 Data lines; reads of 3 lines force a SharedList
        // reclaim; re-reading the dropped line from another P-node must go
        // through the master (3 hops).
        let mut cfg = AggCfg::paper(2, 1, 8, 32, 4096, 2);
        cfg.dnode.shared_list_min = 0;
        let mut s = AggSystem::new(cfg);
        let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
        s.read(p0, 0, 0);
        s.read(p0, 64, 1000);
        s.read(p0, 128, 2000); // reclaims home copy of line 0
        let d = s.d_nodes()[0];
        assert!(!s.dstore_ref(d).entry(0).unwrap().in_mem);
        let a = s.read(p1, 0, 10_000);
        assert_eq!(a.level, Level::Hop3);
        assert!(s.stats().master_fetches >= 1);
        s.check_invariants();
    }

    #[test]
    fn pageout_when_nothing_reclaimable() {
        // 4 Data lines, high threshold, 1 line per page for simplicity.
        let mut cfg = AggCfg::paper(2, 1, 8, 32, 4096, 4);
        cfg.dnode.shared_list_min = 8;
        cfg.dnode.reuse_shared_list = false;
        cfg.dnode.pageout_batch = 2;
        cfg.dnode.lines_per_page = 64; // 4 KiB pages of 64-line
        let mut s = AggSystem::new(cfg);
        let p = s.p_nodes()[0];
        // Touch lines in distinct pages to map several pages.
        for i in 0..6u64 {
            s.read(p, i * 4096, i * 100_000);
        }
        assert!(s.total_page_outs() >= 1, "page-out must have triggered");
        assert!(s.stats().page_outs >= 1);
        s.check_invariants();
    }

    #[test]
    fn disk_fault_on_paged_out_line() {
        let mut cfg = AggCfg::paper(2, 1, 8, 32, 4096, 4);
        cfg.dnode.shared_list_min = 8;
        cfg.dnode.reuse_shared_list = false;
        cfg.dnode.pageout_batch = 2;
        let mut s = AggSystem::new(cfg);
        let p = s.p_nodes()[0];
        for i in 0..6u64 {
            s.read(p, i * 4096, i * 100_000);
        }
        // Find a paged-out line and read it again.
        let d = s.d_nodes()[0];
        let paged: Vec<Line> = s
            .dstore_ref(d)
            .entries()
            .filter(|(_, e)| e.paged_out)
            .map(|(l, _)| l)
            .collect();
        assert!(!paged.is_empty());
        let addr = paged[0] << 6;
        let before = s.stats().disk_faults;
        let a = s.read(s.p_nodes()[1], addr, 10_000_000);
        assert_eq!(s.stats().disk_faults, before + 1);
        assert!(a.done_at - 10_000_000 >= s.cfg.lat.disk);
        s.check_invariants();
    }

    #[test]
    fn convert_p_to_d_flushes_and_switches_role() {
        let mut s = sys(3, 1, 256, 4096);
        let p = s.p_nodes()[2];
        s.write(p, 0x5000, 0);
        let (done, flushed) = s.convert_p_to_d(p, 100_000);
        assert!(done >= 100_000);
        assert_eq!(flushed, 1);
        assert_eq!(s.p_nodes().len(), 2);
        assert_eq!(s.d_nodes().len(), 2);
        assert!(s.d_nodes().contains(&p));
        // The dirty line went home.
        let home = s.pages.home(0x5000 >> 12).unwrap();
        let e = s.dstore_ref(home).entry(0x5000 >> 6).unwrap();
        assert_eq!(e.owner, None);
        assert!(e.in_mem);
        s.check_invariants();
    }

    #[test]
    fn convert_d_to_p_migrates_pages() {
        let mut s = sys(2, 2, 256, 4096);
        let p = s.p_nodes()[0];
        // Touch pages; some land on each D-node.
        for i in 0..8u64 {
            s.read(p, i * 4096, i * 10_000);
        }
        let victim_d = s.d_nodes()[0];
        let keep_d = s.d_nodes()[1];
        let before = s.pages.pages_at(keep_d);
        let (done, pages_moved, _lines) = s.convert_d_to_p(victim_d, 1_000_000);
        assert!(done >= 1_000_000);
        assert_eq!(s.d_nodes(), &[keep_d]);
        assert!(s.p_nodes().contains(&victim_d));
        assert_eq!(s.pages.pages_at(keep_d), before + pages_moved);
        assert_eq!(s.pages.pages_at(victim_d), 0);
        s.check_invariants();
    }

    #[test]
    fn offload_books_dnode_and_replies() {
        let mut s = sys(2, 1, 256, 4096);
        let p = s.p_nodes()[0];
        let d = s.d_nodes()[0];
        let t0 = s.offload(p, d, 16, 10_000, 64 * 1024, 256, 0);
        assert!(t0 >= 10_000);
        // A second offload queues behind the first on the D server.
        let t1 = s.offload(p, d, 16, 10_000, 64 * 1024, 256, 0);
        assert!(t1 > t0);
    }

    #[test]
    fn census_matches_protocol_state() {
        let mut s = sys(3, 1, 4096, 4096);
        let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
        s.read(p0, 0, 0); // shared (master at p0, home copy on SharedList)
        s.write(p1, 0x1000, 0); // dirty in P
        s.write(p0, 0x2000, 0);
        // Write line 0x2000 back home by displacement? Simpler: convert
        // nothing; count what we have.
        let c = s.census();
        assert_eq!(c.dirty_in_p, 2);
        assert_eq!(c.shared_in_p, 1);
        assert_eq!(c.shared_with_home_copy, 1);
        assert_eq!(c.d_node_only, 0);
    }
}

#[cfg(test)]
mod trace_guard {
    use super::*;
    use pimdsm_obs::{TraceEvent, Tracer};

    /// Determinism guard: a known tiny run must produce this exact event
    /// sequence. If a protocol or interconnect change legitimately alters
    /// the walk, update the expectation alongside the change — the point
    /// is that such changes never happen silently.
    #[test]
    fn tiny_run_produces_exact_event_sequence() {
        let mut s = AggSystem::new(AggCfg::paper(2, 1, 8, 32, 256, 1024));
        let tracer = Tracer::enabled();
        s.attach_tracer(tracer.clone());
        let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
        // Cold read by p0, a second sharer p1, then p1 takes ownership
        // (invalidating p0): one Read, one Read, one ReadExclusive.
        s.read(p0, 0x1000, 0);
        s.read(p1, 0x1000, 1_000);
        s.write(p1, 0x1000, 2_000);

        #[allow(clippy::type_complexity)]
        #[rustfmt::skip]
        let expected: &[(u32, u32, &str, &str, Cycle, Option<Cycle>, &[(&str, u64)])] = &[
            (0, 0, "read.remote", "proto.read", 0, Some(179), &[("line", 64), ("level", 3)]),
            (0, 0, "miss", "am.miss", 12, None, &[("line", 64)]),
            (0, 1, "Read", "proto.handler", 49, Some(80), &[("invals", 0), ("queued", 0)]),
            (0, 1, "Read", "proto.handler", 1049, Some(80), &[("invals", 0), ("queued", 0)]),
            (0, 1, "ReadEx", "proto.handler", 2049, Some(90), &[("invals", 1), ("queued", 0)]),
            (0, 2, "read.remote", "proto.read", 1000, Some(162), &[("line", 64), ("level", 3)]),
            (0, 2, "miss", "am.miss", 1012, None, &[("line", 64)]),
            (0, 2, "write.remote", "proto.write", 2000, Some(195), &[("line", 64), ("level", 3)]),
            (1, 0, "xfer", "net.link", 22, Some(8), &[("from", 0), ("to", 1), ("bytes", 16)]),
            (1, 0, "xfer", "net.link", 2147, Some(8), &[("from", 0), ("to", 2), ("bytes", 16)]),
            (1, 4, "xfer", "net.link", 1099, Some(40), &[("from", 1), ("to", 2), ("bytes", 80)]),
            (1, 4, "xfer", "net.link", 2156, Some(8), &[("from", 0), ("to", 2), ("bytes", 16)]),
            (1, 4, "xfer", "net.link", 2164, Some(8), &[("from", 1), ("to", 2), ("bytes", 16)]),
            (1, 5, "xfer", "net.link", 116, Some(40), &[("from", 1), ("to", 0), ("bytes", 80)]),
            (1, 5, "xfer", "net.link", 2104, Some(8), &[("from", 1), ("to", 0), ("bytes", 16)]),
            (1, 9, "xfer", "net.link", 1022, Some(8), &[("from", 2), ("to", 1), ("bytes", 16)]),
            (1, 9, "xfer", "net.link", 2022, Some(8), &[("from", 2), ("to", 1), ("bytes", 16)]),
            (1, 12, "deliver", "net.msg", 49, None, &[("from", 0), ("to", 1), ("bytes", 16)]),
            (1, 12, "deliver", "net.msg", 175, None, &[("from", 1), ("to", 0), ("bytes", 80)]),
            (1, 12, "deliver", "net.msg", 1049, None, &[("from", 2), ("to", 1), ("bytes", 16)]),
            (1, 12, "deliver", "net.msg", 1158, None, &[("from", 1), ("to", 2), ("bytes", 80)]),
            (1, 12, "deliver", "net.msg", 2049, None, &[("from", 2), ("to", 1), ("bytes", 16)]),
            (1, 12, "deliver", "net.msg", 2131, None, &[("from", 1), ("to", 0), ("bytes", 16)]),
            (1, 12, "deliver", "net.msg", 2183, None, &[("from", 0), ("to", 2), ("bytes", 16)]),
            (1, 12, "deliver", "net.msg", 2191, None, &[("from", 1), ("to", 2), ("bytes", 16)]),
        ];

        let actual = tracer.events_sorted();
        assert_eq!(actual.len(), expected.len(), "event count changed");
        for (got, want) in actual.iter().zip(expected) {
            let (pid, tid, name, cat, ts, dur, args) = *want;
            let want_ev = TraceEvent {
                name,
                cat,
                pid,
                tid,
                ts,
                dur,
                args: args.to_vec(),
            };
            assert_eq!(*got, want_ev);
        }
    }
}
