//! Protocol-level tests of the flat-COMA system (relocated from the old
//! `coma.rs` unit tests; same scenarios, driven through the public API).

use pimdsm_mem::CacheCfg;
use pimdsm_proto::{AmState, ComaCfg, ComaSystem, Level, MemSystem};

fn sys(am_lines: u64) -> ComaSystem {
    ComaSystem::new(ComaCfg::paper(4, 8, 32, am_lines))
}

#[test]
fn cold_read_materializes_master_locally() {
    let mut s = sys(4096);
    let a = s.read(0, 0x1000, 0);
    assert_eq!(a.level, Level::LocalMem);
    assert_eq!(s.am_state(0, 0x1000 >> 6), Some(AmState::SharedMaster));
}

#[test]
fn remote_read_attracts_copy() {
    let mut s = sys(4096);
    s.read(0, 0x1000, 0); // master at 0
    let a = s.read(1, 0x1000, 1000);
    assert_eq!(a.level, Level::Hop2);
    // The copy is now attracted: a re-read after cache eviction hits the
    // local attraction memory.
    s.purge_caches(1, 0x1000);
    let b = s.read(1, 0x1000, 100_000);
    assert_eq!(b.level, Level::LocalMem);
}

#[test]
fn read_of_dirty_line_leaves_shared_master_at_owner() {
    let mut s = sys(4096);
    s.write(0, 0x1000, 0);
    let a = s.read(1, 0x1000, 1000);
    assert_ne!(a.level, Level::LocalMem);
    assert_eq!(s.am_state(0, 64), Some(AmState::SharedMaster));
    assert_eq!(s.am_state(1, 64), Some(AmState::Shared));
    let e = s.dir_entry(64).expect("entry");
    assert_eq!(e.owner, None);
    assert_eq!(e.master, Some(0));
}

#[test]
fn write_invalidates_other_copies() {
    let mut s = sys(4096);
    s.read(0, 0x1000, 0);
    s.read(1, 0x1000, 1000);
    s.write(2, 0x1000, 10_000);
    assert_eq!(s.am_state(0, 64), None);
    assert_eq!(s.am_state(1, 64), None);
    assert_eq!(s.am_state(2, 64), Some(AmState::Dirty));
    assert_eq!(s.dir_entry(64).expect("entry").owner, Some(2));
}

#[test]
fn upgrade_of_am_dirty_is_local() {
    let mut s = sys(4096);
    s.write(0, 0x1000, 0);
    s.read(0, 0x1000, 100);
    s.purge_caches(0, 0x1000);
    s.read(0, 0x1000, 200); // refill caches Shared, AM stays Dirty
    let a = s.write(0, 0x1000, 300);
    assert!(
        a.done_at - 300 < 60,
        "AM-dirty upgrade stays local, took {}",
        a.done_at - 300
    );
}

#[test]
fn replacement_prefers_shared_over_master() {
    let mut cfg = ComaCfg::paper(2, 8, 32, 4);
    // Two-line, 2-way AM: the third distinct line forces a replacement.
    cfg.am = CacheCfg::new(2 * 64, 2, 6);
    let mut s = ComaSystem::new(cfg);
    s.write(0, 0, 0); // line 0: Dirty (master) at 0
    s.read(1, 64, 0); // line 1: master at 1
    s.read(0, 64, 1000); // line 1: shared copy at 0
    s.write(0, 128, 10_000); // forces a victim in node 0's AM
    assert!(s.am_state(0, 0).is_some(), "dirty master kept");
    assert!(s.am_state(0, 2).is_some(), "incoming line resident");
    assert!(s.am_state(0, 1).is_none(), "shared copy was the victim");
    assert_eq!(s.injections(), 0, "shared victims drop silently");
}

#[test]
fn master_replacement_injects() {
    let mut cfg = ComaCfg::paper(3, 8, 32, 4);
    cfg.am = CacheCfg::new(64, 1, 6); // one-line AM
    cfg.l1 = CacheCfg::new(64, 1, 6);
    cfg.l2 = CacheCfg::new(64, 1, 6);
    let mut s = ComaSystem::new(cfg);
    s.write(0, 0, 0); // line 0 dirty at node 0
    s.write(0, 64, 1000); // displaces line 0 -> inject
    assert_eq!(s.injections(), 1);
    let holder = s.dir_entry(0).expect("entry").owner.expect("still owned");
    assert!(s.am_state(holder, 0).is_some(), "line lives at {holder}");
    assert_ne!(holder, 0);
}

#[test]
fn forced_injection_spills_displaced_master_to_disk() {
    let mut cfg = ComaCfg::paper(2, 8, 32, 4);
    cfg.am = CacheCfg::new(64, 1, 6);
    cfg.l1 = CacheCfg::new(64, 1, 6);
    cfg.l2 = CacheCfg::new(64, 1, 6);
    cfg.injection_max_tries = 1;
    let mut s = ComaSystem::new(cfg);
    s.write(0, 0, 0); // node 0 holds line 0 dirty
    s.write(1, 64, 0); // node 1 holds line 1 dirty
                       // Node 0 writes line 2: displaces line 0, which must inject into node
                       // 1's only way, displacing line 1 to disk.
    s.write(0, 128, 1000);
    assert_eq!(s.stats().disk_spills, 1);
    assert_eq!(s.dir_entry(0).expect("entry").owner, Some(1));
    assert!(s.am_state(1, 0).is_some());
    assert!(s.dir_entry(1).expect("entry").on_disk);
    // Reading the spilled line pays the disk fault.
    let a = s.read(0, 64, 1_000_000);
    assert!(a.done_at - 1_000_000 >= s.cfg().lat.disk);
    assert_eq!(s.stats().disk_faults, 1);
}

#[test]
fn three_hop_when_home_displaced() {
    let mut s = sys(4096);
    s.read(0, 0x1000, 0); // home+master at 0
    s.write(1, 0x1000, 1000); // dirty at 1
    let a = s.read(2, 0x1000, 10_000);
    assert_eq!(a.level, Level::Hop3, "home 0, owner 1, reader 2");
}

#[test]
fn cache_hit_levels() {
    let mut s = sys(4096);
    s.read(0, 0x1000, 0);
    let a = s.read(0, 0x1000, 100);
    assert_eq!(a.level, Level::L1);
}
