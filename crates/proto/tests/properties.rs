//! Property-based tests: random access streams never violate the
//! protocols' structural invariants.

use proptest::prelude::*;

use pimdsm_proto::{
    AggCfg, AggSystem, ComaCfg, ComaSystem, MemSystem, NodeSet, NumaCfg, NumaSystem,
};

#[derive(Debug, Clone, Copy)]
enum Access {
    Read { node: usize, line: u64 },
    Write { node: usize, line: u64 },
}

fn accesses(nodes: usize, lines: u64) -> impl Strategy<Value = Vec<Access>> {
    proptest::collection::vec(
        (0..nodes, 0u64..lines, any::<bool>()).prop_map(|(node, line, write)| {
            if write {
                Access::Write { node, line }
            } else {
                Access::Read { node, line }
            }
        }),
        1..250,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of reads and writes leaves the AGG D-node
    /// structures (FreeList/SharedList/directory) consistent, and the
    /// directory agrees with the P-node attraction memories.
    #[test]
    fn agg_invariants_under_random_traffic(ops in accesses(4, 64)) {
        // Small D-memory so SharedList reclaim and page-out also trigger.
        let mut cfg = AggCfg::paper(4, 2, 8, 32, 256, 48);
        cfg.dnode.lines_per_page = 8;
        cfg.dnode.shared_list_min = 2;
        let mut sys = AggSystem::new(cfg);
        let p_nodes: Vec<usize> = sys.p_nodes().to_vec();
        let mut t = 0;
        for op in ops {
            t += 500;
            match op {
                Access::Read { node, line } => {
                    sys.read(p_nodes[node], line * 64, t);
                }
                Access::Write { node, line } => {
                    sys.write(p_nodes[node], line * 64, t);
                }
            }
            sys.check_invariants();
        }
        // Census is consistent with the directory contents.
        let c = sys.census();
        prop_assert!(c.d_node_only + c.shared_with_home_copy <= c.d_slots);
        prop_assert!(c.shared_with_home_copy <= c.shared_in_p);
    }

    /// Reads always return nondecreasing completion times relative to
    /// issue, on every architecture.
    #[test]
    fn accesses_never_complete_before_issue(ops in accesses(4, 128), arch in 0usize..3) {
        let mut numa;
        let mut coma;
        let mut agg;
        let sys: &mut dyn MemSystem = match arch {
            0 => {
                numa = NumaSystem::new(NumaCfg::paper(4, 8, 32, 4096));
                &mut numa
            }
            1 => {
                coma = ComaSystem::new(ComaCfg::paper(4, 8, 32, 4096));
                &mut coma
            }
            _ => {
                agg = AggSystem::new(AggCfg::paper(4, 2, 8, 32, 2048, 4096));
                &mut agg
            }
        };
        let compute = sys.compute_nodes();
        let mut t = 0;
        for op in ops {
            t += 300;
            let a = match op {
                Access::Read { node, line } => sys.read(compute[node], line * 64, t),
                Access::Write { node, line } => sys.write(compute[node], line * 64, t),
            };
            prop_assert!(a.done_at >= t, "completion {} before issue {t}", a.done_at);
        }
        let total: u64 = sys.stats().reads_by_level.iter().sum();
        prop_assert_eq!(total, sys.stats().total_reads());
    }

    /// After any traffic, a written line reads back as a cache hit at the
    /// writer, and a subsequent read at another node invalidates nobody
    /// (single-writer/multi-reader coherence sanity).
    #[test]
    fn write_then_read_is_coherent(line in 0u64..64, writer in 0usize..4, reader in 0usize..4) {
        let mut sys = AggSystem::new(AggCfg::paper(4, 2, 8, 32, 2048, 4096));
        let p: Vec<usize> = sys.p_nodes().to_vec();
        sys.write(p[writer], line * 64, 0);
        let a = sys.read(p[writer], line * 64, 10_000);
        prop_assert!(
            matches!(a.level, pimdsm_proto::Level::L1 | pimdsm_proto::Level::L2),
            "writer re-read should hit its caches, got {:?}", a.level
        );
        let before = sys.stats().invalidations;
        sys.read(p[reader], line * 64, 20_000);
        prop_assert_eq!(sys.stats().invalidations, before, "reads never invalidate");
        sys.check_invariants();
    }

    /// NodeSet behaves like a HashSet over 0..64.
    #[test]
    fn nodeset_matches_reference(ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..200)) {
        let mut s = NodeSet::new();
        let mut model = std::collections::HashSet::new();
        for (n, add) in ops {
            if add {
                s.insert(n);
                model.insert(n);
            } else {
                prop_assert_eq!(s.remove(n), model.remove(&n));
            }
            prop_assert_eq!(s.len(), model.len());
            prop_assert_eq!(s.is_empty(), model.is_empty());
        }
        let collected: std::collections::HashSet<usize> = s.iter().collect();
        prop_assert_eq!(collected, model);
    }
}
