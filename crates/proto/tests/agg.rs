//! Protocol-level tests of the AGG system (relocated from the old
//! `agg.rs` unit tests; same scenarios, driven through the public API).

use pimdsm_mem::CacheCfg;
use pimdsm_proto::dnode::Master;
use pimdsm_proto::{AggCfg, AggSystem, AmState, Level, MemSystem};

fn sys(n_p: usize, n_d: usize, p_am_lines: u64, d_lines: u64) -> AggSystem {
    AggSystem::new(AggCfg::paper(n_p, n_d, 8, 32, p_am_lines, d_lines))
}

#[test]
fn placement_interleaves_roles() {
    let s = sys(4, 2, 256, 1024);
    assert_eq!(s.p_nodes().len(), 4);
    assert_eq!(s.d_nodes().len(), 2);
    let mut all: Vec<usize> = s.p_nodes().iter().chain(s.d_nodes()).copied().collect();
    all.sort_unstable();
    assert_eq!(all, (0..6).collect::<Vec<_>>());
}

#[test]
fn first_read_grants_mastership_to_reader() {
    let mut s = sys(2, 1, 256, 1024);
    let p = s.p_nodes()[0];
    let d = s.d_nodes()[0];
    let a = s.read(p, 0x1000, 0);
    assert_eq!(a.level, Level::Hop2);
    assert_eq!(s.am_state(p, 64), Some(AmState::SharedMaster));
    let e = s.dnode(d).entry(64).expect("directory entry exists");
    assert_eq!(e.master, Master::Node(p));
    assert!(e.in_mem, "home keeps its copy after a first read");
    assert_eq!(s.dnode(d).shared_list_len(), 1);
    s.check_invariants();
}

#[test]
fn second_read_hits_local_memory() {
    let mut s = sys(2, 1, 256, 1024);
    let p = s.p_nodes()[0];
    s.read(p, 0x1000, 0);
    s.purge_caches(p, 0x1000);
    let a = s.read(p, 0x1000, 10_000);
    assert_eq!(a.level, Level::LocalMem, "master copy hits local memory");
}

#[test]
fn write_makes_dirty_and_frees_home_slot() {
    let mut s = sys(2, 1, 256, 1024);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    let d = s.d_nodes()[0];
    s.read(p0, 0x1000, 0);
    s.read(p1, 0x1000, 1_000);
    let free_before = s.dnode(d).free_slots();
    let a = s.write(p1, 0x1000, 10_000);
    assert_eq!(a.level, Level::Hop2);
    let e = s.dnode(d).entry(64).expect("entry");
    assert_eq!(e.owner, Some(p1));
    assert!(!e.in_mem, "owned line releases its home Data slot");
    assert_eq!(s.dnode(d).free_slots(), free_before + 1);
    assert_eq!(s.am_state(p0, 64), None, "sharer invalidated");
}

#[test]
fn read_of_dirty_line_is_three_hops() {
    let mut s = sys(3, 1, 256, 1024);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    s.write(p0, 0x1000, 0);
    let a = s.read(p1, 0x1000, 10_000);
    assert_eq!(a.level, Level::Hop3);
    assert_eq!(
        s.am_state(p0, 64),
        Some(AmState::SharedMaster),
        "previous owner keeps the master copy"
    );
}

#[test]
fn displaced_master_writes_back_home_no_injection() {
    let mut cfg = AggCfg::paper(2, 1, 8, 32, 4, 1024);
    cfg.p_am = CacheCfg::new(64, 1, 6); // one-line AM forces displacement
    cfg.l1 = CacheCfg::new(64, 1, 6);
    cfg.l2 = CacheCfg::new(64, 1, 6);
    let mut s = AggSystem::new(cfg);
    let p = s.p_nodes()[0];
    let d = s.d_nodes()[0];
    s.write(p, 0, 0);
    s.write(p, 64, 10_000); // displaces line 0 from the 1-line AM
    assert_eq!(s.stats().write_backs, 1, "AGG writes back to the home");
    assert_eq!(s.stats().injections, 0, "AGG never injects");
    let e = s.dnode(d).entry(0).expect("entry survives");
    assert_eq!(e.owner, None);
    assert_eq!(e.master, Master::Home);
    assert!(e.in_mem, "home re-absorbed the line");
}

#[test]
fn home_copy_reclaim_causes_three_hop_reads() {
    // D-node with only 2 data lines: the third mapped line must reclaim
    // an in-memory copy whose master lives outside.
    let mut cfg = AggCfg::paper(2, 1, 8, 32, 4096, 2);
    cfg.dnode.shared_list_min = 0;
    let mut s = AggSystem::new(cfg);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    s.read(p0, 0, 0);
    s.read(p0, 64, 100_000);
    s.read(p0, 128, 200_000);
    let d = s.d_nodes()[0];
    assert!(
        !s.dnode(d).entry(0).expect("entry").in_mem,
        "oldest home copy reclaimed"
    );
    let a = s.read(p1, 0, 10_000_000);
    assert_eq!(a.level, Level::Hop3, "data must come from the master");
    assert!(s.stats().master_fetches >= 1);
}

#[test]
fn pageout_when_nothing_reclaimable() {
    let mut cfg = AggCfg::paper(2, 1, 8, 32, 4096, 4);
    cfg.dnode.shared_list_min = 8;
    cfg.dnode.reuse_shared_list = false;
    cfg.dnode.pageout_batch = 2;
    cfg.dnode.lines_per_page = 64;
    let mut s = AggSystem::new(cfg);
    let p = s.p_nodes()[0];
    for i in 0..6u64 {
        s.read(p, i * 4096, i * 100_000);
    }
    assert!(s.total_page_outs() >= 1, "D-node paged out under pressure");
    assert!(s.stats().page_outs >= 1, "page-outs aggregated in stats");
}

#[test]
fn disk_fault_on_paged_out_line() {
    let mut cfg = AggCfg::paper(2, 1, 8, 32, 4096, 4);
    cfg.dnode.shared_list_min = 8;
    cfg.dnode.reuse_shared_list = false;
    cfg.dnode.pageout_batch = 2;
    let mut s = AggSystem::new(cfg);
    let p = s.p_nodes()[0];
    for i in 0..6u64 {
        s.read(p, i * 4096, i * 100_000);
    }
    let d = s.d_nodes()[0];
    let paged: Vec<u64> = s
        .dnode(d)
        .entries()
        .filter(|(_, e)| e.paged_out)
        .map(|(l, _)| l)
        .collect();
    assert!(!paged.is_empty(), "something was paged out");
    let addr = paged[0] << 6;
    let faults_before = s.stats().disk_faults;
    let p1 = s.p_nodes()[1];
    let a = s.read(p1, addr, 10_000_000);
    assert_eq!(s.stats().disk_faults, faults_before + 1);
    assert!(
        a.done_at - 10_000_000 >= s.cfg().lat.disk,
        "disk fault pays the disk latency"
    );
}

#[test]
fn convert_p_to_d_flushes_and_switches_role() {
    let mut s = sys(3, 1, 256, 4096);
    let p2 = s.p_nodes()[2];
    s.write(p2, 0x5000, 0);
    let (_, flushed) = s.convert_p_to_d(p2, 100_000);
    assert_eq!(flushed, 1, "the dirty line was flushed home");
    assert_eq!(s.p_nodes().len(), 2);
    assert_eq!(s.d_nodes().len(), 2);
    let home = s.fabric().pages.home(0x5000 >> 12).unwrap();
    let e = s.dnode(home).entry(0x5000 >> 6).expect("entry");
    assert_eq!(e.owner, None, "flushed line is clean at home");
    assert!(e.in_mem);
}

#[test]
fn convert_d_to_p_migrates_pages() {
    let mut s = sys(2, 2, 256, 4096);
    let p = s.p_nodes()[0];
    for i in 0..8u64 {
        s.read(p, i * 4096, i * 1000);
    }
    let (keep_d, victim_d) = (s.d_nodes()[0], s.d_nodes()[1]);
    let before = s.fabric().pages.pages_at(keep_d);
    let (_, moved, _) = s.convert_d_to_p(victim_d, 1_000_000);
    assert_eq!(s.d_nodes(), [keep_d]);
    assert_eq!(s.fabric().pages.pages_at(keep_d), before + moved);
    assert_eq!(s.fabric().pages.pages_at(victim_d), 0);
}

#[test]
fn offload_books_dnode_and_replies() {
    let mut s = sys(2, 1, 256, 4096);
    let p = s.p_nodes()[0];
    let d = s.d_nodes()[0];
    let t0 = s.offload(p, d, 16, 10_000, 64 * 1024, 256, 0);
    assert!(t0 >= 10_000);
    let t1 = s.offload(p, d, 16, 10_000, 64 * 1024, 256, 0);
    assert!(t1 > t0, "second request queues behind the first");
}

#[test]
fn census_matches_protocol_state() {
    let mut s = sys(3, 1, 4096, 4096);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    s.read(p0, 0, 0);
    s.write(p1, 0x1000, 0);
    s.write(p0, 0x2000, 0);
    let c = s.census();
    assert_eq!(c.dirty_in_p, 2);
    assert_eq!(c.shared_in_p, 1);
    assert_eq!(c.shared_with_home_copy, 1);
    assert_eq!(c.d_node_only, 0);
}
