//! Protocol-level tests of the CC-NUMA system (relocated from the old
//! `numa.rs` unit tests; same scenarios, driven through the public API).

use pimdsm_proto::{Level, MemSystem, NumaCfg, NumaSystem};

fn sys() -> NumaSystem {
    NumaSystem::new(NumaCfg::paper(4, 8, 32, 4096))
}

#[test]
fn first_read_is_local_after_first_touch() {
    let mut s = sys();
    let a = s.read(0, 0x1000, 0);
    assert_eq!(a.level, Level::LocalMem);
    // Round trip within a few cycles of Table 1 (37) plus probe/fill.
    assert!(a.done_at < 70, "local read took {}", a.done_at);
}

#[test]
fn cache_hits_after_fill() {
    let mut s = sys();
    s.read(0, 0x1000, 0);
    let a = s.read(0, 0x1000, 100);
    assert_eq!(a.level, Level::L1);
    assert_eq!(a.done_at, 103);
}

#[test]
fn remote_read_is_two_hops() {
    let mut s = sys();
    s.read(0, 0x1000, 0); // node 0 first-touches the page
    let a = s.read(1, 0x1000, 1000);
    assert_eq!(a.level, Level::Hop2);
    assert!(a.done_at - 1000 > 100, "remote read too fast");
}

#[test]
fn dirty_remote_read_is_three_hops() {
    let mut s = sys();
    s.read(0, 0x1000, 0); // home = node 0
    s.write(1, 0x1000, 100); // node 1 owns it dirty
    let a = s.read(2, 0x1000, 10_000);
    assert_eq!(a.level, Level::Hop3);
}

#[test]
fn read_after_dirty_remote_finds_clean_home() {
    let mut s = sys();
    s.read(0, 0x1000, 0);
    s.write(1, 0x1000, 100);
    s.read(2, 0x1000, 10_000); // forces sharing write-back to home 0
    let a = s.read(3, 0x1000, 100_000);
    assert_eq!(a.level, Level::Hop2, "home has a clean copy again");
}

#[test]
fn write_hit_dirty_is_cheap() {
    let mut s = sys();
    s.write(0, 0x1000, 0);
    let a = s.write(0, 0x1000, 500);
    assert_eq!(a.level, Level::L1);
    assert_eq!(a.done_at, 503);
}

#[test]
fn upgrade_invalidates_sharers() {
    let mut s = sys();
    s.read(0, 0x1000, 0);
    s.read(1, 0x1000, 1000);
    s.read(2, 0x1000, 2000);
    let before = s.stats().invalidations;
    s.write(1, 0x1000, 10_000);
    assert!(s.stats().invalidations >= before + 2, "0 and 2 invalidated");
    // Node 2's cached copy is gone: reading again is remote.
    let a = s.read(2, 0x1000, 100_000);
    assert_ne!(a.level, Level::L1);
    assert_ne!(a.level, Level::L2);
}

#[test]
fn local_write_to_uncached_line() {
    let mut s = sys();
    let a = s.write(0, 0x2000, 0);
    assert_eq!(a.level, Level::LocalMem);
}

#[test]
fn census_counts_states() {
    let mut s = sys();
    s.read(0, 0x0, 0); // shared
    s.write(1, 0x4000, 0); // dirty at 1 (page homed at 1)
    let c = s.census();
    assert_eq!(c.shared_in_p, 1);
    assert_eq!(c.dirty_in_p, 1);
}

#[test]
fn first_touch_spills_when_node_full() {
    // Tiny memory: 64 lines per node = 1 page of 64 lines.
    let mut cfg = NumaCfg::paper(2, 8, 32, 64);
    cfg.page_shift = 12;
    let mut s = NumaSystem::new(cfg);
    s.read(0, 0, 0); // page 0 -> node 0 (fills its 1-page capacity)
    s.read(0, 0x1000, 100); // page 1 must spill to node 1
    assert_eq!(s.fabric().pages.home(0), Some(0));
    assert_eq!(s.fabric().pages.home(1), Some(1));
}
