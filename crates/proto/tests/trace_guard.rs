//! Timing-identity guard: a tiny AGG run must produce this exact event
//! sequence (names, categories, timestamps, durations, args). Any change
//! to booking order or cycle arithmetic in the protocol walks shows up
//! here first — before it silently shifts a Figure 6 bar.

use pimdsm_obs::{TraceEvent, Tracer};
use pimdsm_proto::{AggCfg, AggSystem, MemSystem};

fn arg(e: &TraceEvent, key: &str) -> u64 {
    e.args
        .iter()
        .find(|(k, _)| *k == key)
        .unwrap_or_else(|| panic!("event {:?} missing arg {key}", e.name))
        .1
}

#[test]
fn tiny_run_produces_exact_event_sequence() {
    let mut s = AggSystem::new(AggCfg::paper(2, 1, 8, 32, 256, 1024));
    let tracer = Tracer::enabled();
    s.attach_tracer(tracer.clone());

    let (p0, p1) = (0, 2);
    s.read(p0, 0x1000, 0);
    s.read(p1, 0x1000, 1_000);
    s.write(p1, 0x1000, 2_000);

    type Expected = (
        u64,
        u64,
        &'static str,
        &'static str,
        u64,
        Option<u64>,
        &'static [(&'static str, u64)],
    );
    let events = tracer.events_sorted();
    let expect: &[Expected] = &[
        (
            0,
            0,
            "read.remote",
            "proto.read",
            0,
            Some(179),
            &[("line", 64), ("level", 3)],
        ),
        (0, 0, "miss", "am.miss", 12, None, &[("line", 64)]),
        (
            0,
            1,
            "Read",
            "proto.handler",
            49,
            Some(80),
            &[("invals", 0), ("queued", 0)],
        ),
        (
            0,
            1,
            "Read",
            "proto.handler",
            1049,
            Some(80),
            &[("invals", 0), ("queued", 0)],
        ),
        (
            0,
            1,
            "ReadEx",
            "proto.handler",
            2049,
            Some(90),
            &[("invals", 1), ("queued", 0)],
        ),
        (
            0,
            2,
            "read.remote",
            "proto.read",
            1000,
            Some(162),
            &[("line", 64), ("level", 3)],
        ),
        (0, 2, "miss", "am.miss", 1012, None, &[("line", 64)]),
        (
            0,
            2,
            "write.remote",
            "proto.write",
            2000,
            Some(195),
            &[("line", 64), ("level", 3)],
        ),
        (
            1,
            0,
            "xfer",
            "net.link",
            22,
            Some(8),
            &[("from", 0), ("to", 1), ("bytes", 16)],
        ),
        (
            1,
            0,
            "xfer",
            "net.link",
            2147,
            Some(8),
            &[("from", 0), ("to", 2), ("bytes", 16)],
        ),
        (
            1,
            4,
            "xfer",
            "net.link",
            1099,
            Some(40),
            &[("from", 1), ("to", 2), ("bytes", 80)],
        ),
        (
            1,
            4,
            "xfer",
            "net.link",
            2156,
            Some(8),
            &[("from", 0), ("to", 2), ("bytes", 16)],
        ),
        (
            1,
            4,
            "xfer",
            "net.link",
            2164,
            Some(8),
            &[("from", 1), ("to", 2), ("bytes", 16)],
        ),
        (
            1,
            5,
            "xfer",
            "net.link",
            116,
            Some(40),
            &[("from", 1), ("to", 0), ("bytes", 80)],
        ),
        (
            1,
            5,
            "xfer",
            "net.link",
            2104,
            Some(8),
            &[("from", 1), ("to", 0), ("bytes", 16)],
        ),
        (
            1,
            9,
            "xfer",
            "net.link",
            1022,
            Some(8),
            &[("from", 2), ("to", 1), ("bytes", 16)],
        ),
        (
            1,
            9,
            "xfer",
            "net.link",
            2022,
            Some(8),
            &[("from", 2), ("to", 1), ("bytes", 16)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            49,
            None,
            &[("from", 0), ("to", 1), ("bytes", 16)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            175,
            None,
            &[("from", 1), ("to", 0), ("bytes", 80)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            1049,
            None,
            &[("from", 2), ("to", 1), ("bytes", 16)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            1158,
            None,
            &[("from", 1), ("to", 2), ("bytes", 80)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            2049,
            None,
            &[("from", 2), ("to", 1), ("bytes", 16)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            2131,
            None,
            &[("from", 1), ("to", 0), ("bytes", 16)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            2183,
            None,
            &[("from", 0), ("to", 2), ("bytes", 16)],
        ),
        (
            1,
            12,
            "deliver",
            "net.msg",
            2191,
            None,
            &[("from", 1), ("to", 2), ("bytes", 16)],
        ),
    ];

    assert_eq!(
        events.len(),
        expect.len(),
        "event count changed:\n{:#?}",
        events
            .iter()
            .map(|e| (e.pid, e.tid, e.name, e.cat, e.ts, e.dur))
            .collect::<Vec<_>>()
    );
    for (i, (e, x)) in events.iter().zip(expect).enumerate() {
        let (pid, tid, name, cat, ts, dur, args) = *x;
        assert_eq!(
            (e.pid as u64, e.tid as u64, e.name, e.cat, e.ts, e.dur),
            (pid, tid, name, cat, ts, dur),
            "event {i} mismatch: got {e:?}"
        );
        for &(k, v) in args {
            assert_eq!(arg(e, k), v, "event {i} ({name}) arg {k}");
        }
    }
}
