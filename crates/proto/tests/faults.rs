//! Protocol-level fault-injection tests: node kills, rejoins, retry
//! waits and the coherence oracle across all three architectures.
//!
//! The acceptance bar for the fault subsystem is that the full-sweep
//! oracle holds after a kill in every architecture, including the two
//! hard cases: the victim owns dirty lines, and the victim is home for
//! pages other nodes are using.

use pimdsm_faults::{Durability, RecoveryStats};
use pimdsm_proto::dnode::Master;
use pimdsm_proto::{
    AggCfg, AggSystem, AmState, ComaCfg, ComaSystem, Level, MemSystem, NumaCfg, NumaSystem,
};

fn agg(n_p: usize, n_d: usize) -> AggSystem {
    AggSystem::new(AggCfg::paper(n_p, n_d, 8, 32, 256, 1024))
}

fn coma() -> ComaSystem {
    ComaSystem::new(ComaCfg::paper(4, 8, 32, 4096))
}

fn numa() -> NumaSystem {
    NumaSystem::new(NumaCfg::paper(4, 8, 32, 4096))
}

// ---------------------------------------------------------------- AGG --

#[test]
fn agg_kill_p_while_it_owns_dirty_lines() {
    let mut s = agg(3, 2);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    s.write(p0, 0x1000, 0); // p0 dirty owner of line 64
    s.write(p0, 0x2000, 1_000); // p0 dirty owner of line 128
    s.read(p1, 0x3000, 2_000); // p1 master of line 192
    s.read(p0, 0x3000, 3_000); // p0 a plain sharer of line 192

    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(p0, 10_000, Durability::None, &mut rs);
    assert!(done > 10_000, "recovery takes time");
    assert!(
        rs.lines_lost >= 2,
        "both dirty lines die with the owner, got {}",
        rs.lines_lost
    );
    assert!(!s.compute_nodes().contains(&p0));

    // Reconfiguration under failure: a D-node is drafted to restore
    // compute capacity, so the machine is back to 3 P-nodes.
    assert_eq!(s.p_nodes().len(), 3);
    assert_eq!(s.d_nodes().len(), 1);

    // The dirty entries were written off to disk-resident state.
    let h = s.fabric().pages.home(1).expect("page 1 mapped");
    let e = s.dnode(h).entry(64).expect("entry survives the kill");
    assert_eq!(e.owner, None);
    assert!(e.paged_out, "no durable copy without replication");

    // The shared entry just dropped the victim's sharer bit.
    let h3 = s.fabric().pages.home(3).expect("page 3 mapped");
    let e3 = s.dnode(h3).entry(192).expect("entry");
    assert!(!e3.sharers.contains(p0));
    assert_eq!(e3.master, Master::Node(p1));

    s.check_coherence();
    s.check_invariants();
}

#[test]
fn agg_kill_p_reelects_master_onto_surviving_sharer() {
    let mut s = agg(3, 2);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    s.read(p0, 0x1000, 0); // p0 master
    s.read(p1, 0x1000, 1_000); // p1 sharer

    let mut rs = RecoveryStats::default();
    s.apply_kill(p0, 10_000, Durability::None, &mut rs);

    let h = s.fabric().pages.home(1).expect("page 1 mapped");
    let e = s.dnode(h).entry(64).expect("entry");
    assert_eq!(e.master, Master::Node(p1), "mastership re-elected");
    assert_eq!(s.am_state(p1, 64), Some(AmState::SharedMaster));
    assert!(rs.lines_recalled >= 1);
    s.check_coherence();
    s.check_invariants();
}

#[test]
fn agg_kill_d_while_it_is_home_for_remote_pages() {
    let mut s = agg(2, 2);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    let victim = s.d_nodes()[0];
    s.write(p0, 0x1000, 0); // page 1, homed at the other D
    s.write(p0, 0x2000, 1_000); // page 2, homed at the victim, dirty at p0
    s.read(p1, 0x3000, 2_000); // page 3, other D
    s.read(p0, 0x4000, 3_000); // page 4, victim home keeps a copy

    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(victim, 10_000, Durability::None, &mut rs);
    assert_eq!(rs.pages_rehomed, 2, "pages 2 and 4 re-homed");
    assert!(!s.d_nodes().contains(&victim));
    let survivor = s.d_nodes()[0];
    assert_eq!(s.fabric().pages.home(2), Some(survivor));
    assert_eq!(s.fabric().pages.home(4), Some(survivor));

    // The dirty line at a live P-node survives with ownership intact.
    let e = s.dnode(survivor).entry(128).expect("entry moved home");
    assert_eq!(e.owner, Some(p0));
    // The victim's in-memory home copy of page 4 died; its master is
    // still the reader.
    let e4 = s.dnode(survivor).entry(256).expect("entry moved home");
    assert!(!e4.in_mem, "home copy died with the victim");
    assert_eq!(e4.master, Master::Node(p0));
    assert!(rs.lines_recalled >= 2);

    s.check_coherence();
    s.check_invariants();

    // The re-homed dirty line is still reachable after recovery.
    let a = s.read(p1, 0x2000, done + 1);
    assert_eq!(a.level, Level::Hop3, "data still comes from the owner");
    s.check_coherence();
}

#[test]
fn agg_replication_preserves_dirty_lines() {
    let mut s = agg(3, 2);
    let p0 = s.p_nodes()[0];
    s.write(p0, 0x1000, 0);

    let mut rs = RecoveryStats::default();
    s.apply_kill(p0, 10_000, Durability::Replication, &mut rs);
    assert_eq!(rs.lines_lost, 0, "replication loses nothing");

    let h = s.fabric().pages.home(1).expect("page 1 mapped");
    let e = s.dnode(h).entry(64).expect("entry");
    assert_eq!(e.owner, None);
    s.check_coherence();
    s.check_invariants();

    // The restored line is still readable by a survivor.
    let p = s.p_nodes()[0];
    let a = s.read(p, 0x1000, 100_000);
    assert!(a.done_at > 100_000);
    s.check_coherence();
}

#[test]
fn agg_transaction_racing_recovery_pays_retry_wait() {
    let mut s = agg(3, 2);
    let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
    s.write(p0, 0x1000, 0);

    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(p0, 10_000, Durability::None, &mut rs);
    assert!(done > 10_001);
    assert!(!s.fabric().recovering.is_empty());

    let a = s.read(p1, 0x1000, 10_001);
    assert!(s.fabric().retries >= 1, "racing read probed the page");
    assert!(s.fabric().retry_wait_cycles > 0);
    assert!(a.done_at >= done, "read completes only after recovery");
    s.check_coherence();
}

#[test]
fn agg_rejoin_restores_compute_binding() {
    let mut s = agg(3, 2);
    let p0 = s.p_nodes()[0];
    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(p0, 10_000, Durability::None, &mut rs);
    assert!(!s.compute_nodes().contains(&p0));

    let up = s.apply_rejoin(p0, done + 1_000);
    assert!(up > done + 1_000, "cold start takes the disk latency");
    assert!(s.compute_nodes().contains(&p0));

    // The returned node issues transactions again, from a cold cache.
    let a = s.read(p0, 0x5000, up);
    assert!(a.done_at > up);
    s.check_coherence();
    s.check_invariants();
}

#[test]
fn agg_kill_recovery_is_deterministic() {
    fn fingerprint() -> (u64, RecoveryStats) {
        let mut s = agg(3, 2);
        let (p0, p1) = (s.p_nodes()[0], s.p_nodes()[1]);
        s.write(p0, 0x1000, 0);
        s.read(p1, 0x2000, 1_000);
        let mut rs = RecoveryStats::default();
        let durability = Durability::Checkpoint { interval: 4_000 };
        let done = s.apply_kill(p0, 10_000, durability, &mut rs);
        (done, rs)
    }
    assert_eq!(fingerprint(), fingerprint());
}

// --------------------------------------------------------------- COMA --

#[test]
fn coma_kill_of_dirty_owner_scrubs_to_disk() {
    let mut s = coma();
    s.write(0, 0x1000, 0); // node 0 dirty owner and first-touch home

    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(0, 10_000, Durability::None, &mut rs);
    let e = s.dir_entry(64).expect("entry");
    assert_eq!(e.owner, None);
    assert!(e.on_disk, "only disk-resident state survives");
    assert_eq!(rs.lines_lost, 1);
    assert!(rs.pages_rehomed >= 1, "victim was the page's home");
    assert_ne!(s.fabric().pages.home(1), Some(0));
    s.check_coherence();

    // A survivor still reaches the line through the disk-fault path.
    let a = s.read(1, 0x1000, done + 1);
    assert!(a.done_at > done);
    s.check_coherence();
}

#[test]
fn coma_kill_reelects_master_onto_surviving_sharer() {
    let mut s = coma();
    s.read(0, 0x1000, 0); // node 0 master
    s.read(1, 0x1000, 1_000); // node 1 sharer

    let mut rs = RecoveryStats::default();
    s.apply_kill(0, 10_000, Durability::None, &mut rs);
    let e = s.dir_entry(64).expect("entry");
    assert_eq!(e.master, Some(1), "mastership re-elected");
    assert_eq!(s.am_state(1, 64), Some(AmState::SharedMaster));
    assert!(!e.sharers.contains(0));
    assert!(rs.lines_recalled >= 1);
    s.check_coherence();
}

#[test]
fn coma_replication_recalls_instead_of_losing() {
    let mut s = coma();
    s.write(0, 0x1000, 0);
    let mut rs = RecoveryStats::default();
    s.apply_kill(0, 10_000, Durability::Replication, &mut rs);
    assert_eq!(rs.lines_lost, 0);
    assert!(rs.lines_recalled >= 1);
    s.check_coherence();
}

#[test]
fn coma_transaction_racing_recovery_pays_retry_wait() {
    let mut s = coma();
    s.write(0, 0x1000, 0);
    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(0, 10_000, Durability::None, &mut rs);
    assert!(done > 10_001);

    s.read(1, 0x1000, 10_001);
    assert!(s.fabric().retries >= 1);
    assert!(s.fabric().retry_wait_cycles > 0);
    s.check_coherence();
}

#[test]
fn coma_rejoin_restores_compute_binding() {
    let mut s = coma();
    s.read(0, 0x1000, 0);
    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(0, 10_000, Durability::None, &mut rs);
    assert_eq!(s.compute_nodes(), vec![1, 2, 3]);

    let up = s.apply_rejoin(0, done + 1_000);
    assert!(up > done + 1_000);
    assert_eq!(s.compute_nodes(), vec![0, 1, 2, 3]);
    let a = s.read(0, 0x1000, up);
    assert!(a.done_at > up);
    s.check_coherence();
}

// --------------------------------------------------------------- NUMA --

#[test]
fn numa_kill_clears_dirty_ownership_and_rehomes_pages() {
    let mut s = numa();
    s.read(0, 0x1000, 0); // node 0 first-touch home of page 1
    s.write(0, 0x2000, 100); // dirty at the victim, homed at the victim
    s.write(1, 0x1000, 200); // dirty at a survivor, homed at the victim

    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(0, 10_000, Durability::None, &mut rs);

    // A survivor's dirty copy keeps its ownership across the re-home.
    let e64 = s.dir_entry(64).expect("entry");
    assert_eq!(e64.owner, Some(1));
    // The victim's own dirty line is scrubbed and written off.
    let e128 = s.dir_entry(128).expect("entry");
    assert_eq!(e128.owner, None);
    assert!(rs.lines_lost >= 1);
    assert_eq!(rs.pages_rehomed, 2);
    assert_ne!(s.fabric().pages.home(1), Some(0));
    assert_ne!(s.fabric().pages.home(2), Some(0));
    s.check_coherence();

    // Both lines stay reachable: one from the new home's memory, one
    // three-hop from the surviving owner.
    let a = s.read(2, 0x2000, done + 1);
    assert!(a.done_at > done);
    let b = s.read(3, 0x1000, done + 10_000);
    assert_eq!(b.level, Level::Hop3, "owner still serves the dirty line");
    s.check_coherence();
}

#[test]
fn numa_replication_recalls_instead_of_losing() {
    let mut s = numa();
    s.write(0, 0x1000, 0);
    let mut rs = RecoveryStats::default();
    s.apply_kill(0, 10_000, Durability::Replication, &mut rs);
    assert_eq!(rs.lines_lost, 0);
    assert!(rs.lines_recalled >= 1);
    s.check_coherence();
}

#[test]
fn numa_transaction_racing_recovery_pays_retry_wait() {
    let mut s = numa();
    s.write(0, 0x2000, 0);
    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(0, 10_000, Durability::None, &mut rs);
    assert!(done > 10_001);

    s.read(2, 0x2000, 10_001);
    assert!(s.fabric().retries >= 1);
    assert!(s.fabric().retry_wait_cycles > 0);
    s.check_coherence();
}

#[test]
fn numa_rejoin_restores_compute_binding() {
    let mut s = numa();
    s.read(0, 0x1000, 0);
    let mut rs = RecoveryStats::default();
    let done = s.apply_kill(0, 10_000, Durability::None, &mut rs);
    assert_eq!(s.compute_nodes(), vec![1, 2, 3]);

    let up = s.apply_rejoin(0, done + 1_000);
    assert_eq!(s.compute_nodes(), vec![0, 1, 2, 3]);
    let a = s.read(0, 0x3000, up);
    assert!(a.done_at > up);
    s.check_coherence();
}

#[test]
fn recovery_histogram_is_populated() {
    let mut s = numa();
    s.read(0, 0x1000, 0);
    s.read(0, 0x2000, 100);
    let mut rs = RecoveryStats::default();
    s.apply_kill(0, 10_000, Durability::None, &mut rs);
    assert!(rs.recovery.count() >= 2, "one recovery sample per page");
    assert!(rs.recovery_p99() >= rs.recovery_p50());
}
