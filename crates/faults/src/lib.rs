//! # pimdsm-faults — deterministic fault injection
//!
//! Declarative fault schedules for the PIM-DSM simulator. A [`FaultPlan`]
//! is plain data — *kill node 3 at cycle 20 000, rejoin it at barrier 2,
//! degrade the interconnect for 50 000 cycles* — that the machine driver
//! replays against the simulated cycle clock and barrier sequence. Because
//! triggers are expressed in simulated time only, a plan is bit-deterministic
//! by construction: the same plan over the same workload produces the same
//! event sequence, reports and traces, byte for byte.
//!
//! The crate deliberately knows nothing about the protocols. It supplies:
//!
//! * the fault vocabulary ([`FaultKind`], [`FaultTrigger`], [`FaultEvent`]),
//! * the per-run policy knobs ([`Durability`], [`RetryCfg`]),
//! * the runtime queue the driver pops ([`FaultSchedule`]), and
//! * the accounting sink every recovery path feeds ([`RecoveryStats`]),
//!   including a recovery-latency [`Histogram`] for p50/p99 reporting.
//!
//! The protocol crates implement what a fault *means* (re-homing pages,
//! re-electing masters, scrubbing sharer sets); the machine driver decides
//! *when* to apply one. This split keeps the fault model reusable across
//! AGG, COMA and NUMA.

#![warn(missing_docs)]

use pimdsm_engine::{Cycle, Histogram};
use pimdsm_obs::{JsonValue, ToJson};

/// Node identifier, matching the protocol crates' convention.
pub type NodeId = usize;

/// When a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// Fire at the first event-loop step at or after this simulated cycle.
    AtCycle(Cycle),
    /// Fire when the machine releases this global barrier (0-indexed in
    /// arrival order, matching `ReconfigPlan`'s barrier numbering).
    AtBarrier(u32),
}

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node dies instantly: caches, attraction memory and any
    /// directory/home responsibility it held are lost. Surviving nodes
    /// re-home its pages and re-elect masters; what data survives depends
    /// on the run's [`Durability`] policy.
    Kill {
        /// The victim node.
        node: NodeId,
    },
    /// A previously killed node comes back cold (empty caches, no pages
    /// homed at it) and is eligible for compute binding again.
    Rejoin {
        /// The returning node.
        node: NodeId,
    },
    /// Uniform interconnect degradation: every remote memory operation
    /// completing inside the window pays `extra` additional cycles.
    DegradeLink {
        /// Extra cycles per remote operation while degraded.
        extra: Cycle,
        /// Window length in cycles, starting at the trigger.
        for_cycles: Cycle,
    },
    /// The protocol handler (directory controller) at `node` stalls,
    /// booking `extra` cycles of occupancy before serving further
    /// transactions.
    HandlerStall {
        /// The stalled controller's node.
        node: NodeId,
        /// Cycles of controller occupancy to book.
        extra: Cycle,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: FaultTrigger,
    /// What fires.
    pub kind: FaultKind,
}

/// What survives a node kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Nothing: dirty data on the victim is lost and threads restart the
    /// current phase's work (lost work = cycles since the run began).
    #[default]
    None,
    /// Epoch checkpointing: work is durable up to the last checkpoint
    /// boundary, so lost work is only the cycles since then.
    Checkpoint {
        /// Checkpoint interval in cycles.
        interval: Cycle,
    },
    /// Page replication: every home/master copy has a replica elsewhere,
    /// so no line data is lost (`lines_lost` stays 0) and no work is
    /// discarded; recovery still pays the re-homing traffic.
    Replication,
}

impl Durability {
    /// Work discarded by a kill at `now` under this policy, in cycles.
    pub fn lost_work(&self, now: Cycle) -> Cycle {
        match *self {
            Durability::None => now,
            Durability::Checkpoint { interval } => {
                if interval == 0 {
                    0
                } else {
                    now % interval
                }
            }
            Durability::Replication => 0,
        }
    }

    /// Stable label used in canonical point strings and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Durability::None => "none",
            Durability::Checkpoint { .. } => "ckpt",
            Durability::Replication => "repl",
        }
    }
}

/// Bounded timeout/backoff policy for transactions that hit a page whose
/// home is still being reconstructed after a kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryCfg {
    /// Upper bound on the total wait a single transaction will spend
    /// retrying, in cycles.
    pub timeout: Cycle,
    /// Initial backoff between retry probes; doubles each attempt.
    pub backoff: Cycle,
    /// Maximum retry probes per transaction.
    pub max_attempts: u32,
}

impl Default for RetryCfg {
    fn default() -> Self {
        RetryCfg {
            timeout: 5_000,
            backoff: 200,
            max_attempts: 8,
        }
    }
}

impl RetryCfg {
    /// Wait this transaction spends at `now` for a resource that recovers
    /// at `recovered_at`, together with the number of retry probes issued.
    ///
    /// Probes back off exponentially from [`backoff`](RetryCfg::backoff);
    /// the wait is capped by both the recovery completion and
    /// [`timeout`](RetryCfg::timeout). Purely arithmetic — deterministic.
    pub fn wait_for(&self, now: Cycle, recovered_at: Cycle) -> (Cycle, u32) {
        if recovered_at <= now {
            return (0, 0);
        }
        let wait = (recovered_at - now).min(self.timeout);
        let mut probes = 0u32;
        let mut t = 0;
        let mut step = self.backoff.max(1);
        while t < wait && probes < self.max_attempts {
            probes += 1;
            t += step;
            step = step.saturating_mul(2);
        }
        (wait, probes)
    }
}

/// A complete, declarative fault schedule for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled faults, applied in the order listed when several
    /// share a trigger point.
    pub events: Vec<FaultEvent>,
    /// What survives a kill.
    pub durability: Durability,
    /// Retry policy for transactions racing a recovery.
    pub retry: Option<RetryCfg>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a kill of `node` at `cycle`.
    pub fn kill_at(mut self, node: NodeId, cycle: Cycle) -> Self {
        self.events.push(FaultEvent {
            at: FaultTrigger::AtCycle(cycle),
            kind: FaultKind::Kill { node },
        });
        self
    }

    /// Adds a kill of `node` when barrier `id` releases.
    pub fn kill_at_barrier(mut self, node: NodeId, id: u32) -> Self {
        self.events.push(FaultEvent {
            at: FaultTrigger::AtBarrier(id),
            kind: FaultKind::Kill { node },
        });
        self
    }

    /// Adds a rejoin of `node` at `cycle`.
    pub fn rejoin_at(mut self, node: NodeId, cycle: Cycle) -> Self {
        self.events.push(FaultEvent {
            at: FaultTrigger::AtCycle(cycle),
            kind: FaultKind::Rejoin { node },
        });
        self
    }

    /// Adds an interconnect degradation window starting at `cycle`.
    pub fn degrade_at(mut self, cycle: Cycle, extra: Cycle, for_cycles: Cycle) -> Self {
        self.events.push(FaultEvent {
            at: FaultTrigger::AtCycle(cycle),
            kind: FaultKind::DegradeLink { extra, for_cycles },
        });
        self
    }

    /// Adds a handler stall at `node` at `cycle`.
    pub fn stall_at(mut self, node: NodeId, cycle: Cycle, extra: Cycle) -> Self {
        self.events.push(FaultEvent {
            at: FaultTrigger::AtCycle(cycle),
            kind: FaultKind::HandlerStall { node, extra },
        });
        self
    }

    /// Sets the durability policy.
    pub fn with_durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, r: RetryCfg) -> Self {
        self.retry = Some(r);
        self
    }
}

/// Runtime queue over a [`FaultPlan`]: the driver polls it from the event
/// loop (cycle triggers) and the barrier release path (barrier triggers).
///
/// Cycle-triggered events are stably sorted by cycle, preserving plan
/// order among ties, so the pop sequence is a pure function of the plan.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    by_cycle: Vec<(Cycle, FaultKind)>,
    next: usize,
    by_barrier: Vec<(u32, FaultKind)>,
}

impl FaultSchedule {
    /// Builds the runtime queue from a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut by_cycle: Vec<(Cycle, FaultKind)> = Vec::new();
        let mut by_barrier: Vec<(u32, FaultKind)> = Vec::new();
        for e in &plan.events {
            match e.at {
                FaultTrigger::AtCycle(c) => by_cycle.push((c, e.kind)),
                FaultTrigger::AtBarrier(b) => by_barrier.push((b, e.kind)),
            }
        }
        by_cycle.sort_by_key(|&(c, _)| c);
        FaultSchedule {
            by_cycle,
            next: 0,
            by_barrier,
        }
    }

    /// Earliest still-pending cycle trigger, if any.
    pub fn next_cycle(&self) -> Option<Cycle> {
        self.by_cycle.get(self.next).map(|&(c, _)| c)
    }

    /// Pops every cycle-triggered event due at or before `now`, in order.
    pub fn due_at_cycle(&mut self, now: Cycle) -> Vec<FaultKind> {
        let mut out = Vec::new();
        while let Some(&(c, kind)) = self.by_cycle.get(self.next) {
            if c > now {
                break;
            }
            out.push(kind);
            self.next += 1;
        }
        out
    }

    /// Pops every event bound to barrier `id`, in plan order.
    pub fn due_at_barrier(&mut self, id: u32) -> Vec<FaultKind> {
        let mut out = Vec::new();
        self.by_barrier.retain(|&(b, kind)| {
            if b == id {
                out.push(kind);
                false
            } else {
                true
            }
        });
        out
    }

    /// Number of events not yet popped.
    pub fn pending(&self) -> usize {
        (self.by_cycle.len() - self.next) + self.by_barrier.len()
    }
}

/// Accounting for everything fault injection did to a run.
///
/// The machine driver owns one of these per run; the protocol recovery
/// paths and the fabric's retry path feed it. All counters are integers in
/// simulated cycles or event counts, so reports carrying them render
/// identically across runs and job counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Nodes killed.
    pub kills: u64,
    /// Nodes rejoined.
    pub rejoins: u64,
    /// Pages whose home moved off a dead node.
    pub pages_rehomed: u64,
    /// Lines whose master/ownership was re-elected onto a survivor.
    pub lines_recalled: u64,
    /// Lines whose only up-to-date copy died with the victim.
    pub lines_lost: u64,
    /// Work discarded by kills under the run's durability policy, cycles.
    pub lost_work_cycles: u64,
    /// Retry probes issued against recovering pages.
    pub retries: u64,
    /// Total cycles transactions spent waiting on recovering pages.
    pub retry_wait_cycles: u64,
    /// Cycles of extra latency paid inside link-degradation windows.
    pub degraded_cycles: u64,
    /// Cycles of controller occupancy booked by handler stalls.
    pub stall_cycles: u64,
    /// Per-page recovery latency (cycles from kill to page usable again).
    pub recovery: Histogram,
}

impl RecoveryStats {
    /// Median per-page recovery latency, rounded to whole cycles.
    pub fn recovery_p50(&self) -> u64 {
        self.recovery.percentile(50.0).round() as u64
    }

    /// 99th-percentile per-page recovery latency, rounded to whole cycles.
    pub fn recovery_p99(&self) -> u64 {
        self.recovery.percentile(99.0).round() as u64
    }

    /// Reconstructs the statistics from the JSON produced by
    /// [`ToJson::to_json`] — the inverse used by `pimdsm-lab`'s
    /// content-addressed result cache.
    pub fn from_json(v: &JsonValue) -> Result<RecoveryStats, String> {
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing {key}"))
        };
        let h = v
            .get("recovery")
            .ok_or_else(|| "missing recovery".to_string())?;
        let hfield = |key: &str| -> Result<u64, String> {
            h.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing recovery.{key}"))
        };
        let arr = h
            .get("buckets")
            .and_then(|x| x.as_arr())
            .ok_or_else(|| "missing recovery.buckets".to_string())?;
        if arr.len() != 64 {
            return Err(format!("recovery.buckets has {} entries", arr.len()));
        }
        let mut buckets = [0u64; 64];
        for (slot, x) in buckets.iter_mut().zip(arr) {
            *slot = x
                .as_u64()
                .ok_or_else(|| "non-integer recovery bucket".to_string())?;
        }
        Ok(RecoveryStats {
            kills: field("kills")?,
            rejoins: field("rejoins")?,
            pages_rehomed: field("pages_rehomed")?,
            lines_recalled: field("lines_recalled")?,
            lines_lost: field("lines_lost")?,
            lost_work_cycles: field("lost_work_cycles")?,
            retries: field("retries")?,
            retry_wait_cycles: field("retry_wait_cycles")?,
            degraded_cycles: field("degraded_cycles")?,
            stall_cycles: field("stall_cycles")?,
            recovery: Histogram::from_raw(
                buckets,
                hfield("count")?,
                hfield("sum")?,
                hfield("max")?,
            ),
        })
    }
}

impl ToJson for RecoveryStats {
    fn to_json(&self) -> JsonValue {
        let buckets = JsonValue::Arr(
            self.recovery
                .buckets()
                .iter()
                .map(|&n| JsonValue::u64(n))
                .collect(),
        );
        JsonValue::obj([
            ("kills", JsonValue::u64(self.kills)),
            ("rejoins", JsonValue::u64(self.rejoins)),
            ("pages_rehomed", JsonValue::u64(self.pages_rehomed)),
            ("lines_recalled", JsonValue::u64(self.lines_recalled)),
            ("lines_lost", JsonValue::u64(self.lines_lost)),
            ("lost_work_cycles", JsonValue::u64(self.lost_work_cycles)),
            ("retries", JsonValue::u64(self.retries)),
            ("retry_wait_cycles", JsonValue::u64(self.retry_wait_cycles)),
            ("degraded_cycles", JsonValue::u64(self.degraded_cycles)),
            ("stall_cycles", JsonValue::u64(self.stall_cycles)),
            (
                "recovery",
                JsonValue::obj([
                    ("count", JsonValue::u64(self.recovery.count())),
                    ("sum", JsonValue::u64(self.recovery.sum())),
                    ("max", JsonValue::u64(self.recovery.max())),
                    ("buckets", buckets),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_pops_cycle_events_in_order() {
        let plan = FaultPlan::new()
            .rejoin_at(1, 500)
            .kill_at(1, 100)
            .stall_at(0, 100, 40);
        let mut s = FaultSchedule::new(&plan);
        assert_eq!(s.pending(), 3);
        assert_eq!(s.next_cycle(), Some(100));
        assert_eq!(s.due_at_cycle(99), vec![]);
        // Ties at cycle 100 keep plan order: kill before stall.
        assert_eq!(
            s.due_at_cycle(100),
            vec![
                FaultKind::Kill { node: 1 },
                FaultKind::HandlerStall { node: 0, extra: 40 }
            ]
        );
        assert_eq!(s.due_at_cycle(10_000), vec![FaultKind::Rejoin { node: 1 }]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn schedule_pops_barrier_events_once() {
        let plan = FaultPlan::new().kill_at_barrier(2, 1);
        let mut s = FaultSchedule::new(&plan);
        assert_eq!(s.due_at_barrier(0), vec![]);
        assert_eq!(s.due_at_barrier(1), vec![FaultKind::Kill { node: 2 }]);
        assert_eq!(s.due_at_barrier(1), vec![]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn durability_lost_work() {
        assert_eq!(Durability::None.lost_work(12_345), 12_345);
        assert_eq!(
            Durability::Checkpoint { interval: 1000 }.lost_work(12_345),
            345
        );
        assert_eq!(Durability::Checkpoint { interval: 0 }.lost_work(12_345), 0);
        assert_eq!(Durability::Replication.lost_work(12_345), 0);
    }

    #[test]
    fn retry_wait_is_bounded_and_deterministic() {
        let cfg = RetryCfg {
            timeout: 1_000,
            backoff: 100,
            max_attempts: 3,
        };
        assert_eq!(cfg.wait_for(500, 400), (0, 0));
        // Recovery 250 cycles out: probes at +100, +300 cover it.
        assert_eq!(cfg.wait_for(0, 250), (250, 2));
        // Recovery far out: wait capped by timeout, probes by max_attempts.
        assert_eq!(cfg.wait_for(0, 50_000), (1_000, 3));
        // Determinism: same inputs, same answer.
        assert_eq!(cfg.wait_for(0, 250), cfg.wait_for(0, 250));
    }

    #[test]
    fn recovery_stats_json_round_trips() {
        let mut s = RecoveryStats {
            kills: 1,
            rejoins: 1,
            pages_rehomed: 42,
            lines_recalled: 17,
            lines_lost: 3,
            lost_work_cycles: 9_999,
            retries: 12,
            retry_wait_cycles: 2_400,
            degraded_cycles: 512,
            stall_cycles: 64,
            recovery: Histogram::new(),
        };
        for v in [100u64, 250, 250, 8_000] {
            s.recovery.record(v);
        }
        let j = s.to_json();
        let back = RecoveryStats::from_json(&j).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json().render(), j.render());
        assert!(back.recovery_p50() >= 100);
        assert!(back.recovery_p99() <= s.recovery.max());
    }

    #[test]
    fn recovery_stats_from_json_reports_missing_fields() {
        let j = JsonValue::obj([("kills", JsonValue::u64(1))]);
        let err = RecoveryStats::from_json(&j).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
