//! The `Copy` parameter block the lab embeds in cache-keyed point specs.

use pimdsm_workloads::{Scale, Workload};

use crate::graph::{Bfs, PageRank};
use crate::kv::KvStore;
use crate::stream::Stream;

/// Full-scale key-space size of the KV store (scaled by `size_div`).
const KV_KEYS_FULL: u64 = 1 << 20;
/// Full-scale total KV requests across all threads (scaled by
/// `size_div * iter_div` — the request stream shrinks with the keyspace
/// so cache-warming behaviour stays comparable across scales).
const KV_REQS_FULL: u64 = 2_000_000;
/// Per-thread open-loop inter-arrival period, cycles. Sized between the
/// hardware architectures' closed-loop service times and AGG's: NUMA and
/// COMA absorb this arrival rate with little queueing, AGG saturates —
/// the open-loop point exists to expose exactly that difference.
const KV_OPEN_PERIOD: u64 = 2_000;
/// Full-scale BFS vertex count (scaled by `size_div`).
const BFS_VERTS_FULL: u64 = 1 << 19;
/// Full-scale total BFS expansions across all threads (scaled by
/// `size_div * iter_div`, like the KV request stream).
const BFS_EXPANSIONS_FULL: u64 = 500_000;
/// Full-scale PageRank vertex count (scaled by `size_div`).
const PR_VERTS_FULL: u64 = 1 << 16;
/// Full-scale PageRank sweep count (scaled by `iter_div`).
const PR_ITERS_FULL: u64 = 8;
/// Full-scale stream table bytes (scaled by `size_div * iter_div` — a
/// streaming pass touches every byte exactly once, so the table size is
/// also the work count).
const STREAM_TABLE_FULL: u64 = 64 << 20;

/// One service workload configuration. Integer-only knobs (θ in
/// milli-units) so the lab's canonical cache-key strings never format a
/// float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcSpec {
    /// Zipf key-value serving.
    Kv {
        /// Client threads.
        threads: usize,
        /// Zipf exponent θ in thousandths (900 = 0.9).
        theta_milli: u32,
        /// Percentage of requests that are puts.
        write_pct: u32,
        /// Open-loop arrival schedule instead of closed-loop clients.
        open_loop: bool,
    },
    /// Pointer-chasing breadth-first search.
    Bfs {
        /// Worker threads.
        threads: usize,
    },
    /// Barrier-synchronized PageRank sweeps.
    PageRank {
        /// Worker threads.
        threads: usize,
    },
    /// Streaming scan/filter/join.
    Stream {
        /// Worker threads.
        threads: usize,
        /// Run scans in D-node compute-in-memory handlers.
        offload: bool,
    },
}

impl SvcSpec {
    /// Workload family name as it appears in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SvcSpec::Kv { .. } => "KV",
            SvcSpec::Bfs { .. } => "BFS",
            SvcSpec::PageRank { .. } => "PageRank",
            SvcSpec::Stream { .. } => "Stream",
        }
    }

    /// Thread count the workload runs with.
    pub fn threads(&self) -> usize {
        match *self {
            SvcSpec::Kv { threads, .. }
            | SvcSpec::Bfs { threads }
            | SvcSpec::PageRank { threads }
            | SvcSpec::Stream { threads, .. } => threads,
        }
    }

    /// Canonical cache-key segment: stable, integer-only, unambiguous.
    pub fn canonical(&self) -> String {
        match *self {
            SvcSpec::Kv {
                threads,
                theta_milli,
                write_pct,
                open_loop,
            } => format!(
                "kv:threads={threads}:theta={theta_milli}:write={write_pct}:open={}",
                u8::from(open_loop)
            ),
            SvcSpec::Bfs { threads } => format!("bfs:threads={threads}"),
            SvcSpec::PageRank { threads } => format!("pagerank:threads={threads}"),
            SvcSpec::Stream { threads, offload } => {
                format!("stream:threads={threads}:offload={}", u8::from(offload))
            }
        }
    }

    /// Instantiates the workload at `scale` (problem sizes shrink by
    /// `size_div`, request/iteration counts by `iter_div`, with floors so
    /// tiny CI scales still exercise every path).
    pub fn build(&self, scale: Scale) -> Box<dyn Workload> {
        pimdsm_prof::phase!("svc.build");
        let size = scale.size_div.max(1);
        let iters = scale.iter_div.max(1);
        match *self {
            SvcSpec::Kv {
                threads,
                theta_milli,
                write_pct,
                open_loop,
            } => {
                let keys = (KV_KEYS_FULL / size).max(1024);
                let reqs = (KV_REQS_FULL / size / iters / threads as u64).max(64);
                let theta = f64::from(theta_milli) / 1000.0;
                let period = open_loop.then_some(KV_OPEN_PERIOD);
                Box::new(KvStore::new(threads, keys, reqs, theta, write_pct, period))
            }
            SvcSpec::Bfs { threads } => {
                let verts = (BFS_VERTS_FULL / size).max(4096);
                let exps = (BFS_EXPANSIONS_FULL / size / iters / threads as u64).max(64);
                Box::new(Bfs::new(threads, verts, exps))
            }
            SvcSpec::PageRank { threads } => {
                let verts = (PR_VERTS_FULL / size).max(threads as u64 * 64);
                let sweeps = (PR_ITERS_FULL / iters).max(1);
                Box::new(PageRank::new(threads, verts, sweeps))
            }
            SvcSpec::Stream { threads, offload } => {
                let table = (STREAM_TABLE_FULL / size / iters)
                    .max(threads as u64 * crate::stream::CHUNK_BYTES);
                Box::new(Stream::new(threads, table, offload))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> [SvcSpec; 4] {
        [
            SvcSpec::Kv {
                threads: 4,
                theta_milli: 900,
                write_pct: 10,
                open_loop: false,
            },
            SvcSpec::Bfs { threads: 4 },
            SvcSpec::PageRank { threads: 4 },
            SvcSpec::Stream {
                threads: 4,
                offload: true,
            },
        ]
    }

    #[test]
    fn canonicals_are_distinct_and_integer_only() {
        let mut seen = std::collections::BTreeSet::new();
        for s in all_specs() {
            let c = s.canonical();
            assert!(seen.insert(c.clone()), "duplicate canonical {c}");
            assert!(!c.contains('.'), "float leaked into canonical: {c}");
        }
        // The skew knob must be visible in the key.
        let a = SvcSpec::Kv {
            threads: 4,
            theta_milli: 600,
            write_pct: 10,
            open_loop: false,
        };
        let b = SvcSpec::Kv {
            threads: 4,
            theta_milli: 1200,
            write_pct: 10,
            open_loop: false,
        };
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn build_honours_thread_counts_at_every_scale() {
        for scale in [Scale::full(), Scale::bench(), Scale::ci()] {
            for s in all_specs() {
                let w = s.build(scale);
                assert_eq!(w.threads(), 4, "{}", s.canonical());
                assert!(w.footprint_bytes() > 0);
                assert_eq!(w.name(), s.name());
            }
        }
    }

    #[test]
    fn ci_scale_still_issues_requests() {
        let w = SvcSpec::Kv {
            threads: 4,
            theta_milli: 900,
            write_pct: 10,
            open_loop: false,
        }
        .build(Scale::ci());
        let mut g = w.spawn(0);
        let mut reqs = 0;
        while let Some(op) = g.next_op() {
            if matches!(op, pimdsm_workloads::Op::ReqEnd { .. }) {
                reqs += 1;
            }
        }
        assert!(reqs >= 64);
    }
}
