//! Partitioned in-memory key-value store.
//!
//! Each client thread issues a stream of get/put requests against a
//! shared store: a dependent index-header load, then the value lines
//! (two cache lines for the 128 B values), then request-processing
//! compute. Key popularity is Zipf(θ); the hot keys are *scrambled*
//! across the key space so popularity does not correlate with page
//! placement (a real store hashes keys), which is what pushes hot lines
//! through the coherence protocol instead of pinning them to one home.
//!
//! Clients are either closed-loop (next request issues when the previous
//! completes) or open-loop (requests arrive on an
//! [`ArrivalGen`] schedule regardless of completion — the regime where
//! queueing shows up in p99).

use std::sync::Arc;

use pimdsm_engine::{ArrivalGen, SimRng, Zipf};
use pimdsm_workloads::ops::{ChunkGen, Op, PreloadKind, PreloadRegion, ThreadGen, Workload};
use pimdsm_workloads::{Layout, Region};

use crate::mix64;
use crate::stats::{CLASS_GET, CLASS_PUT};

/// Bytes per stored value (two cache lines).
pub const VAL_BYTES: u64 = 128;

/// How many requests each refill chunk carries.
const CHUNK_REQS: u64 = 32;

/// The key-value serving workload model.
#[derive(Debug, Clone)]
pub struct KvStore {
    threads: usize,
    keys: u64,
    reqs_per_thread: u64,
    write_pct: u32,
    open_period: Option<u64>,
    zipf: Arc<Zipf>,
    index: Region,
    values: Region,
    footprint: u64,
    seed: u64,
}

impl KvStore {
    /// Builds a store of `keys` 128 B values served by `threads` clients,
    /// each issuing `reqs_per_thread` requests with Zipf(`theta`) key
    /// popularity and `write_pct`% puts. `open_period` switches the
    /// clients to an open-loop schedule with that per-thread inter-arrival
    /// period in cycles (`None` = closed-loop).
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `keys` is zero or `write_pct > 100`.
    pub fn new(
        threads: usize,
        keys: u64,
        reqs_per_thread: u64,
        theta: f64,
        write_pct: u32,
        open_period: Option<u64>,
    ) -> Self {
        assert!(threads > 0 && keys > 0);
        assert!(write_pct <= 100, "write_pct is a percentage");
        let mut l = Layout::new(12);
        let index = l.alloc(keys * 8);
        let values = l.alloc(keys * VAL_BYTES);
        KvStore {
            threads,
            keys,
            reqs_per_thread,
            write_pct,
            open_period,
            zipf: Arc::new(Zipf::new(keys as usize, theta)),
            index,
            values,
            footprint: l.footprint(),
            seed: 0x5E7CE0,
        }
    }
}

impl Workload for KvStore {
    fn name(&self) -> &'static str {
        "KV"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        64
    }

    fn l2_kb(&self) -> u64 {
        512
    }

    /// The store is loaded before serving starts; each thread's node
    /// first-touched its partition of the index and value space.
    fn preload_regions(&self) -> Vec<PreloadRegion> {
        let mut v = Vec::with_capacity(2 * self.threads);
        for tid in 0..self.threads {
            for r in [&self.index, &self.values] {
                let part = r.split(self.threads, tid);
                v.push(PreloadRegion {
                    base: part.base(),
                    bytes: part.bytes(),
                    owner_tid: tid,
                    kind: PreloadKind::SharedInit,
                });
            }
        }
        v
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let app = self.clone();
        let mut rng = SimRng::new(app.seed ^ (tid as u64 + 3).wrapping_mul(0x9E37_79B9));
        let mut arrivals = app
            .open_period
            .map(|p| ArrivalGen::new(p, p / 2, rng.fork(0xA221)));
        let mut issued = 0u64;

        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if issued >= app.reqs_per_thread {
                return false;
            }
            let batch = CHUNK_REQS.min(app.reqs_per_thread - issued);
            for _ in 0..batch {
                // Popularity rank → scrambled slot, so hot keys spread
                // over the whole partitioned address space.
                let rank = app.zipf.sample(&mut rng) as u64;
                let slot = mix64(rank) % app.keys;
                let put = rng.chance(f64::from(app.write_pct) / 100.0);
                let class = if put { CLASS_PUT } else { CLASS_GET };
                let arrival = arrivals.as_mut().map_or(0, ArrivalGen::next_arrival);
                out.push(Op::ReqStart { arrival, class });
                // Dependent index lookup, then the value's two lines.
                out.push(Op::Load(app.index.elem(slot, 8)));
                let base = app.values.elem(slot, VAL_BYTES);
                if put {
                    out.push(Op::StoreBatch {
                        base,
                        stride: 64,
                        count: (VAL_BYTES / 64) as u32,
                    });
                    out.push(Op::Compute(40));
                } else {
                    out.push(Op::LoadBatch {
                        base,
                        stride: 64,
                        count: (VAL_BYTES / 64) as u32,
                    });
                    out.push(Op::Compute(30));
                }
                out.push(Op::ReqEnd { class });
            }
            issued += batch;
            issued < app.reqs_per_thread
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &KvStore, tid: usize) -> Vec<Op> {
        let mut g = w.spawn(tid);
        let mut v = Vec::new();
        while let Some(op) = g.next_op() {
            v.push(op);
            assert!(v.len() < 1_000_000);
        }
        v
    }

    #[test]
    fn requests_are_bracketed_and_counted() {
        let w = KvStore::new(2, 4096, 100, 0.9, 10, None);
        let ops = drain(&w, 0);
        let starts = ops
            .iter()
            .filter(|o| matches!(o, Op::ReqStart { .. }))
            .count();
        let ends = ops
            .iter()
            .filter(|o| matches!(o, Op::ReqEnd { .. }))
            .count();
        assert_eq!(starts, 100);
        assert_eq!(ends, 100);
        // Brackets alternate: no nested or dangling requests.
        let mut open = false;
        for op in &ops {
            match op {
                Op::ReqStart { .. } => {
                    assert!(!open);
                    open = true;
                }
                Op::ReqEnd { .. } => {
                    assert!(open);
                    open = false;
                }
                _ => {}
            }
        }
        assert!(!open);
    }

    #[test]
    fn closed_loop_arrivals_are_zero_and_open_loop_monotone() {
        let closed = KvStore::new(1, 1024, 50, 0.6, 0, None);
        for op in drain(&closed, 0) {
            if let Op::ReqStart { arrival, .. } = op {
                assert_eq!(arrival, 0);
            }
        }
        let open = KvStore::new(1, 1024, 50, 0.6, 0, Some(500));
        let mut prev = 0;
        for op in drain(&open, 0) {
            if let Op::ReqStart { arrival, .. } = op {
                assert!(arrival > 0 && arrival >= prev, "{arrival} after {prev}");
                prev = arrival;
            }
        }
        assert!(prev > 0);
    }

    #[test]
    fn write_mix_tracks_the_knob() {
        let w = KvStore::new(1, 4096, 2000, 0.9, 25, None);
        let puts = drain(&w, 0)
            .iter()
            .filter(|o| matches!(o, Op::ReqEnd { class } if *class == CLASS_PUT))
            .count();
        // 25% of 2000 with deterministic sampling noise.
        assert!((380..=620).contains(&puts), "puts = {puts}");
    }

    #[test]
    fn addresses_stay_inside_the_store() {
        let w = KvStore::new(2, 1024, 200, 1.2, 50, None);
        let hi = w.footprint_bytes() + 4096;
        for op in drain(&w, 1) {
            match op {
                Op::Load(a) | Op::Store(a) => assert!(a < hi),
                Op::LoadBatch {
                    base,
                    stride,
                    count,
                }
                | Op::StoreBatch {
                    base,
                    stride,
                    count,
                } => {
                    assert!(base + u64::from(stride) * u64::from(count) <= hi);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn spawn_is_deterministic_per_thread() {
        let w = KvStore::new(4, 4096, 300, 0.9, 10, Some(700));
        assert_eq!(drain(&w, 2), drain(&w, 2));
        assert_ne!(drain(&w, 0), drain(&w, 1));
    }
}
