//! Per-request latency and throughput accounting.

use pimdsm_engine::Histogram;
use pimdsm_obs::{JsonValue, ToJson};

/// Request classes a [`crate::SvcSpec`] workload can open.
pub const CLASS_GET: u8 = 0;
/// Write/put requests.
pub const CLASS_PUT: u8 = 1;
/// Everything that is neither a get nor a put (graph expansions,
/// PageRank vertex updates, stream chunks).
pub const CLASS_OTHER: u8 = 2;

/// Service-level statistics for one run: completed request counts per
/// class, open-loop queueing delay, and per-request latency histograms.
///
/// The machine driver owns one per run and feeds it from the
/// `ReqStart`/`ReqEnd` op pair; all counters are integers (cycles or
/// counts) so reports carrying them render identically across runs and
/// job counts. Latency percentiles of an *empty* histogram are 0.0 by
/// `Histogram::percentile`'s contract, so zero-request points render
/// cleanly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SvcStats {
    /// Completed requests, all classes.
    pub requests: u64,
    /// Completed get (read) requests.
    pub gets: u64,
    /// Completed put (write) requests.
    pub puts: u64,
    /// Completed requests of other classes.
    pub other: u64,
    /// Cycles open-loop requests spent queued behind a late thread
    /// (scheduled arrival already in the past when the client issued).
    pub queued_cycles: u64,
    /// Per-request latency, all classes.
    pub latency: Histogram,
    /// Per-request latency of gets only.
    pub get_latency: Histogram,
    /// Per-request latency of puts only.
    pub put_latency: Histogram,
}

impl SvcStats {
    /// Records one completed request of `class` with end-to-end `latency`
    /// cycles (arrival to completion, queueing included).
    pub fn record(&mut self, class: u8, latency: u64) {
        self.requests += 1;
        self.latency.record(latency);
        match class {
            CLASS_GET => {
                self.gets += 1;
                self.get_latency.record(latency);
            }
            CLASS_PUT => {
                self.puts += 1;
                self.put_latency.record(latency);
            }
            _ => self.other += 1,
        }
    }

    /// Median request latency, rounded to whole cycles.
    pub fn p50(&self) -> u64 {
        self.latency.percentile(50.0).round() as u64
    }

    /// 95th-percentile request latency, rounded to whole cycles.
    pub fn p95(&self) -> u64 {
        self.latency.percentile(95.0).round() as u64
    }

    /// 99th-percentile request latency, rounded to whole cycles.
    pub fn p99(&self) -> u64 {
        self.latency.percentile(99.0).round() as u64
    }

    /// Throughput in requests per million cycles. At the paper's 1 GHz
    /// clock one Mcycle is a millisecond, so this is also kilorequests
    /// per second.
    pub fn per_mcycle(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.requests as f64 * 1_000_000.0 / total_cycles as f64
    }

    /// Reconstructs the statistics from the JSON produced by
    /// [`ToJson::to_json`] — the inverse used by `pimdsm-lab`'s
    /// content-addressed result cache.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or malformed field.
    pub fn from_json(v: &JsonValue) -> Result<SvcStats, String> {
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing {key}"))
        };
        Ok(SvcStats {
            requests: field("requests")?,
            gets: field("gets")?,
            puts: field("puts")?,
            other: field("other")?,
            queued_cycles: field("queued_cycles")?,
            latency: hist_from_json(v, "latency")?,
            get_latency: hist_from_json(v, "get_latency")?,
            put_latency: hist_from_json(v, "put_latency")?,
        })
    }
}

impl ToJson for SvcStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("requests", JsonValue::u64(self.requests)),
            ("gets", JsonValue::u64(self.gets)),
            ("puts", JsonValue::u64(self.puts)),
            ("other", JsonValue::u64(self.other)),
            ("queued_cycles", JsonValue::u64(self.queued_cycles)),
            ("latency", hist_to_json(&self.latency)),
            ("get_latency", hist_to_json(&self.get_latency)),
            ("put_latency", hist_to_json(&self.put_latency)),
        ])
    }
}

fn hist_to_json(h: &Histogram) -> JsonValue {
    JsonValue::obj([
        ("count", JsonValue::u64(h.count())),
        ("sum", JsonValue::u64(h.sum())),
        ("max", JsonValue::u64(h.max())),
        (
            "buckets",
            JsonValue::Arr(h.buckets().iter().map(|&n| JsonValue::u64(n)).collect()),
        ),
    ])
}

fn hist_from_json(v: &JsonValue, key: &str) -> Result<Histogram, String> {
    let h = v.get(key).ok_or_else(|| format!("missing {key}"))?;
    let hfield = |sub: &str| -> Result<u64, String> {
        h.get(sub)
            .and_then(|x| x.as_u64())
            .ok_or_else(|| format!("missing {key}.{sub}"))
    };
    let arr = h
        .get("buckets")
        .and_then(|x| x.as_arr())
        .ok_or_else(|| format!("missing {key}.buckets"))?;
    if arr.len() != 64 {
        return Err(format!("{key}.buckets has {} entries", arr.len()));
    }
    let mut buckets = [0u64; 64];
    for (slot, x) in buckets.iter_mut().zip(arr) {
        *slot = x
            .as_u64()
            .ok_or_else(|| format!("non-integer {key} bucket"))?;
    }
    Ok(Histogram::from_raw(
        buckets,
        hfield("count")?,
        hfield("sum")?,
        hfield("max")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_routes_classes() {
        let mut s = SvcStats::default();
        s.record(CLASS_GET, 100);
        s.record(CLASS_GET, 200);
        s.record(CLASS_PUT, 400);
        s.record(CLASS_OTHER, 800);
        assert_eq!(s.requests, 4);
        assert_eq!(s.gets, 2);
        assert_eq!(s.puts, 1);
        assert_eq!(s.other, 1);
        assert_eq!(s.latency.count(), 4);
        assert_eq!(s.get_latency.count(), 2);
        assert_eq!(s.put_latency.count(), 1);
        assert!(s.p99() >= s.p50());
    }

    #[test]
    fn empty_stats_render_cleanly() {
        // Satellite guard: a point that completed zero requests must not
        // NaN/panic anywhere — percentiles are 0, throughput is 0, and
        // the JSON round-trips.
        let s = SvcStats::default();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p95(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.per_mcycle(0), 0.0);
        assert_eq!(s.per_mcycle(1_000_000), 0.0);
        let back = SvcStats::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut s = SvcStats {
            queued_cycles: 1234,
            ..SvcStats::default()
        };
        for i in 0..1000u64 {
            s.record((i % 3) as u8, i * 17 + 3);
        }
        let j = s.to_json();
        let text = j.render_pretty();
        let parsed = pimdsm_obs::json::parse(&text).unwrap();
        let back = SvcStats::from_json(&parsed).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json().render_pretty(), text);
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        let j = JsonValue::obj([("requests", JsonValue::u64(1))]);
        let err = SvcStats::from_json(&j).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn throughput_is_requests_per_mcycle() {
        let mut s = SvcStats::default();
        for _ in 0..500 {
            s.record(CLASS_GET, 10);
        }
        let t = s.per_mcycle(2_000_000);
        assert!((t - 250.0).abs() < 1e-9, "{t}");
    }
}
