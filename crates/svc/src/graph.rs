//! Graph analytics over attraction-memory-resident CSR adjacency.
//!
//! Two irregular-access kernels, both issuing per-"request" latency
//! brackets so the serving metrics apply:
//!
//! * [`Bfs`] — pointer-chasing breadth-first expansions: a dependent
//!   row-pointer load, a sequential edge-list read, then scattered
//!   visited-flag probes of the neighbours. No two expansions touch
//!   predictable addresses, which is exactly the access pattern remote
//!   caches hate.
//! * [`PageRank`] — barrier-synchronized rank sweeps: every vertex
//!   update gathers the ranks of its (scrambled) neighbours, computes,
//!   and stores its new rank; iterations are separated by global
//!   barriers like the SPLASH kernels.

use pimdsm_engine::SimRng;
use pimdsm_workloads::ops::{
    partition, Batch, ChunkGen, Op, PreloadKind, PreloadRegion, ThreadGen, Workload,
};
use pimdsm_workloads::{Layout, Region};

use crate::mix64;
use crate::stats::CLASS_OTHER;

/// Out-degree of every BFS vertex (fits one [`Batch`]).
pub const BFS_DEG: u64 = 8;
/// Out-degree of every PageRank vertex (exactly one [`Batch`]).
pub const PR_DEG: u64 = 16;

/// Expansions emitted per refill chunk.
const CHUNK_REQS: u64 = 32;

/// Pointer-chasing breadth-first search.
#[derive(Debug, Clone)]
pub struct Bfs {
    threads: usize,
    verts: u64,
    expansions_per_thread: u64,
    row: Region,
    col: Region,
    visited: Region,
    footprint: u64,
}

impl Bfs {
    /// Builds a BFS over `verts` vertices of degree [`BFS_DEG`], with
    /// `threads` workers each performing `expansions_per_thread`
    /// frontier expansions.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `verts` is zero.
    pub fn new(threads: usize, verts: u64, expansions_per_thread: u64) -> Self {
        assert!(threads > 0 && verts > 0);
        let mut l = Layout::new(12);
        let row = l.alloc((verts + 1) * 8);
        let col = l.alloc(verts * BFS_DEG * 8);
        let visited = l.alloc(verts);
        Bfs {
            threads,
            verts,
            expansions_per_thread,
            row,
            col,
            visited,
            footprint: l.footprint(),
        }
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        64
    }

    fn l2_kb(&self) -> u64 {
        512
    }

    /// The graph was loaded by one node; visited flags first-touch to
    /// each worker's partition.
    fn preload_regions(&self) -> Vec<PreloadRegion> {
        let mut v = vec![
            PreloadRegion {
                base: self.row.base(),
                bytes: self.row.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
            PreloadRegion {
                base: self.col.base(),
                bytes: self.col.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
        ];
        for tid in 0..self.threads {
            let part = self.visited.split(self.threads, tid);
            v.push(PreloadRegion {
                base: part.base(),
                bytes: part.bytes(),
                owner_tid: tid,
                kind: PreloadKind::ColdPrivate,
            });
        }
        v
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let app = self.clone();
        let salt = (tid as u64 + 1) << 32;
        let mut done = 0u64;
        // The frontier chases pointers: each expansion's vertex is
        // derived from the previous one, so the address stream is a
        // dependent chain, not an index loop.
        let mut frontier = mix64(salt) % app.verts;

        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if done >= app.expansions_per_thread {
                return false;
            }
            let batch = CHUNK_REQS.min(app.expansions_per_thread - done);
            for _ in 0..batch {
                let v = frontier;
                out.push(Op::ReqStart {
                    arrival: 0,
                    class: CLASS_OTHER,
                });
                // Dependent row-pointer load, then the edge list.
                out.push(Op::Load(app.row.elem(v, 8)));
                out.push(Op::LoadBatch {
                    base: app.col.elem(v * BFS_DEG, 8),
                    stride: 8,
                    count: BFS_DEG as u32,
                });
                // Scattered visited probes of the neighbours.
                let mut addrs = [0u64; BFS_DEG as usize];
                for (j, a) in addrs.iter_mut().enumerate() {
                    let u = mix64(v * BFS_DEG + j as u64) % app.verts;
                    *a = app.visited.at(u);
                }
                out.push(Op::Gather(Batch::new(&addrs)));
                out.push(Op::Compute(6 * BFS_DEG));
                out.push(Op::Store(app.visited.at(v)));
                out.push(Op::ReqEnd { class: CLASS_OTHER });
                frontier = mix64(v ^ salt) % app.verts;
            }
            done += batch;
            done < app.expansions_per_thread
        }))
    }
}

/// Barrier-synchronized PageRank sweeps.
#[derive(Debug, Clone)]
pub struct PageRank {
    threads: usize,
    verts: u64,
    iters: u64,
    col: Region,
    rank_old: Region,
    rank_new: Region,
    footprint: u64,
    seed: u64,
}

impl PageRank {
    /// Builds `iters` rank sweeps over `verts` vertices of degree
    /// [`PR_DEG`] shared by `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads`, `verts` or `iters` is zero.
    pub fn new(threads: usize, verts: u64, iters: u64) -> Self {
        assert!(threads > 0 && verts > 0 && iters > 0);
        let mut l = Layout::new(12);
        let col = l.alloc(verts * PR_DEG * 8);
        let rank_old = l.alloc(verts * 8);
        let rank_new = l.alloc(verts * 8);
        PageRank {
            threads,
            verts,
            iters,
            col,
            rank_old,
            rank_new,
            footprint: l.footprint(),
            seed: 0x94A6_E12A,
        }
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "PageRank"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        64
    }

    fn l2_kb(&self) -> u64 {
        512
    }

    fn preload_regions(&self) -> Vec<PreloadRegion> {
        let mut v = vec![PreloadRegion {
            base: self.col.base(),
            bytes: self.col.bytes(),
            owner_tid: 0,
            kind: PreloadKind::SharedInit,
        }];
        for tid in 0..self.threads {
            for r in [&self.rank_old, &self.rank_new] {
                let part = r.split(self.threads, tid);
                v.push(PreloadRegion {
                    base: part.base(),
                    bytes: part.bytes(),
                    owner_tid: tid,
                    kind: PreloadKind::SharedInit,
                });
            }
        }
        v
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let app = self.clone();
        let mut rng = SimRng::new(app.seed ^ (tid as u64 + 11).wrapping_mul(0xC2B2_AE3D));
        let (v0, vn) = partition(app.verts, app.threads, tid);
        let mut iter = 0u64;
        let mut next = 0u64;

        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if iter >= app.iters {
                return false;
            }
            let batch = CHUNK_REQS.min(vn - next);
            for _ in 0..batch {
                let v = v0 + next;
                out.push(Op::ReqStart {
                    arrival: 0,
                    class: CLASS_OTHER,
                });
                out.push(Op::LoadBatch {
                    base: app.col.elem(v * PR_DEG, 8),
                    stride: 8,
                    count: PR_DEG as u32,
                });
                // Gather the neighbours' old ranks — the irregular part.
                let mut addrs = [0u64; PR_DEG as usize];
                for (j, a) in addrs.iter_mut().enumerate() {
                    let u = mix64(v * PR_DEG + j as u64 + rng.next_u64() % 7) % app.verts;
                    *a = app.rank_old.elem(u, 8);
                }
                out.push(Op::Gather(Batch::new(&addrs)));
                out.push(Op::Compute(4 * PR_DEG));
                out.push(Op::Store(app.rank_new.elem(v, 8)));
                out.push(Op::ReqEnd { class: CLASS_OTHER });
                next += 1;
            }
            if next >= vn {
                // Sweep finished: everyone syncs, ranks swap.
                out.push(Op::Barrier(iter as u32));
                iter += 1;
                next = 0;
            }
            iter < app.iters || !out.is_empty()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &dyn Workload, tid: usize) -> Vec<Op> {
        let mut g = w.spawn(tid);
        let mut v = Vec::new();
        while let Some(op) = g.next_op() {
            v.push(op);
            assert!(v.len() < 2_000_000);
        }
        v
    }

    #[test]
    fn bfs_brackets_every_expansion() {
        let w = Bfs::new(2, 4096, 150);
        let ops = drain(&w, 0);
        let starts = ops
            .iter()
            .filter(|o| matches!(o, Op::ReqStart { arrival: 0, class } if *class == CLASS_OTHER))
            .count();
        assert_eq!(starts, 150);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, Op::ReqEnd { .. }))
                .count(),
            150
        );
    }

    #[test]
    fn bfs_neighbour_probes_are_scattered() {
        let w = Bfs::new(1, 1 << 14, 50);
        let ops = drain(&w, 0);
        let mut gathers = 0;
        let mut distinct = std::collections::BTreeSet::new();
        for op in &ops {
            if let Op::Gather(b) = op {
                gathers += 1;
                distinct.extend(b.addrs().iter().copied());
            }
        }
        assert_eq!(gathers, 50);
        // 50 expansions × 8 probes over 16k vertices: collisions should
        // be rare if the scramble really scatters.
        assert!(
            distinct.len() > 300,
            "only {} distinct probes",
            distinct.len()
        );
    }

    #[test]
    fn pagerank_emits_one_barrier_per_iteration() {
        let w = PageRank::new(4, 1024, 3);
        for tid in 0..4 {
            let ops = drain(&w, tid);
            let barriers: Vec<u32> = ops
                .iter()
                .filter_map(|o| match o {
                    Op::Barrier(id) => Some(*id),
                    _ => None,
                })
                .collect();
            assert_eq!(barriers, vec![0, 1, 2]);
        }
    }

    #[test]
    fn pagerank_updates_cover_the_partition_each_iteration() {
        let w = PageRank::new(2, 100, 2);
        let ops = drain(&w, 1);
        let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
        // 50 vertices × 2 iterations.
        assert_eq!(stores, 100);
    }

    #[test]
    fn graph_generators_are_deterministic() {
        let b = Bfs::new(2, 2048, 100);
        assert_eq!(drain(&b, 1), drain(&b, 1));
        let p = PageRank::new(2, 512, 2);
        assert_eq!(drain(&p, 0), drain(&p, 0));
    }
}
