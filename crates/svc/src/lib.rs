//! `pimdsm-svc` — deterministic service workloads for the PIM-DSM
//! simulator.
//!
//! The paper evaluates its processor-memory-integrated DSM on SPLASH-era
//! compute kernels; what such a machine would run today is data-intensive
//! *serving*. This crate models three service families as deterministic
//! [`Workload`](pimdsm_workloads::Workload) generators that plug into the
//! existing machine/memory-system thread model:
//!
//! * [`kv`] — a partitioned in-memory **key-value store** driving
//!   get/put requests with Zipf key popularity (the deterministic
//!   [`Zipf`](pimdsm_engine::Zipf) sampler), a read/write-mix knob, and
//!   either closed-loop clients or an open-loop
//!   [`ArrivalGen`](pimdsm_engine::ArrivalGen) schedule.
//! * [`graph`] — **graph analytics** over attraction-memory-resident CSR
//!   adjacency: pointer-chasing BFS expansions and barrier-synchronized
//!   PageRank sweeps, both dominated by irregular remote access.
//! * [`stream`] — **streaming scan/filter/join** over a chunked table,
//!   either shipping every chunk through the P-node caches or executing
//!   the scan in D-node compute-in-memory handlers
//!   ([`Op::OffloadScan`](pimdsm_workloads::Op::OffloadScan)) — the
//!   paper's Section 2.4 argument made quantitative for serving.
//!
//! Every request is bracketed by
//! [`Op::ReqStart`](pimdsm_workloads::Op::ReqStart) /
//! [`Op::ReqEnd`](pimdsm_workloads::Op::ReqEnd); the machine driver
//! records per-request latency into the [`SvcStats`] histograms
//! (p50/p95/p99 via `Histogram::percentile`) that ride along in
//! `RunReport` JSON. [`SvcSpec`] is the `Copy` parameter block the lab
//! crate embeds in its cache-keyed point specs.

pub mod graph;
pub mod kv;
pub mod spec;
pub mod stats;
pub mod stream;

pub use graph::{Bfs, PageRank};
pub use kv::KvStore;
pub use spec::SvcSpec;
pub use stats::SvcStats;

/// SplitMix64 finalizer: a cheap deterministic bijection on `u64` the
/// workloads use to decorrelate logical ids (key popularity ranks,
/// vertex ids) from physical placement.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
