//! Streaming scan/filter/join, optionally offloaded to D-node handlers.
//!
//! Each request scans one chunk of a large partitioned table, filters it
//! against a predicate, and probes a shared join table with the matching
//! record. In the *ship-to-P* variant the chunk's lines stream through
//! the requesting P-node's caches ([`Op::LoadBatch`] plus scan compute);
//! in the *offload* variant the scan runs in the chunk's home D-node
//! compute-in-memory handler ([`Op::OffloadScan`], the paper's
//! Section 2.4) and only the reply crosses the network. Same work, two
//! placements — the suite renders them side by side.

use pimdsm_engine::SimRng;
use pimdsm_workloads::ops::{
    partition, Batch, ChunkGen, Op, PreloadKind, PreloadRegion, ThreadGen, Workload,
};
use pimdsm_workloads::{Layout, Region};

use crate::stats::CLASS_OTHER;

/// Bytes per scanned chunk (16 cache lines).
pub const CHUNK_BYTES: u64 = 1024;
/// Bytes per record inside a chunk.
pub const RECORD_BYTES: u64 = 128;

/// The streaming scan/filter/join workload model.
#[derive(Debug, Clone)]
pub struct Stream {
    threads: usize,
    offload: bool,
    table: Region,
    join: Region,
    results: Vec<Region>,
    footprint: u64,
    seed: u64,
}

impl Stream {
    /// Builds a stream over a `table_bytes` chunked table shared by
    /// `threads` workers, with a join table an eighth its size.
    /// `offload` selects D-node compute-in-memory scans.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or the table holds fewer chunks than
    /// threads.
    pub fn new(threads: usize, table_bytes: u64, offload: bool) -> Self {
        assert!(threads > 0);
        assert!(
            table_bytes >= threads as u64 * CHUNK_BYTES,
            "table too small for {threads} threads"
        );
        let mut l = Layout::new(12);
        let table = l.alloc(table_bytes);
        let join = l.alloc((table_bytes / 8).max(64 * 1024));
        let results = l.alloc_per_thread(threads, (table_bytes / threads as u64 / 16).max(4096));
        Stream {
            threads,
            offload,
            table,
            join,
            results,
            footprint: l.footprint(),
            seed: 0x57_AEA1,
        }
    }

    fn records_per_chunk() -> u64 {
        CHUNK_BYTES / RECORD_BYTES
    }
}

impl Workload for Stream {
    fn name(&self) -> &'static str {
        "Stream"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn footprint_bytes(&self) -> u64 {
        self.footprint
    }

    fn l1_kb(&self) -> u64 {
        64
    }

    fn l2_kb(&self) -> u64 {
        512
    }

    /// Both tables were bulk-loaded before the stream starts.
    fn preload_regions(&self) -> Vec<PreloadRegion> {
        vec![
            PreloadRegion {
                base: self.table.base(),
                bytes: self.table.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
            PreloadRegion {
                base: self.join.base(),
                bytes: self.join.bytes(),
                owner_tid: 0,
                kind: PreloadKind::SharedInit,
            },
        ]
    }

    fn spawn(&self, tid: usize) -> Box<dyn ThreadGen> {
        assert!(tid < self.threads);
        let app = self.clone();
        let mut rng = SimRng::new(app.seed ^ (tid as u64 + 5).wrapping_mul(0x1656_67B1));
        let n_chunks = app.table.bytes() / CHUNK_BYTES;
        let (c0, cn) = partition(n_chunks, app.threads, tid);
        let mut chunk = 0u64;
        let mut result_pos = 0u64;

        Box::new(ChunkGen::new(move |out: &mut Vec<Op>| {
            if chunk >= cn {
                return false;
            }
            let records = Stream::records_per_chunk();
            let base = app.table.at((c0 + chunk) * CHUNK_BYTES);
            out.push(Op::ReqStart {
                arrival: 0,
                class: CLASS_OTHER,
            });
            if app.offload {
                // Scan runs at the chunk's home D-node; only matching
                // record pointers come back.
                out.push(Op::OffloadScan {
                    chunk_addr: base,
                    bytes: CHUNK_BYTES,
                    scan_cycles: records * 3,
                    reply_bytes: 16,
                });
            } else {
                // Ship the chunk through this P-node's caches.
                out.push(Op::LoadBatch {
                    base,
                    stride: 64,
                    count: (CHUNK_BYTES / 64) as u32,
                });
                out.push(Op::Compute(records * 4));
            }
            // Probe the join table with the matching record and append
            // to the local result buffer.
            let bucket = rng.range(0, app.join.bytes() / 64) * 64;
            out.push(Op::Gather(Batch::new(&[
                app.join.at(bucket),
                app.join.at((bucket + 64) % app.join.bytes()),
            ])));
            out.push(Op::Compute(60));
            let res = &app.results[tid];
            out.push(Op::Store(res.at(result_pos % res.bytes())));
            result_pos += 64;
            out.push(Op::ReqEnd { class: CLASS_OTHER });
            chunk += 1;
            chunk < cn
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &Stream, tid: usize) -> Vec<Op> {
        let mut g = w.spawn(tid);
        let mut v = Vec::new();
        while let Some(op) = g.next_op() {
            v.push(op);
            assert!(v.len() < 2_000_000);
        }
        v
    }

    #[test]
    fn offload_variant_issues_offload_scans_only() {
        let w = Stream::new(2, 256 * 1024, true);
        let ops = drain(&w, 0);
        let offloads = ops
            .iter()
            .filter(|o| matches!(o, Op::OffloadScan { .. }))
            .count();
        let reqs = ops
            .iter()
            .filter(|o| matches!(o, Op::ReqEnd { .. }))
            .count();
        assert_eq!(offloads, reqs);
        assert!(offloads > 0);
        assert!(!ops.iter().any(|o| matches!(o, Op::LoadBatch { .. })));
    }

    #[test]
    fn ship_variant_streams_chunk_lines() {
        let w = Stream::new(2, 256 * 1024, false);
        let ops = drain(&w, 1);
        assert!(!ops.iter().any(|o| matches!(o, Op::OffloadScan { .. })));
        let loads = ops
            .iter()
            .filter(|o| matches!(o, Op::LoadBatch { count: 16, .. }))
            .count();
        let reqs = ops
            .iter()
            .filter(|o| matches!(o, Op::ReqEnd { .. }))
            .count();
        assert_eq!(loads, reqs);
    }

    #[test]
    fn chunks_partition_the_table() {
        let w = Stream::new(4, 64 * CHUNK_BYTES, true);
        let total: usize = (0..4)
            .map(|tid| {
                drain(&w, tid)
                    .iter()
                    .filter(|o| matches!(o, Op::ReqEnd { .. }))
                    .count()
            })
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn variants_do_identical_join_work() {
        let ship = Stream::new(2, 128 * 1024, false);
        let off = Stream::new(2, 128 * 1024, true);
        let probes = |w: &Stream| {
            drain(w, 0)
                .iter()
                .filter(|o| matches!(o, Op::Gather(_)))
                .count()
        };
        assert_eq!(probes(&ship), probes(&off));
    }
}
