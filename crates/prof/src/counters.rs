//! Deterministic event counters.
//!
//! These count *what the simulator did* — engine events popped, the peak
//! event-queue depth, transaction walks and their steps. For a
//! deterministic simulation they are bit-identical across repeated runs,
//! which is exactly what `pimdsm-lab bench` records in the
//! `deterministic` block of a `BENCH_*.json` and what
//! `tests/determinism.rs` asserts.
//!
//! Counters are thread-local `Cell`s: each lab worker accumulates the
//! counters of the points it runs and snapshots a per-point delta with
//! [`scoped`], so no cross-thread ordering can ever make the values
//! nondeterministic. The instrumentation hooks (`Machine::run`,
//! `Txn::finish`) call [`add`]/[`observe_max`] unconditionally — a bump
//! is one thread-local add, cheap enough to leave on.

use std::cell::Cell;

/// Events popped by the engine event loop (`Machine::run`).
pub const ENGINE_EVENTS: usize = 0;
/// Peak depth of the engine event queue (max-merged, not summed).
pub const ENGINE_QUEUE_PEAK: usize = 1;
/// Transaction walks closed by `Txn::finish`.
pub const TXN_WALKS: usize = 2;
/// Individual frontier-advance steps across all transaction walks.
pub const TXN_STEPS: usize = 3;
/// Number of counters.
pub const NUM_COUNTERS: usize = 4;

/// Which counters merge by maximum instead of by sum.
const IS_MAX: [bool; NUM_COUNTERS] = [false, true, false, false];

/// Display names, indexed by counter id.
pub const NAMES: [&str; NUM_COUNTERS] = [
    "engine_events",
    "engine_queue_peak",
    "txn_walks",
    "txn_steps",
];

std::thread_local! {
    static COUNTERS: [Cell<u64>; NUM_COUNTERS] =
        const { [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)] };
}

/// Adds `n` to an additive counter on the current thread.
#[inline]
pub fn add(counter: usize, n: u64) {
    COUNTERS.with(|c| c[counter].set(c[counter].get() + n));
}

/// Raises a max-merged counter to at least `v` on the current thread.
#[inline]
pub fn observe_max(counter: usize, v: u64) {
    COUNTERS.with(|c| c[counter].set(c[counter].get().max(v)));
}

/// A point-in-time copy of this thread's counters, or a merged/delta
/// aggregate of several.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values, indexed by the `const` ids of this module.
    pub vals: [u64; NUM_COUNTERS],
}

impl Snapshot {
    /// Events popped by the engine event loop.
    pub fn engine_events(&self) -> u64 {
        self.vals[ENGINE_EVENTS]
    }

    /// Peak engine event-queue depth.
    pub fn engine_queue_peak(&self) -> u64 {
        self.vals[ENGINE_QUEUE_PEAK]
    }

    /// Transaction walks finished.
    pub fn txn_walks(&self) -> u64 {
        self.vals[TXN_WALKS]
    }

    /// Transaction frontier-advance steps.
    pub fn txn_steps(&self) -> u64 {
        self.vals[TXN_STEPS]
    }

    /// Merges `other` in: additive counters sum, max counters take the
    /// maximum. Aggregating per-point snapshots this way is order-free,
    /// so a parallel sweep aggregates to the same totals as a serial one.
    pub fn merge(&mut self, other: &Snapshot) {
        for (i, &is_max) in IS_MAX.iter().enumerate() {
            if is_max {
                self.vals[i] = self.vals[i].max(other.vals[i]);
            } else {
                self.vals[i] += other.vals[i];
            }
        }
    }
}

/// The current thread's raw cumulative counters.
pub fn snapshot() -> Snapshot {
    COUNTERS.with(|c| {
        let mut s = Snapshot::default();
        for (i, cell) in c.iter().enumerate() {
            s.vals[i] = cell.get();
        }
        s
    })
}

/// Runs `f` and returns its result together with the counter delta it
/// produced on this thread: additive counters as the difference, max
/// counters as the maximum observed *within* the scope (they are zeroed
/// on entry so a deep queue in an earlier scope cannot mask this one).
pub fn scoped<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    let before = COUNTERS.with(|c| {
        let mut s = Snapshot::default();
        for i in 0..NUM_COUNTERS {
            if IS_MAX[i] {
                c[i].set(0);
            } else {
                s.vals[i] = c[i].get();
            }
        }
        s
    });
    let r = f();
    let mut delta = snapshot();
    for (i, &is_max) in IS_MAX.iter().enumerate() {
        if !is_max {
            delta.vals[i] -= before.vals[i];
        }
    }
    (r, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_reports_deltas_and_scope_local_peaks() {
        add(ENGINE_EVENTS, 10);
        observe_max(ENGINE_QUEUE_PEAK, 99);
        let ((), d) = scoped(|| {
            add(ENGINE_EVENTS, 5);
            add(TXN_WALKS, 2);
            add(TXN_STEPS, 7);
            observe_max(ENGINE_QUEUE_PEAK, 3);
            observe_max(ENGINE_QUEUE_PEAK, 1);
        });
        assert_eq!(d.engine_events(), 5, "additive counters are deltas");
        assert_eq!(d.txn_walks(), 2);
        assert_eq!(d.txn_steps(), 7);
        assert_eq!(
            d.engine_queue_peak(),
            3,
            "max counters report the scope's own peak, not an earlier one"
        );
    }

    #[test]
    fn merge_sums_additive_and_maxes_peaks() {
        let mut a = Snapshot {
            vals: [10, 4, 1, 100],
        };
        let b = Snapshot {
            vals: [5, 9, 2, 50],
        };
        a.merge(&b);
        assert_eq!(a.vals, [15, 9, 3, 150]);
    }

    #[test]
    fn counters_are_thread_local() {
        let ((), d) = scoped(|| {
            add(TXN_WALKS, 1);
            std::thread::scope(|s| {
                s.spawn(|| add(TXN_WALKS, 1000)).join().unwrap();
            });
        });
        assert_eq!(d.txn_walks(), 1, "another thread's bumps are invisible");
    }
}
