//! Host-side performance observability for the simulator itself.
//!
//! PR 1 gave the repository *simulated-time* observability (tracing,
//! epoch metrics); this crate is the symmetric *wall-clock* layer: it
//! measures the simulator as a program — how fast the event loop drains,
//! where the orchestrator spends its time, what allocates. It is a leaf
//! crate with no dependencies so that the engine, the protocols and the
//! lab can all feed it without cycles.
//!
//! # The determinism split
//!
//! Everything here is strictly partitioned into two kinds of data, and
//! the partition is part of the crate's contract:
//!
//! * **Deterministic counters** ([`counters`], plus the per-phase
//!   `enters` and allocation attribution) count *what the program did* —
//!   events popped, transaction walks finished, allocations made. For a
//!   deterministic simulator these are byte-identical across repeated
//!   runs of the same configuration, and `pimdsm-lab bench` asserts as
//!   much (`tests/determinism.rs`).
//! * **Non-deterministic timings** (the `wall_ns` of [`phase!`] scopes,
//!   peak live heap bytes) measure *how long / how big it happened to
//!   be* on this machine, this run. They are kept in separately named
//!   fields and never mixed into the deterministic set.
//!
//! Nothing in this crate feeds back into simulation: counters are
//! observed, never read by sim code, so enabling profiling (including
//! the `count-alloc` allocator) cannot change a single simulated cycle.
//! `tests/determinism.rs` guards that with exact event-sequence
//! comparisons.
//!
//! # Phases
//!
//! A *phase* is a named wall-clock scope entered with the [`phase!`]
//! macro. Phase names are static: every name must be listed in
//! [`phase::registry::PHASES`] (lint rule **P001** enforces the registry
//! in both directions), which is what lets the `count-alloc` allocator
//! attribute allocations to the active phase with a fixed-size atomic
//! table and no allocation of its own.

pub mod alloc;
pub mod counters;
pub mod phase;

pub use alloc::AllocTotals;
pub use counters::Snapshot;
pub use phase::PhaseStats;

/// Attributes the wrapped statements to a registered profiler phase.
///
/// Expands to a scope guard: the phase is active until the end of the
/// enclosing block, wall time and an enter count are recorded on drop,
/// and (with the `count-alloc` feature) allocations made while the phase
/// is active on this thread are attributed to it. The name must be a
/// string literal present in [`phase::registry::PHASES`] — lint rule
/// P001 checks every call site statically, and [`phase::enter`] panics
/// on an unregistered name at run time.
///
/// ```
/// fn render() {
///     pimdsm_prof::phase!("suite.render");
///     // ... work attributed to "suite.render" ...
/// }
/// ```
#[macro_export]
macro_rules! phase {
    ($name:literal) => {
        let _pimdsm_prof_phase_guard = $crate::phase::enter($name);
    };
}

/// Resets every global profiling aggregate: per-phase enter counts and
/// wall times, and (when counting) the per-phase allocation attribution,
/// with the live-heap peak rebased to the current live size. Thread-local
/// [`counters`] are unaffected. `pimdsm-lab bench` calls this between
/// measured runs.
pub fn reset() {
    phase::reset();
    alloc::reset();
}
