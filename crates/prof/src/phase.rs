//! Hierarchical wall-clock phase timers.
//!
//! A phase is a named scope entered via [`crate::phase!`]. Scopes nest:
//! entering a child remembers the parent and restores it on drop, and a
//! phase's recorded wall time is *inclusive* of its children (the
//! timer runs for the whole scope). Per phase, the crate accumulates an
//! **enter count** (deterministic) and **wall nanoseconds**
//! (non-deterministic, explicitly so-named); with the `count-alloc`
//! feature, allocations made while a phase is active on a thread are
//! attributed to it (see [`crate::alloc`]).
//!
//! Phase names are a closed vocabulary: [`registry::PHASES`]. The table
//! is what makes the allocator's attribution allocation-free (a
//! fixed-size atomic array indexed by phase slot), what gives bench
//! reports a stable schema, and what lint rule **P001** checks both
//! ways — an unregistered `phase!` name and a registered phase nothing
//! enters are both violations. To add a phase: add the name to
//! `PHASES` (sorted), then use it from exactly one subsystem.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// The canonical registry of profiler phase names.
pub mod registry {
    /// Every phase name `phase!` may use, sorted.
    pub const PHASES: &[&str] = &[
        "bench.measure",
        "cache.load",
        "cache.store",
        "point.build",
        "point.run",
        "suite.points",
        "suite.render",
        "svc.build",
    ];

    /// Whether `name` is a registered phase.
    pub fn is_known_phase(name: &str) -> bool {
        PHASES.binary_search(&name).is_ok()
    }
}

/// Attribution slots: one per registered phase plus slot 0 for code
/// running outside any phase.
pub(crate) const SLOTS: usize = registry::PHASES.len() + 1;

/// Display name of an attribution slot.
pub(crate) fn slot_name(slot: usize) -> &'static str {
    if slot == 0 {
        "(unphased)"
    } else {
        registry::PHASES[slot - 1]
    }
}

std::thread_local! {
    /// The active phase slot of this thread (0 = no phase). Const-init
    /// `Cell` so the allocator may read it with no lazy initialization
    /// and no destructor.
    static CURRENT: Cell<usize> = const { Cell::new(0) };
}

/// The current thread's active attribution slot (for the allocator).
#[cfg_attr(not(feature = "count-alloc"), allow(dead_code))]
#[inline]
pub(crate) fn current_slot() -> usize {
    CURRENT.try_with(Cell::get).unwrap_or(0)
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
/// Times each phase was entered, by slot. Deterministic.
static ENTERS: [AtomicU64; SLOTS] = [ZERO; SLOTS];
/// Inclusive wall nanoseconds per phase, by slot. NON-deterministic.
static WALL_NS: [AtomicU64; SLOTS] = [ZERO; SLOTS];

/// An active phase scope; records on drop and restores the parent phase.
#[derive(Debug)]
pub struct PhaseGuard {
    slot: usize,
    prev: usize,
    start: Instant,
}

/// Enters a registered phase on the current thread. Prefer the
/// [`crate::phase!`] macro, whose literal-only argument is what lint
/// rule P001 can check statically.
///
/// # Panics
///
/// Panics if `name` is not in [`registry::PHASES`].
pub fn enter(name: &str) -> PhaseGuard {
    let slot = registry::PHASES.binary_search(&name).unwrap_or_else(|_| {
        panic!("pimdsm-prof: phase {name:?} is not in phase::registry::PHASES (rule P001)")
    }) + 1;
    let prev = CURRENT.with(|c| c.replace(slot));
    PhaseGuard {
        slot,
        prev,
        start: Instant::now(),
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        ENTERS[self.slot].fetch_add(1, Relaxed);
        WALL_NS[self.slot].fetch_add(ns, Relaxed);
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Aggregate statistics of one phase (or of the `(unphased)` slot 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// Registered phase name, or `"(unphased)"`.
    pub name: &'static str,
    /// Times the phase was entered. **Deterministic.**
    pub enters: u64,
    /// Inclusive wall nanoseconds inside the phase. **Non-deterministic.**
    pub wall_ns: u64,
    /// Allocations attributed while active (0 without `count-alloc`).
    /// **Deterministic** for a deterministic program.
    pub allocs: u64,
    /// Bytes requested by those allocations. **Deterministic.**
    pub alloc_bytes: u64,
}

/// Snapshot of every slot's aggregates, `(unphased)` first, then the
/// registered phases in registry order.
pub fn stats() -> Vec<PhaseStats> {
    (0..SLOTS)
        .map(|slot| {
            let (allocs, alloc_bytes) = crate::alloc::phase_allocs(slot);
            PhaseStats {
                name: slot_name(slot),
                enters: ENTERS[slot].load(Relaxed),
                wall_ns: WALL_NS[slot].load(Relaxed),
                allocs,
                alloc_bytes,
            }
        })
        .collect()
}

/// Zeroes every slot's enter count and wall time.
pub(crate) fn reset() {
    for slot in 0..SLOTS {
        ENTERS[slot].store(0, Relaxed);
        WALL_NS[slot].store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_lookup_works() {
        assert!(
            registry::PHASES.windows(2).all(|w| w[0] < w[1]),
            "sorted, no dups"
        );
        assert!(registry::is_known_phase("point.run"));
        assert!(!registry::is_known_phase("point.rnu"));
    }

    #[test]
    fn scopes_nest_and_restore() {
        // Tests share the process-global table, so assert deltas only on
        // this thread's CURRENT slot, which is test-local.
        assert_eq!(current_slot(), 0);
        {
            crate::phase!("point.build");
            let outer = current_slot();
            assert_eq!(slot_name(outer), "point.build");
            {
                crate::phase!("point.run");
                assert_eq!(slot_name(current_slot()), "point.run");
            }
            assert_eq!(current_slot(), outer, "child restores parent");
        }
        assert_eq!(current_slot(), 0, "outermost scope restores unphased");
    }

    #[test]
    fn stats_cover_every_slot_in_order() {
        let st = stats();
        assert_eq!(st.len(), registry::PHASES.len() + 1);
        assert_eq!(st[0].name, "(unphased)");
        for (s, name) in st[1..].iter().zip(registry::PHASES) {
            assert_eq!(&s.name, name);
        }
    }

    #[test]
    #[should_panic(expected = "not in phase::registry::PHASES")]
    fn unregistered_phase_panics() {
        let _g = enter("no.such.phase");
    }
}
