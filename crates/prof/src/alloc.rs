//! Feature-gated counting global allocator.
//!
//! With the `count-alloc` feature, this module installs a
//! `#[global_allocator]` that wraps [`std::alloc::System`] and charges
//! every allocation to the current thread's active phase slot (see
//! [`mod@crate::phase`]). The accounting path performs **no allocation of
//! its own**: the phase slot is a const-initialized thread-local `Cell`
//! (no lazy init, no destructor) and the tallies are fixed-size arrays
//! of relaxed atomics indexed by slot.
//!
//! Determinism classification: allocation **counts and byte totals** are
//! deterministic for a deterministic program (the same code path makes
//! the same allocations), and bench treats them as such. The **peak live
//! heap** depends on how parallel workers interleave and is reported
//! with the non-deterministic timings instead.
//!
//! Without the feature every query returns zeros and
//! [`counting_enabled`] is `false`, so callers need no `cfg` of their
//! own.

/// Cumulative process-wide allocation tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Allocation calls (alloc/alloc_zeroed/realloc). **Deterministic.**
    pub allocs: u64,
    /// Bytes requested by those calls. **Deterministic.**
    pub bytes: u64,
    /// Currently live heap bytes. Non-deterministic under parallelism.
    pub live_bytes: u64,
    /// Peak live heap bytes since start/reset. **Non-deterministic.**
    pub peak_bytes: u64,
}

/// Whether the counting allocator is compiled in and active.
pub fn counting_enabled() -> bool {
    cfg!(feature = "count-alloc")
}

#[cfg(feature = "count-alloc")]
mod imp {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

    use crate::phase::{current_slot, SLOTS};

    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    /// Allocation calls per phase slot.
    static ALLOCS: [AtomicU64; SLOTS] = [ZERO; SLOTS];
    /// Bytes requested per phase slot.
    static BYTES: [AtomicU64; SLOTS] = [ZERO; SLOTS];
    /// Live heap bytes.
    static LIVE: AtomicU64 = AtomicU64::new(0);
    /// Peak of `LIVE` since start/reset.
    static PEAK: AtomicU64 = AtomicU64::new(0);

    /// Records one allocation of `size` bytes against the active phase.
    #[inline]
    fn record(size: usize) {
        let slot = current_slot();
        ALLOCS[slot].fetch_add(1, Relaxed);
        BYTES[slot].fetch_add(size as u64, Relaxed);
        let live = LIVE.fetch_add(size as u64, Relaxed) + size as u64;
        PEAK.fetch_max(live, Relaxed);
    }

    /// The counting wrapper around the system allocator.
    pub struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the bookkeeping touches only
    // atomics and a const-init TLS cell, neither of which can allocate
    // or unwind.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                record(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                record(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size() as u64, Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // One call, counted once; live size moves by the delta.
                record(new_size);
                LIVE.fetch_sub(layout.size() as u64, Relaxed);
            }
            p
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    pub fn totals() -> super::AllocTotals {
        super::AllocTotals {
            allocs: ALLOCS.iter().map(|a| a.load(Relaxed)).sum(),
            bytes: BYTES.iter().map(|a| a.load(Relaxed)).sum(),
            live_bytes: LIVE.load(Relaxed),
            peak_bytes: PEAK.load(Relaxed),
        }
    }

    pub fn phase_allocs(slot: usize) -> (u64, u64) {
        (ALLOCS[slot].load(Relaxed), BYTES[slot].load(Relaxed))
    }

    pub fn reset() {
        for slot in 0..SLOTS {
            ALLOCS[slot].store(0, Relaxed);
            BYTES[slot].store(0, Relaxed);
        }
        PEAK.store(LIVE.load(Relaxed), Relaxed);
    }
}

/// Cumulative allocation tallies (all zeros without `count-alloc`).
pub fn totals() -> AllocTotals {
    #[cfg(feature = "count-alloc")]
    {
        imp::totals()
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        AllocTotals::default()
    }
}

/// `(allocs, bytes)` attributed to a phase slot (zeros without
/// `count-alloc`).
pub(crate) fn phase_allocs(_slot: usize) -> (u64, u64) {
    #[cfg(feature = "count-alloc")]
    {
        imp::phase_allocs(_slot)
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        (0, 0)
    }
}

/// Zeroes the per-phase attribution and rebases the peak to the current
/// live size. Live bytes are real and are never reset.
pub(crate) fn reset() {
    #[cfg(feature = "count-alloc")]
    imp::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_reflect_the_build_features() {
        let t = totals();
        if counting_enabled() {
            // This test binary allocated plenty before reaching here.
            let v: Vec<u64> = (0..64).collect();
            assert!(totals().allocs > t.allocs || t.allocs > 0);
            assert!(totals().peak_bytes > 0);
            drop(v);
        } else {
            assert_eq!(t, AllocTotals::default());
        }
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn allocations_are_attributed_to_the_active_phase() {
        // Run on a dedicated thread: phase attribution reads this
        // thread's CURRENT slot, and other test threads must not charge
        // our phase concurrently... they can, but only ever *adding*, so
        // assert growth rather than exact deltas.
        let (a0, b0) = phase_allocs(0);
        let before = crate::phase::stats();
        {
            crate::phase!("point.build");
            std::hint::black_box(vec![0u8; 4096]);
        }
        let after = crate::phase::stats();
        let built = |st: &[crate::PhaseStats]| {
            st.iter()
                .find(|p| p.name == "point.build")
                .map(|p| (p.allocs, p.alloc_bytes))
                .unwrap()
        };
        let (a_before, b_before) = built(&before);
        let (a_after, b_after) = built(&after);
        assert!(a_after > a_before, "the vec was charged to point.build");
        assert!(b_after >= b_before + 4096, "its bytes were too");
        let _ = (a0, b0);
    }
}
