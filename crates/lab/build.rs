//! Embeds a workspace *source fingerprint* into the crate.
//!
//! The lab's content-addressed result cache must invalidate whenever the
//! simulator's behavior could have changed. Rather than trying to track
//! which crate a given experiment exercises, the build script hashes the
//! **contents** of every Rust source file in the workspace (plus the
//! manifests) into a single 64-bit FNV-1a digest and exports it as the
//! `PIMDSM_WORKSPACE_FINGERPRINT` compile-time environment variable.
//! Cache entries record the fingerprint they were produced under; a code
//! change — any code change — makes every old entry a miss.
//!
//! Hashing file contents (not mtimes) means a `touch` or a rebuild without
//! edits keeps the cache warm.

use std::fs;
use std::path::{Path, PathBuf};

fn main() {
    let manifest_dir = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap());
    let workspace = manifest_dir
        .parent()
        .and_then(Path::parent)
        .expect("crates/lab sits two levels below the workspace root")
        .to_path_buf();

    let mut files = Vec::new();
    collect_sources(&workspace.join("crates"), &mut files);
    collect_sources(&workspace.join("src"), &mut files);
    for name in ["Cargo.toml", "Cargo.lock"] {
        let p = workspace.join(name);
        if p.is_file() {
            files.push(p);
        }
    }
    // Sort by path so the digest does not depend on directory walk order.
    files.sort();

    let mut hash = Fnv::new();
    for f in &files {
        // Hash the workspace-relative path too, so renames invalidate.
        if let Ok(rel) = f.strip_prefix(&workspace) {
            hash.update(rel.to_string_lossy().as_bytes());
        }
        if let Ok(contents) = fs::read(f) {
            hash.update(&contents);
        }
        println!("cargo:rerun-if-changed={}", f.display());
    }
    // Re-run when files are added or removed anywhere in the tree.
    println!(
        "cargo:rerun-if-changed={}",
        workspace.join("crates").display()
    );
    println!("cargo:rerun-if-changed={}", workspace.join("src").display());
    println!(
        "cargo:rustc-env=PIMDSM_WORKSPACE_FINGERPRINT={:016x}",
        hash.finish()
    );
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Skip build outputs if any ever nest here.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            || path.file_name().is_some_and(|n| n == "Cargo.toml")
        {
            out.push(path);
        }
    }
}

/// 64-bit FNV-1a. Tiny, dependency-free, and stable across platforms —
/// exactly what a build-script fingerprint needs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}
