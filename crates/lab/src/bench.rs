//! `pimdsm-lab bench`: repeated-run performance measurement of a suite,
//! with a schema-versioned JSON document (`BENCH_<suite>.json`) and a
//! regression comparator.
//!
//! A bench is one uncounted warm-up sweep (absorbing lazy one-time
//! initialization) followed by `runs` measured sweeps, always cold (the
//! result cache is bypassed so every run simulates every point). Each
//! measured run records the wall time, the [deterministic counter
//! snapshot](pimdsm_prof::Snapshot) aggregated over its points, and —
//! when the counting allocator is linked in — the run's allocation
//! count/byte deltas. The document keeps *deterministic* quantities
//! (event, walk, and allocation counts) in a separate block from
//! *non-deterministic* ones (wall times, peak heap) so a diff between two
//! committed `BENCH_*.json` files shows at a glance whether the simulator
//! did different work or merely ran at a different speed.
//!
//! [`compare`] implements `bench --compare`: two documents are comparable
//! only if schema, suite, scale, thread count, and job count all match;
//! a comparable current document regresses if its median wall time
//! exceeds the baseline's by more than the configured threshold factor.

use std::time::Duration;

use pimdsm_obs::{json, JsonValue};
use pimdsm_prof::Snapshot;

use crate::exec::{run_sweep, Instrumentation, SweepResult};
use crate::suites::{Suite, SuiteCtx};

/// Schema tag every bench document carries; bump on layout changes.
pub const BENCH_SCHEMA: &str = "pimdsm-bench-v1";

/// How many of the slowest points a bench document lists.
const SLOWEST_POINTS: usize = 5;

/// One measured run of a suite.
#[derive(Debug, Clone)]
pub struct BenchSample {
    /// Wall time of the whole sweep (non-deterministic).
    pub wall: Duration,
    /// Deterministic counters aggregated over the run's points.
    pub counters: Snapshot,
    /// Allocations during the run (deterministic; 0 without `count-alloc`).
    pub allocs: u64,
    /// Bytes allocated during the run (deterministic; 0 without
    /// `count-alloc`).
    pub alloc_bytes: u64,
    /// Peak live heap observed by the end of the run (non-deterministic).
    pub peak_bytes: u64,
}

/// The outcome of [`measure_suite`]: per-run samples plus rollups.
#[derive(Debug)]
pub struct BenchResult {
    /// The benched suite's name.
    pub suite: &'static str,
    /// Points per run.
    pub points: usize,
    /// Worker threads the sweeps ran with.
    pub jobs: usize,
    /// The suite context (threads + scale) the points were built from.
    pub ctx: SuiteCtx,
    /// One sample per measured run, in run order.
    pub samples: Vec<BenchSample>,
    /// Per-phase rollup over all measured runs (from the phase registry).
    pub phases: Vec<pimdsm_prof::PhaseStats>,
    /// The last run's slowest points: `(point key, wall)`.
    pub slowest: Vec<(String, Duration)>,
}

impl BenchResult {
    fn sorted_walls(&self) -> Vec<Duration> {
        let mut walls: Vec<Duration> = self.samples.iter().map(|s| s.wall).collect();
        walls.sort();
        walls
    }

    /// Median wall time over the measured runs (lower middle for even
    /// counts — benches default to odd run counts).
    pub fn wall_median(&self) -> Duration {
        self.sorted_walls()[(self.samples.len() - 1) / 2]
    }

    /// Fastest run.
    pub fn wall_min(&self) -> Duration {
        self.sorted_walls()[0]
    }

    /// Slowest run.
    pub fn wall_max(&self) -> Duration {
        *self.sorted_walls().last().expect("at least one run")
    }

    /// Simulated events drained per wall-clock second, at the median run.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall_median().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.samples[0].counters.engine_events() as f64 / secs
    }

    /// Whether every deterministic field (counters and allocation deltas)
    /// was identical across the measured runs.
    pub fn stable_across_runs(&self) -> bool {
        let first = &self.samples[0];
        self.samples.iter().all(|s| {
            s.counters == first.counters
                && s.allocs == first.allocs
                && s.alloc_bytes == first.alloc_bytes
        })
    }

    /// Renders the schema-versioned bench document.
    pub fn to_json(&self) -> JsonValue {
        let ms = |d: Duration| round3(d.as_secs_f64() * 1e3);
        let first = &self.samples[0];
        JsonValue::obj([
            ("schema", JsonValue::str(BENCH_SCHEMA)),
            ("suite", JsonValue::str(self.suite)),
            (
                "config",
                JsonValue::obj([
                    ("jobs", JsonValue::usize(self.jobs)),
                    ("points", JsonValue::usize(self.points)),
                    ("runs", JsonValue::usize(self.samples.len())),
                    (
                        "scale",
                        JsonValue::obj([
                            ("iter_div", JsonValue::u64(self.ctx.scale.iter_div)),
                            ("size_div", JsonValue::u64(self.ctx.scale.size_div)),
                        ]),
                    ),
                    ("threads", JsonValue::usize(self.ctx.threads)),
                    ("warmup", JsonValue::usize(1)),
                ]),
            ),
            (
                "deterministic",
                JsonValue::obj([
                    ("alloc_bytes", JsonValue::u64(first.alloc_bytes)),
                    ("allocs", JsonValue::u64(first.allocs)),
                    (
                        "engine_events",
                        JsonValue::u64(first.counters.engine_events()),
                    ),
                    (
                        "engine_queue_peak",
                        JsonValue::u64(first.counters.engine_queue_peak()),
                    ),
                    (
                        "stable_across_runs",
                        JsonValue::Bool(self.stable_across_runs()),
                    ),
                    ("txn_steps", JsonValue::u64(first.counters.txn_steps())),
                    ("txn_walks", JsonValue::u64(first.counters.txn_walks())),
                ]),
            ),
            (
                "alloc",
                JsonValue::obj([
                    (
                        "counting",
                        JsonValue::Bool(pimdsm_prof::alloc::counting_enabled()),
                    ),
                    (
                        "peak_bytes",
                        JsonValue::u64(
                            self.samples.iter().map(|s| s.peak_bytes).max().unwrap_or(0),
                        ),
                    ),
                ]),
            ),
            (
                "wall_ms",
                JsonValue::obj([
                    ("max", JsonValue::num(ms(self.wall_max()))),
                    ("median", JsonValue::num(ms(self.wall_median()))),
                    ("min", JsonValue::num(ms(self.wall_min()))),
                    (
                        "per_run",
                        JsonValue::arr(self.samples.iter().map(|s| JsonValue::num(ms(s.wall)))),
                    ),
                ]),
            ),
            (
                "events_per_sec",
                JsonValue::num(self.events_per_sec().round()),
            ),
            (
                "phases",
                JsonValue::arr(self.phases.iter().map(|p| {
                    JsonValue::obj([
                        ("alloc_bytes", JsonValue::u64(p.alloc_bytes)),
                        ("allocs", JsonValue::u64(p.allocs)),
                        ("enters", JsonValue::u64(p.enters)),
                        ("name", JsonValue::str(p.name)),
                        ("wall_ms", JsonValue::num(round3(p.wall_ns as f64 / 1e6))),
                    ])
                })),
            ),
            (
                "slowest_points",
                JsonValue::arr(self.slowest.iter().map(|(key, wall)| {
                    JsonValue::obj([
                        ("point", JsonValue::str(key.clone())),
                        ("wall_ms", JsonValue::num(ms(*wall))),
                    ])
                })),
            ),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn check(result: &SweepResult) -> Result<(), String> {
    for o in &result.outcomes {
        if let Err(e) = &o.report {
            return Err(format!("point {} failed: {e}", o.spec.key()));
        }
    }
    Ok(())
}

/// Runs `suite` once uncounted (warm-up) and then `runs` measured times,
/// always bypassing the result cache so every run simulates every point.
///
/// The profiler's global phase/allocation state is reset after the
/// warm-up, so the returned phase rollup covers exactly the measured
/// region. Allocation deltas are captured immediately around each sweep;
/// the sample bookkeeping itself allocates only between those windows.
pub fn measure_suite(
    suite: &Suite,
    ctx: &SuiteCtx,
    runs: usize,
    jobs: usize,
    progress: bool,
) -> Result<BenchResult, String> {
    let runs = runs.max(1);
    let inst = Instrumentation {
        trace: false,
        trace_only: None,
        epoch: None,
    };
    if progress {
        eprintln!("[bench] {}: warm-up sweep...", suite.name);
    }
    let warm = run_sweep(suite.points(ctx), None, &inst, jobs, false);
    check(&warm)?;
    pimdsm_prof::reset();

    let points = warm.outcomes.len();
    let mut samples = Vec::with_capacity(runs);
    let mut slowest = Vec::new();
    for i in 0..runs {
        let specs = suite.points(ctx);
        let before = pimdsm_prof::alloc::totals();
        let result = {
            pimdsm_prof::phase!("bench.measure");
            run_sweep(specs, None, &inst, jobs, false)
        };
        let after = pimdsm_prof::alloc::totals();
        check(&result)?;
        samples.push(BenchSample {
            wall: result.wall,
            counters: result.counter_totals(),
            allocs: after.allocs - before.allocs,
            alloc_bytes: after.bytes - before.bytes,
            peak_bytes: after.peak_bytes,
        });
        if progress {
            eprintln!(
                "[bench] {}: run {}/{}: {:.2?}, {} events",
                suite.name,
                i + 1,
                runs,
                result.wall,
                result.counter_totals().engine_events()
            );
        }
        if i + 1 == runs {
            let mut by_wall: Vec<(String, Duration)> = result
                .outcomes
                .iter()
                .map(|o| (o.spec.key(), o.wall))
                .collect();
            by_wall.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            by_wall.truncate(SLOWEST_POINTS);
            slowest = by_wall;
        }
    }
    Ok(BenchResult {
        suite: suite.name,
        points,
        jobs,
        ctx: *ctx,
        samples,
        phases: pimdsm_prof::phase::stats(),
        slowest,
    })
}

// ------------------------------------------------------------- documents

/// The comparator's view of a bench document: identity fields plus the
/// median wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Suite name.
    pub suite: String,
    /// Application thread count the suite ran with.
    pub threads: u64,
    /// Problem-size divisor.
    pub size_div: u64,
    /// Iteration divisor.
    pub iter_div: u64,
    /// Sweep worker threads.
    pub jobs: u64,
    /// Measured runs.
    pub runs: u64,
    /// Median wall time in milliseconds.
    pub wall_median_ms: f64,
    /// Whether the document's deterministic fields were run-stable.
    pub stable: bool,
}

fn field<'d>(doc: &'d JsonValue, path: &[&str]) -> Result<&'d JsonValue, String> {
    let mut v = doc;
    for key in path {
        v = v
            .get(key)
            .ok_or_else(|| format!("missing field {:?}", path.join(".")))?;
    }
    Ok(v)
}

fn field_u64(doc: &JsonValue, path: &[&str]) -> Result<u64, String> {
    field(doc, path)?
        .as_u64()
        .ok_or_else(|| format!("field {:?} is not a number", path.join(".")))
}

/// Parses and validates a bench document: schema tag, identity fields,
/// per-run array consistency, and the deterministic counter block.
pub fn validate_doc(text: &str) -> Result<BenchDoc, String> {
    let doc = json::parse(text)?;
    let schema = field(&doc, &["schema"])?
        .as_str()
        .ok_or("schema is not a string")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "schema is {schema:?}, this tool reads {BENCH_SCHEMA:?}"
        ));
    }
    let suite = field(&doc, &["suite"])?
        .as_str()
        .ok_or("suite is not a string")?
        .to_string();
    let runs = field_u64(&doc, &["config", "runs"])?;
    let per_run = field(&doc, &["wall_ms", "per_run"])?
        .as_arr()
        .ok_or("wall_ms.per_run is not an array")?;
    if per_run.len() as u64 != runs {
        return Err(format!(
            "wall_ms.per_run has {} entries for {runs} runs",
            per_run.len()
        ));
    }
    for key in [
        "alloc_bytes",
        "allocs",
        "engine_events",
        "engine_queue_peak",
        "txn_steps",
        "txn_walks",
    ] {
        field_u64(&doc, &["deterministic", key])?;
    }
    let stable = matches!(
        field(&doc, &["deterministic", "stable_across_runs"])?,
        JsonValue::Bool(true)
    );
    if field(&doc, &["phases"])?.as_arr().is_none() {
        return Err("phases is not an array".into());
    }
    Ok(BenchDoc {
        suite,
        threads: field_u64(&doc, &["config", "threads"])?,
        size_div: field_u64(&doc, &["config", "scale", "size_div"])?,
        iter_div: field_u64(&doc, &["config", "scale", "iter_div"])?,
        jobs: field_u64(&doc, &["config", "jobs"])?,
        runs,
        wall_median_ms: field(&doc, &["wall_ms", "median"])?
            .as_f64()
            .ok_or("wall_ms.median is not a number")?,
        stable,
    })
}

/// What [`compare`] concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum Compared {
    /// Within threshold; the ratio is current/baseline median wall.
    Ok(f64),
    /// Median wall regressed past the threshold factor.
    Regression(f64),
    /// The documents don't measure the same thing; never compared.
    Incomparable(String),
}

/// Compares `current` against `baseline`: identity fields must match
/// exactly, and the current median wall must stay within
/// `threshold * baseline`. Wall time is the only regression axis —
/// deterministic-count changes are legitimate behavior changes and show
/// up in review as a `BENCH_*.json` diff instead.
pub fn compare(current: &BenchDoc, baseline: &BenchDoc, threshold: f64) -> Compared {
    let mut mismatches = Vec::new();
    let mut ident = |name: &str, cur: u64, base: u64| {
        if cur != base {
            mismatches.push(format!("{name}: current {cur} vs baseline {base}"));
        }
    };
    ident("config.threads", current.threads, baseline.threads);
    ident("config.scale.size_div", current.size_div, baseline.size_div);
    ident("config.scale.iter_div", current.iter_div, baseline.iter_div);
    ident("config.jobs", current.jobs, baseline.jobs);
    if current.suite != baseline.suite {
        mismatches.push(format!(
            "suite: current {:?} vs baseline {:?}",
            current.suite, baseline.suite
        ));
    }
    if !mismatches.is_empty() {
        return Compared::Incomparable(mismatches.join("; "));
    }
    let ratio = if baseline.wall_median_ms > 0.0 {
        current.wall_median_ms / baseline.wall_median_ms
    } else {
        1.0
    };
    if ratio > threshold {
        Compared::Regression(ratio)
    } else {
        Compared::Ok(ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::find;
    use pimdsm_workloads::Scale;

    fn ctx() -> SuiteCtx {
        SuiteCtx {
            threads: 4,
            scale: Scale::ci(),
        }
    }

    fn smoke_result() -> BenchResult {
        measure_suite(find("smoke").unwrap(), &ctx(), 2, 2, false).unwrap()
    }

    #[test]
    fn measure_smoke_produces_a_valid_stable_document() {
        let r = smoke_result();
        assert_eq!(r.samples.len(), 2);
        assert_eq!(r.points, 4);
        assert!(r.samples[0].counters.engine_events() > 0);
        assert!(r.samples[0].counters.txn_walks() > 0);
        // The deterministic counters must not depend on the run (timing
        // and scheduling vary; the simulated work must not). Allocation
        // deltas are excluded here only because sibling tests allocate
        // concurrently in this process; the CLI asserts them too.
        assert_eq!(r.samples[0].counters, r.samples[1].counters);
        let doc = validate_doc(&r.to_json().render_pretty()).unwrap();
        assert_eq!(doc.suite, "smoke");
        assert_eq!(doc.runs, 2);
        assert_eq!(doc.threads, 4);
        assert!(doc.wall_median_ms >= 0.0);
    }

    #[test]
    fn compare_flags_injected_regression_and_config_drift() {
        let r = smoke_result();
        let doc = validate_doc(&r.to_json().render_pretty()).unwrap();
        assert!(matches!(compare(&doc, &doc, 1.5), Compared::Ok(_)));

        // Injected regression: a baseline 10x faster than the current run.
        let mut fast = doc.clone();
        fast.wall_median_ms = (doc.wall_median_ms / 10.0).max(0.001);
        assert!(matches!(
            compare(&doc, &fast, 3.0),
            Compared::Regression(r) if r > 3.0
        ));

        let mut other = doc.clone();
        other.threads = doc.threads + 1;
        assert!(matches!(
            compare(&doc, &other, 3.0),
            Compared::Incomparable(_)
        ));
        let mut renamed = doc.clone();
        renamed.suite = "fig6".into();
        assert!(matches!(
            compare(&doc, &renamed, 3.0),
            Compared::Incomparable(_)
        ));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_doc("{ not json").is_err());
        assert!(validate_doc("{}").unwrap_err().contains("schema"));
        assert!(validate_doc(r#"{"schema": "pimdsm-bench-v0"}"#)
            .unwrap_err()
            .contains("pimdsm-bench-v1"));
        // A consistent document that then loses a deterministic field.
        let r = smoke_result();
        let good = r.to_json().render_pretty();
        let bad = good.replace("\"txn_walks\"", "\"txn_wlaks\"");
        assert!(validate_doc(&bad).unwrap_err().contains("txn_walks"));
    }
}
