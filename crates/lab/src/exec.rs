//! The parallel sweep executor.
//!
//! Each simulation point is strictly single-threaded and deterministic;
//! the executor exploits that by running *different* points on a small
//! pool of worker threads. Workers pull the next un-started index from a
//! shared atomic counter (work stealing in its simplest form: whichever
//! worker frees up first takes the next point), and results land in a
//! slot vector indexed by point position — so the outcome order, and
//! therefore every rendered table and JSON report, is byte-identical
//! whatever `--jobs` was.
//!
//! A panicking point (a spec bug, a workload deadlock) is caught with
//! [`std::panic::catch_unwind`] and recorded as that point's failure;
//! the other points complete and their results are still cached.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pimdsm::RunReport;
use pimdsm_engine::Cycle;
use pimdsm_obs::Tracer;
use pimdsm_prof::Snapshot;

use crate::cache::ResultCache;
use crate::spec::PointSpec;

/// Per-sweep instrumentation requests (the old per-binary Obs flags).
#[derive(Debug, Clone, Default)]
pub struct Instrumentation {
    /// Capture a Chrome trace of one run.
    pub trace: bool,
    /// Substring filter selecting which run to trace (`APP:LABEL` keys).
    pub trace_only: Option<String>,
    /// Sample every run's counters each `epoch` cycles.
    pub epoch: Option<Cycle>,
}

impl Instrumentation {
    /// The index of the point a `--trace` request captures: the first
    /// point whose key contains the filter, or the first point when no
    /// filter is given. `None` when tracing is off or nothing matches.
    pub fn traced_index(&self, points: &[PointSpec]) -> Option<usize> {
        if !self.trace {
            return None;
        }
        match &self.trace_only {
            None => (!points.is_empty()).then_some(0),
            Some(f) => points.iter().position(|p| p.key().contains(f)),
        }
    }
}

/// The result of one point of a sweep.
pub struct PointOutcome {
    /// The spec that produced it.
    pub spec: PointSpec,
    /// The report, or the panic message of a failed point.
    pub report: Result<RunReport, String>,
    /// Whether the report came from the cache.
    pub cache_hit: bool,
    /// Wall-clock time of this point (cache lookup or simulation).
    /// Non-deterministic by nature.
    pub wall: Duration,
    /// Deterministic profiler-counter deltas of this point's simulation
    /// (all zeros for a cache hit — nothing was simulated).
    pub counters: Snapshot,
}

/// The result of a whole sweep, in point order.
pub struct SweepResult {
    /// One outcome per input point, in input order.
    pub outcomes: Vec<PointOutcome>,
    /// Cache hits.
    pub hits: usize,
    /// Points actually simulated (including instrumented cache bypasses).
    pub misses: usize,
    /// The Chrome-trace JSON of the traced point, if one was traced.
    pub trace_json: Option<String>,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
    /// Summed per-point wall time spent actually simulating (misses).
    pub cold_wall: Duration,
    /// Summed per-point wall time spent serving cache hits.
    pub hit_wall: Duration,
}

impl SweepResult {
    /// Cache hit rate over the sweep, in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The first failure, if any point panicked.
    pub fn first_failure(&self) -> Option<(&PointSpec, &str)> {
        self.outcomes
            .iter()
            .find_map(|o| o.report.as_ref().err().map(|e| (&o.spec, e.as_str())))
    }

    /// Reports in point order; `None` if any point failed.
    pub fn reports(&self) -> Option<Vec<&RunReport>> {
        self.outcomes
            .iter()
            .map(|o| o.report.as_ref().ok())
            .collect()
    }

    /// Deterministic counter totals over the sweep: additive counters
    /// summed, queue peak max-merged. Order-free, so the totals do not
    /// depend on `--jobs`.
    pub fn counter_totals(&self) -> Snapshot {
        let mut total = Snapshot::default();
        for o in &self.outcomes {
            total.merge(&o.counters);
        }
        total
    }
}

/// Runs one point, instrumented as requested. Returns the report and the
/// serialized trace (when this point is the traced one).
fn run_point(spec: &PointSpec, traced: bool, epoch: Option<Cycle>) -> (RunReport, Option<String>) {
    let mut machine = {
        pimdsm_prof::phase!("point.build");
        spec.build_machine()
    };
    let tracer = traced.then(|| {
        let t = Tracer::enabled();
        machine.attach_tracer(t.clone());
        t
    });
    if let Some(e) = epoch {
        machine.sample_epochs(e);
    }
    let report = {
        pimdsm_prof::phase!("point.run");
        machine.run()
    };
    // The tracer is Rc-based (deliberately not Send), so the Chrome JSON
    // must be serialized here, inside the worker that owns it.
    (report, tracer.map(|t| t.to_chrome_json()))
}

/// Executes `points` on `jobs` workers, consulting `cache` when given.
///
/// Instrumented points — the traced point, and every point when epoch
/// sampling is on — bypass the cache in both directions: a cached report
/// carries no trace or epoch series, and an instrumented report must not
/// poison the cache with one.
pub fn run_sweep(
    points: Vec<PointSpec>,
    cache: Option<&ResultCache>,
    inst: &Instrumentation,
    jobs: usize,
    progress: bool,
) -> SweepResult {
    let start = Instant::now();
    let n = points.len();
    let traced_index = inst.traced_index(&points);
    if let (Some(i), true) = (traced_index, progress) {
        eprintln!("[lab] tracing run {}", points[i].key());
    }

    let next = AtomicUsize::new(0);
    let finished = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<PointOutcome>>> = Mutex::new((0..n).map(|_| None).collect());
    let trace_slot: Mutex<Option<String>> = Mutex::new(None);
    let workers = jobs.max(1).min(n.max(1));

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let spec = points[i].clone();
                let traced = traced_index == Some(i);
                let instrumented = traced || inst.epoch.is_some();

                let point_start = Instant::now();
                let mut cache_hit = false;
                let mut trace_json = None;
                let mut counters = Snapshot::default();
                let report = if let Some(r) = (!instrumented)
                    .then(|| cache.and_then(|c| c.load(&spec)))
                    .flatten()
                {
                    cache_hit = true;
                    Ok(r)
                } else {
                    let (caught, delta) = pimdsm_prof::counters::scoped(|| {
                        catch_unwind(AssertUnwindSafe(|| run_point(&spec, traced, inst.epoch)))
                    });
                    counters = delta;
                    match caught {
                        Ok((r, t)) => {
                            trace_json = t;
                            if !instrumented {
                                if let Some(c) = cache {
                                    c.store(&spec, &r);
                                }
                            }
                            Ok(r)
                        }
                        Err(panic) => Err(panic_message(panic)),
                    }
                };
                let wall = point_start.elapsed();

                if progress {
                    let done = finished.fetch_add(1, Ordering::Relaxed) + 1;
                    let tag = if cache_hit { "cached" } else { "ran" };
                    let status = if report.is_ok() { "" } else { " FAILED" };
                    eprintln!("[lab] [{done}/{n}] {tag} {}{status}", spec.key());
                }
                if let Some(t) = trace_json {
                    *trace_slot.lock().unwrap() = Some(t);
                }
                slots.lock().unwrap()[i] = Some(PointOutcome {
                    spec,
                    report,
                    cache_hit,
                    wall,
                    counters,
                });
            });
        }
    });

    let outcomes: Vec<PointOutcome> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every point produced an outcome"))
        .collect();
    let hits = outcomes.iter().filter(|o| o.cache_hit).count();
    let split = |hit: bool| {
        outcomes
            .iter()
            .filter(|o| o.cache_hit == hit)
            .map(|o| o.wall)
            .sum()
    };
    SweepResult {
        misses: n - hits,
        hits,
        trace_json: trace_slot.into_inner().unwrap(),
        wall: start.elapsed(),
        cold_wall: split(false),
        hit_wall: split(true),
        outcomes,
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Config, MachineSpec, WorkloadSpec};
    use pimdsm_obs::ToJson;
    use pimdsm_workloads::{AppId, Scale};

    fn points() -> Vec<PointSpec> {
        [AppId::Fft, AppId::Radix]
            .into_iter()
            .flat_map(|app| {
                [
                    Config::Numa,
                    Config::Agg {
                        ratio: 1,
                        pressure_pct: 75,
                    },
                ]
                .into_iter()
                .map(move |cfg| PointSpec {
                    workload: WorkloadSpec::App { app, threads: 2 },
                    machine: MachineSpec::Arch(cfg),
                    scale: Scale::ci(),
                    fault: None,
                    label: cfg.label(),
                })
            })
            .collect()
    }

    fn rendered(result: &SweepResult) -> Vec<String> {
        result
            .outcomes
            .iter()
            .map(|o| o.report.as_ref().unwrap().to_json().render_pretty())
            .collect()
    }

    #[test]
    fn parallel_equals_serial() {
        let inst = Instrumentation::default();
        let serial = run_sweep(points(), None, &inst, 1, false);
        let parallel = run_sweep(points(), None, &inst, 4, false);
        assert_eq!(
            rendered(&serial),
            rendered(&parallel),
            "--jobs must not change any result byte"
        );
    }

    #[test]
    fn panicking_point_is_isolated() {
        let mut pts = points();
        // An inconsistent spec: a reconfiguration plan on a workload
        // without a reconfiguration point panics inside build_machine.
        pts[1].machine = MachineSpec::CustomAgg {
            n_d: 2,
            pressure_pct: 75,
            tweak: crate::spec::Tweak::None,
            reconfig: Some((3, 1)),
        };
        let result = run_sweep(pts, None, &Instrumentation::default(), 2, false);
        assert!(result.outcomes[1].report.is_err(), "bad point fails");
        let (spec, msg) = result.first_failure().expect("failure surfaced");
        assert_eq!(spec.key(), result.outcomes[1].spec.key());
        assert!(msg.contains("reconfiguration"), "panic text kept: {msg}");
        assert!(
            result
                .outcomes
                .iter()
                .enumerate()
                .all(|(i, o)| i == 1 || o.report.is_ok()),
            "other points still complete"
        );
        assert!(result.reports().is_none());
    }

    #[test]
    fn traced_point_produces_chrome_json_and_bypasses_cache() {
        let dir = std::env::temp_dir().join(format!("pimdsm-lab-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::with_fingerprint(&dir, "test");
        let inst = Instrumentation {
            trace: true,
            trace_only: Some("Radix".into()),
            epoch: None,
        };
        let result = run_sweep(points(), Some(&cache), &inst, 2, false);
        let trace = result.trace_json.expect("trace captured");
        assert!(
            trace.starts_with("["),
            "chrome JSON: {}",
            &trace[..40.min(trace.len())]
        );
        // The traced point (first Radix point, index 2) bypassed the
        // cache; the rest were stored.
        let warm = run_sweep(
            points(),
            Some(&cache),
            &Instrumentation::default(),
            2,
            false,
        );
        assert_eq!(warm.hits, 3, "traced point was not cached");
        assert_eq!(warm.misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn epoch_sampling_attaches_series_and_bypasses_cache() {
        let inst = Instrumentation {
            trace: false,
            trace_only: None,
            epoch: Some(1000),
        };
        let dir = std::env::temp_dir().join(format!("pimdsm-lab-epoch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::with_fingerprint(&dir, "test");
        let result = run_sweep(points(), Some(&cache), &inst, 2, false);
        assert!(result
            .outcomes
            .iter()
            .all(|o| o.report.as_ref().unwrap().epochs.is_some()));
        assert_eq!(result.hits, 0);
        let warm = run_sweep(points(), Some(&cache), &inst, 2, false);
        assert_eq!(warm.hits, 0, "epoch-sampled sweeps never consult the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
