//! The declarative experiment model.
//!
//! A [`PointSpec`] fully describes **one** simulation point — which
//! workload, on which machine, at which scale — as plain data: no
//! closures, no floats with ambiguous text forms, nothing that cannot be
//! serialized into the stable *canonical string* the result cache hashes.
//! Every machine variation the evaluation needs (the paper's seven
//! Figure 6 configurations, Figure 9's explicit sizing, Figure 10-(a)'s
//! fattened reconfigurable nodes, and all four ablation knobs) is a
//! [`MachineSpec`]/[`Tweak`] variant, so adding a new sweep is adding
//! data, not code.

use pimdsm::{ArchSpec, Machine, ReconfigPlan};
use pimdsm_faults::{Durability, FaultPlan};
use pimdsm_mem::CacheCfg;
use pimdsm_svc::SvcSpec;
use pimdsm_workloads::{build, build_dbase, AppId, Scale};

/// The machine configurations of Figure 6, in presentation order.
///
/// (Previously `pimdsm_bench::Config`; it moved here when the run matrix
/// became part of the declarative spec model.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// CC-NUMA (pressure only sizes memory; NUMA bars are
    /// pressure-insensitive in the paper and plotted once).
    Numa,
    /// Flat COMA at `pressure_pct`% memory pressure.
    Coma {
        /// Memory pressure, percent (25 / 75).
        pressure_pct: u32,
    },
    /// AGG with a D:P ratio of `1/ratio` at `pressure_pct`%.
    Agg {
        /// P-nodes per D-node (1, 2 or 4).
        ratio: usize,
        /// Memory pressure, percent (25 / 75).
        pressure_pct: u32,
    },
}

impl Config {
    /// Label in the paper's style ("1/4AGG75", "COMA25", "NUMA").
    pub fn label(&self) -> String {
        match self {
            Config::Numa => "NUMA".to_string(),
            Config::Coma { pressure_pct } => format!("COMA{pressure_pct}"),
            Config::Agg {
                ratio,
                pressure_pct,
            } => format!("1/{ratio}AGG{pressure_pct}"),
        }
    }

    /// Memory pressure used for sizing.
    pub fn pressure(&self) -> f64 {
        match self {
            Config::Numa => 0.75,
            Config::Coma { pressure_pct } | Config::Agg { pressure_pct, .. } => {
                *pressure_pct as f64 / 100.0
            }
        }
    }

    fn canonical(&self) -> String {
        match self {
            Config::Numa => "numa".to_string(),
            Config::Coma { pressure_pct } => format!("coma:press={pressure_pct}"),
            Config::Agg {
                ratio,
                pressure_pct,
            } => format!("agg:ratio={ratio}:press={pressure_pct}"),
        }
    }
}

/// Which workload a point runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// A catalog application with `threads` application threads.
    App {
        /// Application.
        app: AppId,
        /// Thread count.
        threads: usize,
    },
    /// The Dbase model with distinct phase thread counts and optional
    /// computation-in-memory offload (Figures 10-(a)/(b)).
    Dbase {
        /// Hash-phase threads.
        hash_threads: usize,
        /// Join-phase threads.
        join_threads: usize,
        /// Run the select scans on the D-node processors.
        offload: bool,
    },
    /// A service workload (KV serving, graph analytics, streaming scans)
    /// from the `pimdsm-svc` subsystem.
    Svc(SvcSpec),
}

impl WorkloadSpec {
    fn canonical(&self) -> String {
        match self {
            WorkloadSpec::App { app, threads } => {
                format!("app={}:threads={threads}", app.name())
            }
            WorkloadSpec::Dbase {
                hash_threads,
                join_threads,
                offload,
            } => format!("dbase:hash={hash_threads}:join={join_threads}:offload={offload}"),
            WorkloadSpec::Svc(s) => format!("svc:{}", s.canonical()),
        }
    }

    /// Display name of the application.
    pub fn app_name(&self) -> &'static str {
        match self {
            WorkloadSpec::App { app, .. } => app.name(),
            WorkloadSpec::Dbase { .. } => "Dbase",
            WorkloadSpec::Svc(s) => s.name(),
        }
    }
}

/// A configuration adjustment applied to the standard AGG sizing —
/// the declarative form of the ablation binaries' closure tweaks.
///
/// All quantities are integers (percent, per-mille, factors) so the
/// canonical cache key never formats a float.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tweak {
    /// No adjustment.
    None,
    /// Figure 10-(a): every D-capable node carries `factor`× the per-node
    /// Data/on-chip capacity so the machine can repartition without
    /// overflowing the surviving directories (the paper's "fatter"
    /// memory, Fig. 2-(b)).
    FattenDnode {
        /// Capacity multiplier.
        factor: u64,
    },
    /// Scale the software handler cost table by `milli`/1000.
    HandlerScale {
        /// Scale factor in thousandths (700 = the paper's hardware 0.7×).
        milli: u32,
    },
    /// Set the on-chip fraction of P-node local memory to `pct`%.
    OnchipPct {
        /// Percent of the attraction memory resident on chip.
        pct: u64,
    },
    /// Reorganize the P-node attraction memory.
    AmOrg {
        /// Set associativity.
        ways: u32,
        /// Hash the set index.
        hashed: bool,
    },
    /// Enable/disable SharedList reclamation.
    SharedList {
        /// Whether the SharedList may be reclaimed.
        reuse: bool,
    },
}

impl Tweak {
    fn canonical(&self) -> String {
        match self {
            Tweak::None => "none".to_string(),
            Tweak::FattenDnode { factor } => format!("fatten={factor}"),
            Tweak::HandlerScale { milli } => format!("handler={milli}m"),
            Tweak::OnchipPct { pct } => format!("onchip={pct}%"),
            Tweak::AmOrg { ways, hashed } => format!("am={ways}w:hashed={hashed}"),
            Tweak::SharedList { reuse } => format!("sharedlist={reuse}"),
        }
    }

    /// Applies the adjustment to a resolved AGG configuration.
    pub fn apply(&self, cfg: &mut pimdsm_proto::AggCfg) {
        match *self {
            Tweak::None => {}
            Tweak::FattenDnode { factor } => {
                cfg.dnode.data_lines *= factor;
                cfg.dnode.onchip_lines *= factor;
            }
            Tweak::HandlerScale { milli } => {
                cfg.handler = cfg.handler.scaled(milli as f64 / 1000.0);
            }
            Tweak::OnchipPct { pct } => {
                cfg.p_onchip_lines = cfg.p_am.capacity_lines() * pct / 100;
            }
            Tweak::AmOrg { ways, hashed } => {
                let lines = cfg.p_am.capacity_lines();
                let rounded = lines.div_ceil(ways as u64) * ways as u64;
                let mut am = CacheCfg::new(rounded * 64, ways, 6);
                if hashed {
                    am = am.with_hashed_index();
                }
                cfg.p_am = am;
                cfg.p_onchip_lines = rounded / 2;
            }
            Tweak::SharedList { reuse } => {
                cfg.dnode.reuse_shared_list = reuse;
            }
        }
    }
}

/// Which machine a point runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineSpec {
    /// One of the standard Figure 6 configurations.
    Arch(Config),
    /// AGG with explicit per-node memory sizing (Figure 9 keeps total
    /// D-memory fixed while node counts vary).
    AggExplicit {
        /// D-node count.
        n_d: usize,
        /// Lines of tagged local memory per P-node.
        p_am_lines: u64,
        /// Data-array lines per D-node.
        d_data_lines: u64,
        /// Memory pressure, percent.
        pressure_pct: u32,
    },
    /// AGG with a [`Tweak`] applied after standard sizing, optionally
    /// carrying a dynamic-reconfiguration plan (Figure 10-(a)).
    CustomAgg {
        /// D-node count.
        n_d: usize,
        /// Memory pressure, percent.
        pressure_pct: u32,
        /// Configuration adjustment.
        tweak: Tweak,
        /// `(target_p, target_d)` for [`ReconfigPlan::paper`], if the run
        /// reconfigures dynamically.
        reconfig: Option<(usize, usize)>,
    },
}

impl MachineSpec {
    fn canonical(&self) -> String {
        match self {
            MachineSpec::Arch(c) => format!("arch:{}", c.canonical()),
            MachineSpec::AggExplicit {
                n_d,
                p_am_lines,
                d_data_lines,
                pressure_pct,
            } => format!("aggx:d={n_d}:pam={p_am_lines}:ddata={d_data_lines}:press={pressure_pct}"),
            MachineSpec::CustomAgg {
                n_d,
                pressure_pct,
                tweak,
                reconfig,
            } => {
                let rc = match reconfig {
                    Some((p, d)) => format!("{p}p{d}d"),
                    None => "none".to_string(),
                };
                format!(
                    "custom:d={n_d}:press={pressure_pct}:tweak={}:reconfig={rc}",
                    tweak.canonical()
                )
            }
        }
    }
}

/// A declarative fault scenario attached to a point: kill one node at a
/// fixed cycle, optionally bring it back, under a durability policy.
///
/// This is deliberately a narrow slice of [`FaultPlan`] — the slice the
/// `fig-fault` suite sweeps — kept as plain integers so it serializes
/// into the canonical cache key like every other spec field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Node to kill.
    pub kill_node: usize,
    /// Cycle at (or after) which the kill fires.
    pub kill_cycle: u64,
    /// Cycles after the kill at which the node rejoins, if it does.
    pub rejoin_after: Option<u64>,
    /// Durability policy charged for lost work.
    pub durability: Durability,
}

impl FaultSpec {
    fn canonical(&self) -> String {
        let rejoin = match self.rejoin_after {
            Some(d) => format!("+{d}"),
            None => "never".to_string(),
        };
        let dur = match self.durability {
            Durability::None => "none".to_string(),
            Durability::Checkpoint { interval } => format!("ckpt={interval}"),
            Durability::Replication => "repl".to_string(),
        };
        format!(
            "kill={}@{}:rejoin={rejoin}:dur={dur}",
            self.kill_node, self.kill_cycle
        )
    }

    /// Expands the spec into the runnable [`FaultPlan`].
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new()
            .kill_at(self.kill_node, self.kill_cycle)
            .with_durability(self.durability);
        if let Some(after) = self.rejoin_after {
            plan = plan.rejoin_at(self.kill_node, self.kill_cycle + after);
        }
        plan
    }
}

/// One fully-specified simulation point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Workload to run.
    pub workload: WorkloadSpec,
    /// Machine to run it on.
    pub machine: MachineSpec,
    /// Problem-size scaling.
    pub scale: Scale,
    /// Fault scenario injected into the run, if any.
    pub fault: Option<FaultSpec>,
    /// Display label attached to the run (part of the report, hence part
    /// of the cache key).
    pub label: String,
}

impl PointSpec {
    /// `"APP:LABEL"` — the key `--trace-only` filters match against.
    pub fn key(&self) -> String {
        format!("{}:{}", self.workload.app_name(), self.label)
    }

    /// The stable canonical form hashed into the cache key. Two specs
    /// producing the same canonical string are the same experiment.
    ///
    /// The `|fault=` segment is appended only when a fault scenario is
    /// attached, so every pre-existing fault-free key is byte-identical
    /// to what earlier versions produced and warm caches stay warm.
    pub fn canonical(&self) -> String {
        let mut c = format!(
            "v1|workload={}|machine={}|scale={}/{}|label={}",
            self.workload.canonical(),
            self.machine.canonical(),
            self.scale.size_div,
            self.scale.iter_div,
            self.label,
        );
        if let Some(f) = &self.fault {
            c.push_str("|fault=");
            c.push_str(&f.canonical());
        }
        c
    }

    /// Builds the (not yet run) machine this point describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (e.g. a reconfiguration plan on
    /// a workload without a reconfiguration point) — suite constructors
    /// are expected to produce valid specs.
    pub fn build_machine(&self) -> Machine {
        let workload = match self.workload {
            WorkloadSpec::App { app, threads } => build(app, threads, self.scale),
            WorkloadSpec::Dbase {
                hash_threads,
                join_threads,
                offload,
            } => build_dbase(hash_threads, join_threads, self.scale, offload),
            WorkloadSpec::Svc(s) => s.build(self.scale),
        };
        let machine = match self.machine {
            MachineSpec::Arch(config) => {
                let threads = match self.workload {
                    WorkloadSpec::App { threads, .. } => threads,
                    WorkloadSpec::Dbase { hash_threads, .. } => hash_threads,
                    WorkloadSpec::Svc(s) => s.threads(),
                };
                let spec = match config {
                    Config::Numa => ArchSpec::Numa,
                    Config::Coma { .. } => ArchSpec::Coma,
                    Config::Agg { ratio, .. } => ArchSpec::Agg {
                        n_d: (threads / ratio).max(1),
                    },
                };
                Machine::build(spec, workload, config.pressure())
            }
            MachineSpec::AggExplicit {
                n_d,
                p_am_lines,
                d_data_lines,
                pressure_pct,
            } => Machine::build(
                ArchSpec::AggExplicit {
                    n_d,
                    p_am_lines,
                    d_data_lines,
                },
                workload,
                pressure_pct as f64 / 100.0,
            ),
            MachineSpec::CustomAgg {
                n_d,
                pressure_pct,
                tweak,
                reconfig,
            } => {
                let mut m =
                    Machine::build_custom_agg(workload, pressure_pct as f64 / 100.0, n_d, |cfg| {
                        tweak.apply(cfg)
                    });
                if let Some((p, d)) = reconfig {
                    m.set_reconfig(ReconfigPlan::paper(p, d))
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                m
            }
        };
        let mut machine = machine.with_label(self.label.clone());
        if let Some(f) = &self.fault {
            machine.set_faults(f.plan());
        }
        machine
    }
}

/// The per-app AGG reduced-D ratio of Figure 6 (1/2 for the apps that
/// stress D-nodes, 1/4 otherwise).
pub fn reduced_ratio(app: AppId) -> usize {
    if app.wants_half_ratio() {
        2
    } else {
        4
    }
}

/// The seven machine configurations of Figure 6 for one application, in
/// presentation order: NUMA, COMA at 25/75% pressure, 1/1AGG at 25/75%,
/// and the app's reduced-D AGG at 25/75%.
pub fn fig6_configs(app: AppId) -> Vec<Config> {
    let r = reduced_ratio(app);
    vec![
        Config::Numa,
        Config::Coma { pressure_pct: 25 },
        Config::Coma { pressure_pct: 75 },
        Config::Agg {
            ratio: 1,
            pressure_pct: 25,
        },
        Config::Agg {
            ratio: 1,
            pressure_pct: 75,
        },
        Config::Agg {
            ratio: r,
            pressure_pct: 25,
        },
        Config::Agg {
            ratio: r,
            pressure_pct: 75,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> PointSpec {
        PointSpec {
            workload: WorkloadSpec::App {
                app: AppId::Fft,
                threads: 4,
            },
            machine: MachineSpec::Arch(Config::Agg {
                ratio: 2,
                pressure_pct: 75,
            }),
            scale: Scale::ci(),
            fault: None,
            label: "1/2AGG75".into(),
        }
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(Config::Numa.label(), "NUMA");
        assert_eq!(Config::Coma { pressure_pct: 25 }.label(), "COMA25");
        assert_eq!(
            Config::Agg {
                ratio: 4,
                pressure_pct: 75
            }
            .label(),
            "1/4AGG75"
        );
    }

    #[test]
    fn reduced_ratios_follow_table() {
        assert_eq!(reduced_ratio(AppId::Fft), 2);
        assert_eq!(reduced_ratio(AppId::Radix), 2);
        assert_eq!(reduced_ratio(AppId::Ocean), 2);
        assert_eq!(reduced_ratio(AppId::Barnes), 4);
        assert_eq!(reduced_ratio(AppId::Dbase), 4);
    }

    #[test]
    fn canonical_distinguishes_every_field() {
        let base = point();
        let mut other = base.clone();
        other.label = "X".into();
        assert_ne!(base.canonical(), other.canonical());

        let mut other = base.clone();
        other.scale = Scale::bench();
        assert_ne!(base.canonical(), other.canonical());

        let mut other = base.clone();
        other.workload = WorkloadSpec::App {
            app: AppId::Ocean,
            threads: 4,
        };
        assert_ne!(base.canonical(), other.canonical());

        let mut other = base.clone();
        other.machine = MachineSpec::Arch(Config::Agg {
            ratio: 2,
            pressure_pct: 25,
        });
        assert_ne!(base.canonical(), other.canonical());

        let mut other = base.clone();
        other.fault = Some(FaultSpec {
            kill_node: 1,
            kill_cycle: 20_000,
            rejoin_after: None,
            durability: Durability::None,
        });
        assert_ne!(base.canonical(), other.canonical());
        let mut third = other.clone();
        third.fault.as_mut().unwrap().durability = Durability::Checkpoint { interval: 5_000 };
        assert_ne!(other.canonical(), third.canonical());
    }

    #[test]
    fn svc_workloads_carry_their_own_canonical_namespace() {
        let mut p = point();
        p.workload = WorkloadSpec::Svc(SvcSpec::Kv {
            threads: 4,
            theta_milli: 900,
            write_pct: 10,
            open_loop: false,
        });
        assert_eq!(p.workload.app_name(), "KV");
        assert!(
            p.canonical().contains("workload=svc:kv:threads=4"),
            "{}",
            p.canonical()
        );
        assert_ne!(p.canonical(), point().canonical());
        let r = p.build_machine().run();
        let s = r.svc.expect("service run reports svc stats");
        assert!(s.requests > 0);
    }

    #[test]
    fn fault_free_canonical_has_no_fault_segment() {
        // Old cache entries must stay addressable: a point without a
        // fault renders the exact pre-fault key shape.
        assert!(!point().canonical().contains("fault="));
    }

    #[test]
    fn faulted_point_runs_and_reports_recovery() {
        let mut p = point();
        p.fault = Some(FaultSpec {
            kill_node: 1,
            kill_cycle: 5_000,
            rejoin_after: Some(20_000),
            durability: Durability::Replication,
        });
        let r = p.build_machine().run();
        let rs = r.faults.expect("faulted run carries recovery stats");
        assert_eq!(rs.kills, 1);
        assert_eq!(rs.rejoins, 1);
    }

    #[test]
    fn canonical_is_stable_across_clones() {
        assert_eq!(point().canonical(), point().clone().canonical());
    }

    #[test]
    fn point_runs_end_to_end() {
        let r = point().build_machine().run();
        assert_eq!(r.arch, "AGG");
        assert_eq!(r.label, "1/2AGG75");
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn key_matches_trace_filter_shape() {
        assert_eq!(point().key(), "FFT:1/2AGG75");
    }
}
