//! Declarative experiment orchestration for the PIM-DSM simulator.
//!
//! The lab turns the evaluation — every figure, table and ablation of the
//! paper, plus arbitrary user sweeps — into three orthogonal pieces:
//!
//! * [`spec`]: a [`PointSpec`] describes one simulation
//!   point as plain data with a stable *canonical string*;
//!   [`suites`] names the standard sweeps.
//! * [`exec`]: a work-stealing executor runs points on `--jobs` worker
//!   threads. Points are individually deterministic and results are
//!   ordered by position, so output bytes never depend on the job count.
//! * [`cache`]: a content-addressed result cache keyed by (canonical
//!   string, workspace source fingerprint) makes re-runs and interrupted
//!   sweeps resume instantly, and self-invalidates on any code change.
//! * [`mod@bench`]: repeated-run measurement of a suite (`pimdsm-lab bench`)
//!   producing schema-versioned `BENCH_<suite>.json` documents and a
//!   threshold-based regression comparator, on top of the `pimdsm-prof`
//!   counters threaded through the executor.
//!
//! The [`cli`] module is the single flag surface shared by the
//! `pimdsm-lab` binary and the thin per-figure wrappers in
//! `crates/bench`.

#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod cli;
pub mod exec;
pub mod spec;
pub mod suites;

pub use bench::{compare, measure_suite, validate_doc, BenchResult, Compared, BENCH_SCHEMA};
pub use cache::{workspace_fingerprint, ResultCache};
pub use exec::{run_sweep, Instrumentation, PointOutcome, SweepResult};
pub use spec::{Config, FaultSpec, MachineSpec, PointSpec, Tweak, WorkloadSpec};
pub use suites::{find, Suite, SuiteCtx, ALL_SUITES};
