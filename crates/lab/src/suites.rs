//! The named experiment suites.
//!
//! One [`Suite`] per figure/table of the evaluation (the former 13
//! `pimdsm-bench` binaries), plus a tiny `smoke` suite for CI. A suite is
//! two pure functions: `points` expands the suite into [`PointSpec`]s for
//! the executor, and `render` formats the resulting reports into exactly
//! the text block the old binary printed. Because points are plain data,
//! identical points in different suites (fig6 and fig7 run the same 49
//! simulations) share cache entries.

use std::fmt::Write as _;

use pimdsm::RunReport;
use pimdsm_engine::Cycle;
use pimdsm_faults::Durability;
use pimdsm_obs::JsonValue;
use pimdsm_proto::Level;
use pimdsm_svc::SvcSpec;
use pimdsm_workloads::{build, AppId, Scale, ALL_APPS};

use crate::spec::{
    fig6_configs, reduced_ratio, Config, FaultSpec, MachineSpec, PointSpec, Tweak, WorkloadSpec,
};

/// Shared sweep parameters: thread count and problem scale.
#[derive(Debug, Clone, Copy)]
pub struct SuiteCtx {
    /// Application thread count for the main comparison.
    pub threads: usize,
    /// Problem-size scaling.
    pub scale: Scale,
}

/// A named, declarative experiment suite.
pub struct Suite {
    /// CLI name (`pimdsm-lab run <name>`), also the `bin` of the report
    /// document and the `results/<name>.json` stem.
    pub name: &'static str,
    /// One-line description for `pimdsm-lab list`.
    pub title: &'static str,
    points: fn(&SuiteCtx) -> Vec<PointSpec>,
    render: fn(&SuiteCtx, &[&RunReport]) -> String,
    /// Machine-readable payload for suites whose content is *not* a set of
    /// [`RunReport`]s — the tables derive their rows from calibration and
    /// the catalog, so without this they would write no `results/` JSON.
    data: Option<fn(&SuiteCtx) -> JsonValue>,
    /// Epoch-sampling interval the suite itself requires (`fig-fault`
    /// plots degraded-throughput time series). Forces instrumented —
    /// cache-bypassing — runs even without `--metrics`; a cached report
    /// carries no epoch series, so a suite that renders one can never be
    /// served from cache.
    pub epoch: Option<Cycle>,
}

impl Suite {
    /// Expands the suite into its simulation points.
    pub fn points(&self, ctx: &SuiteCtx) -> Vec<PointSpec> {
        pimdsm_prof::phase!("suite.points");
        (self.points)(ctx)
    }

    /// Renders the suite's text block from reports aligned with
    /// [`Suite::points`] order.
    pub fn render(&self, ctx: &SuiteCtx, reports: &[&RunReport]) -> String {
        pimdsm_prof::phase!("suite.render");
        (self.render)(ctx, reports)
    }

    /// The suite's report-independent JSON payload, if it defines one.
    pub fn data(&self, ctx: &SuiteCtx) -> Option<JsonValue> {
        self.data.map(|f| f(ctx))
    }
}

/// Every suite, in the order `run --all` executes them.
pub static ALL_SUITES: &[Suite] = &[
    Suite {
        name: "fig6",
        title: "Figure 6: normalized execution time, Processor/Memory split",
        points: fig6_points,
        render: fig6_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "fig7",
        title: "Figure 7: aggregated read latency by satisfaction level",
        points: fig6_points, // same 49 runs; the render differs
        render: fig7_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "fig8",
        title: "Figure 8: D-node memory utilization by line state",
        points: fig8_points,
        render: fig8_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "fig9",
        title: "Figure 9: execution time across the (#P, #D) design space",
        points: fig9_points,
        render: fig9_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "fig10a",
        title: "Figure 10-(a): dynamic reconfiguration of Dbase",
        points: fig10a_points,
        render: fig10a_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "fig10b",
        title: "Figure 10-(b): computation in memory for Dbase",
        points: fig10b_points,
        render: fig10b_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "table1",
        title: "Table 1: uncontended round-trip latencies, paper vs measured",
        points: no_points,
        render: table1_render,
        data: Some(table1_data),
        epoch: None,
    },
    Suite {
        name: "table2",
        title: "Table 2: protocol handler costs",
        points: no_points,
        render: table2_render,
        data: Some(table2_data),
        epoch: None,
    },
    Suite {
        name: "table3",
        title: "Table 3: applications and scaled problem sizes",
        points: no_points,
        render: table3_render,
        data: Some(table3_data),
        epoch: None,
    },
    Suite {
        name: "ablation_assoc",
        title: "Ablation: attraction-memory associativity and index hashing",
        points: assoc_points,
        render: assoc_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "ablation_handlers",
        title: "Ablation: software protocol-handler cost sensitivity",
        points: handlers_points,
        render: handlers_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "ablation_onchip",
        title: "Ablation: on-chip fraction of P-node local memory",
        points: onchip_points,
        render: onchip_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "ablation_sharedlist",
        title: "Ablation: D-node SharedList reclamation policy",
        points: sharedlist_points,
        render: sharedlist_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "fig-fault",
        title: "Fault injection: degraded throughput and recovery across AGG/COMA/NUMA",
        points: fault_points,
        render: fault_render,
        data: None,
        epoch: Some(FAULT_EPOCH),
    },
    Suite {
        name: "fig-svc",
        title: "Service workloads: KV serving, graph analytics and streaming scans",
        points: svc_points,
        render: svc_render,
        data: None,
        epoch: None,
    },
    Suite {
        name: "smoke",
        title: "CI smoke sweep: 2 apps x 2 configs",
        points: smoke_points,
        render: smoke_render,
        data: None,
        epoch: None,
    },
];

/// Looks a suite up by CLI name.
pub fn find(name: &str) -> Option<&'static Suite> {
    ALL_SUITES.iter().find(|s| s.name == name)
}

fn no_points(_: &SuiteCtx) -> Vec<PointSpec> {
    Vec::new()
}

// ---------------------------------------------------------------- fig6/7

fn fig6_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let mut points = Vec::new();
    for app in ALL_APPS {
        for cfg in fig6_configs(app) {
            points.push(PointSpec {
                workload: WorkloadSpec::App {
                    app,
                    threads: ctx.threads,
                },
                machine: MachineSpec::Arch(cfg),
                scale: ctx.scale,
                fault: None,
                label: cfg.label(),
            });
        }
    }
    points
}

fn fig6_render(ctx: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: execution time normalized to NUMA (Processor / Memory split)"
    );
    let _ = writeln!(
        out,
        "{} application threads; AGG pressures in the label\n",
        ctx.threads
    );
    let mut it = reports.iter();
    for app in ALL_APPS {
        let rows: Vec<(String, f64, f64)> = fig6_configs(app)
            .iter()
            .map(|_| {
                let r = it.next().expect("report per config");
                (r.label.clone(), r.processor_time(), r.memory_time())
            })
            .collect();
        let base = rows
            .first()
            .map(|(_, p, m)| p + m)
            .filter(|t| *t > 0.0)
            .unwrap_or(1.0);
        let _ = writeln!(out, "\n== {} (normalized to {}) ==", app.name(), rows[0].0);
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10}",
            "config", "Processor", "Memory", "Total"
        );
        for (label, proc_t, mem_t) in &rows {
            let _ = writeln!(
                out,
                "{:<12} {:>10.3} {:>10.3} {:>10.3}",
                label,
                proc_t / base,
                mem_t / base,
                (proc_t + mem_t) / base
            );
        }
    }
    out
}

fn fig7_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7: aggregated read latency by satisfaction level, normalized to NUMA\n"
    );
    let mut it = reports.iter();
    for app in ALL_APPS {
        let _ = writeln!(out, "== {} ==", app.name());
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "config", "FLC", "SLC", "Memory", "2Hop", "3Hop", "Total"
        );
        let mut base = None;
        for _ in fig6_configs(app) {
            let r = it.next().expect("report per config");
            let lat = r.read_latency_by_level();
            let total: u64 = lat.iter().sum();
            let b = *base.get_or_insert(total.max(1)) as f64;
            let _ = write!(out, "{:<12}", r.label);
            for l in Level::ALL {
                let _ = write!(out, " {:>8.3}", lat[l.index()] as f64 / b);
            }
            let _ = writeln!(out, " {:>8.3}", total as f64 / b);
        }
        let _ = writeln!(out);
    }
    out
}

// ------------------------------------------------------------------ fig8

const FIG8_PRESSURES: [u32; 3] = [75, 50, 25];

fn fig8_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let mut points = Vec::new();
    for app in ALL_APPS {
        for pct in FIG8_PRESSURES {
            points.push(PointSpec {
                workload: WorkloadSpec::App {
                    app,
                    threads: ctx.threads,
                },
                machine: MachineSpec::Arch(Config::Agg {
                    ratio: reduced_ratio(app),
                    pressure_pct: pct,
                }),
                scale: ctx.scale,
                fault: None,
                label: format!("AGG{pct}"),
            });
        }
    }
    points
}

fn fig8_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8: state of memory lines, normalized to D-node storage = 100"
    );
    let _ = writeln!(
        out,
        "{:<8} {:<6} {:>10} {:>11} {:>10} {:>9} {:>8}",
        "appl.", "press", "DirtyInP", "SharedInP", "DNodeOnly", "OnDisk", "Unused"
    );
    let mut it = reports.iter();
    for app in ALL_APPS {
        for pct in FIG8_PRESSURES {
            let r = it.next().expect("report per pressure");
            let c = &r.census;
            let norm = |x: u64| 100.0 * x as f64 / c.d_slots.max(1) as f64;
            let _ = writeln!(
                out,
                "{:<8} AGG{:<3} {:>10.1} {:>11.1} {:>10.1} {:>9.1} {:>8.1}",
                app.name(),
                pct,
                norm(c.dirty_in_p),
                norm(c.shared_in_p),
                norm(c.d_node_only),
                norm(c.paged_out),
                (c.unused_slots() as f64) * 100.0 / c.d_slots.max(1) as f64,
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(DirtyInP lines keep no home place holder; SharedInP lines may share their"
    );
    let _ = writeln!(
        out,
        " slot via the SharedList; negative Unused means SharedList slots were reused)"
    );
    out
}

// ------------------------------------------------------------------ fig9

const FIG9_P: [usize; 5] = [2, 4, 8, 16, 32];
const FIG9_D: [usize; 4] = [2, 4, 8, 16];

/// The fixed sizing of Figure 9: total D-memory and per-P memory from the
/// 2P&2D reference configuration at 75% pressure.
fn fig9_sizing(app: AppId, scale: Scale) -> (u64, u64) {
    let reference = build(app, 2, scale);
    let ref_cfg = pimdsm::config::resolve(&*reference, 0.75);
    let total_d_lines = ref_cfg.total_mem_lines / 2;
    let p_am_lines = ref_cfg.total_mem_lines / 2 / 2;
    (total_d_lines, p_am_lines)
}

fn fig9_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let mut points = Vec::new();
    for app in ALL_APPS {
        let (total_d_lines, p_am_lines) = fig9_sizing(app, ctx.scale);
        for p in FIG9_P {
            for d in FIG9_D {
                if p + d > 64 {
                    continue;
                }
                points.push(PointSpec {
                    workload: WorkloadSpec::App { app, threads: p },
                    machine: MachineSpec::AggExplicit {
                        n_d: d,
                        p_am_lines,
                        d_data_lines: (total_d_lines / d as u64).max(512),
                        pressure_pct: 75,
                    },
                    scale: ctx.scale,
                    fault: None,
                    label: format!("{p}P&{d}D"),
                });
            }
        }
    }
    points
}

fn fig9_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9: execution time (cycles) across P- and D-node counts"
    );
    let _ = writeln!(
        out,
        "problem size and total D-memory fixed (sized at 2P&2D, AGG75)\n"
    );
    let mut it = reports.iter();
    for app in ALL_APPS {
        let _ = writeln!(out, "== {} (rows: #P, cols: #D) ==", app.name());
        let _ = write!(out, "{:>6}", "");
        for d in FIG9_D {
            let _ = write!(out, " {d:>12}");
        }
        let _ = writeln!(out);
        for p in FIG9_P {
            let _ = write!(out, "{p:>6}");
            for d in FIG9_D {
                if p + d > 64 {
                    let _ = write!(out, " {:>12}", "-");
                    continue;
                }
                let r = it.next().expect("report per grid cell");
                let _ = write!(out, " {:>12}", r.total_cycles);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
    }
    out
}

// ---------------------------------------------------------------- fig10a

/// The "fatter" memory factor of Figure 10-(a): every D-capable node
/// carries what a 4-D-node machine needs per node.
fn fig10a_fatten(n_d: usize) -> u64 {
    (16 / n_d.min(16)).max(1) as u64
}

fn fig10a_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let custom = |n_d: usize, reconfig| MachineSpec::CustomAgg {
        n_d,
        pressure_pct: 75,
        tweak: Tweak::FattenDnode {
            factor: fig10a_fatten(n_d),
        },
        reconfig,
    };
    vec![
        PointSpec {
            workload: WorkloadSpec::Dbase {
                hash_threads: 16,
                join_threads: 16,
                offload: false,
            },
            machine: custom(16, None),
            scale: ctx.scale,
            fault: None,
            label: "static 16P&16D".into(),
        },
        PointSpec {
            workload: WorkloadSpec::Dbase {
                hash_threads: 28,
                join_threads: 28,
                offload: false,
            },
            machine: custom(4, None),
            scale: ctx.scale,
            fault: None,
            label: "static 28P&4D".into(),
        },
        PointSpec {
            workload: WorkloadSpec::Dbase {
                hash_threads: 16,
                join_threads: 28,
                offload: false,
            },
            machine: custom(16, Some((28, 4))),
            scale: ctx.scale,
            fault: None,
            label: "dynamic 16&16->28&4".into(),
        },
    ]
}

fn fig10a_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let (r_16, r_28, r_dyn) = (reports[0], reports[1], reports[2]);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10-(a): Dbase on a 32-node AGG machine, 75% pressure"
    );
    let _ = writeln!(
        out,
        "(every D-capable node carries the paper's 4x \"fatter\" memory, Fig. 2-(b))\n"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>12} {:>10}",
        "configuration", "total cycles", "vs 16&16", "reconf"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>12} {:>10}",
        "static 16P & 16D", r_16.total_cycles, "1.000", "-"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>12.3} {:>10}",
        "static 28P & 4D",
        r_28.total_cycles,
        r_28.total_cycles as f64 / r_16.total_cycles as f64,
        "-"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>12.3} {:>10}",
        "dynamic 16&16 -> 28&4",
        r_dyn.total_cycles,
        r_dyn.total_cycles as f64 / r_16.total_cycles as f64,
        r_dyn.reconfig_cycles
    );
    let best_static = r_16.total_cycles.min(r_28.total_cycles);
    let gain = 100.0 * (1.0 - r_dyn.total_cycles as f64 / best_static as f64);
    let _ = writeln!(
        out,
        "\ndynamic reconfiguration vs best static: {gain:+.1}% \
         (paper reports a 14% reduction)"
    );
    out
}

// ---------------------------------------------------------------- fig10b

const FIG10B_PD: [(usize, usize); 3] = [(16, 16), (24, 8), (28, 4)];

fn fig10b_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let mut points = Vec::new();
    for (p, d) in FIG10B_PD {
        for (offload, tag) in [(false, "plain"), (true, "opt")] {
            points.push(PointSpec {
                workload: WorkloadSpec::Dbase {
                    hash_threads: p,
                    join_threads: p,
                    offload,
                },
                machine: MachineSpec::CustomAgg {
                    n_d: d,
                    pressure_pct: 75,
                    tweak: Tweak::None,
                    reconfig: None,
                },
                scale: ctx.scale,
                fault: None,
                label: format!("{p}P&{d}D {tag}"),
            });
        }
    }
    points
}

fn fig10b_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10-(b): Dbase with computation in memory (AGG, 75% pressure)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>12}",
        "P & D", "Plain", "Opt", "reduction"
    );
    let mut it = reports.iter();
    for (p, d) in FIG10B_PD {
        let plain = it.next().expect("plain report");
        let opt = it.next().expect("opt report");
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>11.1}%",
            format!("{p}P & {d}D"),
            plain.total_cycles,
            opt.total_cycles,
            100.0 * (1.0 - opt.total_cycles as f64 / plain.total_cycles as f64)
        );
    }
    let _ = writeln!(
        out,
        "\n(paper reports ~70% reduction across configurations)"
    );
    out
}

// ---------------------------------------------------------------- tables

fn table1_render(_: &SuiteCtx, _: &[&RunReport]) -> String {
    use pimdsm::calibration::{measure, PAPER};
    let m = measure();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1: uncontended round-trip latencies (CPU cycles)"
    );
    let _ = writeln!(out, "{:<28} {:>8} {:>10}", "device", "paper", "measured");
    let rows = [
        ("On-Chip L1", PAPER.l1, m.l1),
        ("On-Chip L2", PAPER.l2, m.l2),
        ("Local memory, on-chip", PAPER.mem_on, m.mem_on),
        ("Local memory, off-chip", PAPER.mem_off, m.mem_off),
        ("Remote memory, 2-node hop", PAPER.hop2, m.hop2),
        ("Remote memory, 3-node hop", PAPER.hop3, m.hop3),
    ];
    for (name, paper, measured) in rows {
        let delta = 100.0 * (measured as f64 - paper as f64) / paper as f64;
        let _ = writeln!(out, "{name:<28} {paper:>8} {measured:>10}   ({delta:+.1}%)");
    }
    out
}

fn table2_render(_: &SuiteCtx, _: &[&RunReport]) -> String {
    use pimdsm_proto::{ControllerKind, HandlerCosts, HandlerKind};
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: protocol handler costs (processor cycles)");
    for (label, kind) in [
        (
            "AGG (software handlers on D-node processors)",
            ControllerKind::Software,
        ),
        (
            "NUMA/COMA (custom hardware controllers, 70%)",
            ControllerKind::Hardware,
        ),
    ] {
        let c = HandlerCosts::paper(kind);
        let _ = writeln!(out, "\n{label}");
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>22}",
            "handler", "latency", "occupancy"
        );
        let (l, o) = c.cost(HandlerKind::Read, 0);
        let _ = writeln!(out, "{:<18} {:>8} {:>22}", "Read", l, o);
        let (l, o) = c.cost(HandlerKind::ReadExclusive, 0);
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>14} + {}/inval",
            "Read Exclusive", l, o, c.per_inval
        );
        let (l, o) = c.cost(HandlerKind::Acknowledgment, 0);
        let _ = writeln!(out, "{:<18} {:>8} {:>22}", "Acknowledgment", l, o);
        let (l, o) = c.cost(HandlerKind::WriteBack, 0);
        let _ = writeln!(out, "{:<18} {:>8} {:>22}", "Write Back", l, o);
    }
    out
}

fn table3_render(ctx: &SuiteCtx, _: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3: applications (scaled footprints at the current scale, {} threads)",
        ctx.threads
    );
    let _ = writeln!(
        out,
        "{:<8} {:<48} {:>9} {:>12}",
        "appl.", "description & problem size (paper)", "L1,L2 KB", "scaled fp"
    );
    for app in ALL_APPS {
        let (l1, l2) = app.cache_kb();
        let w = build(app, ctx.threads, ctx.scale);
        let _ = writeln!(
            out,
            "{:<8} {:<48} {:>4},{:<4} {:>9} KiB",
            app.name(),
            app.description(),
            l1,
            l2,
            w.footprint_bytes() / 1024
        );
    }
    let _ = writeln!(
        out,
        "\n(paper problem sizes are scaled by 1/{} and iteration counts by 1/{};",
        ctx.scale.size_div, ctx.scale.iter_div
    );
    let _ = writeln!(
        out,
        " memory pressure is preserved because machine DRAM is sized from the scaled footprint)"
    );
    out
}

fn table1_data(_: &SuiteCtx) -> JsonValue {
    use pimdsm::calibration::{measure, PAPER};
    let m = measure();
    let rows = [
        ("on_chip_l1", PAPER.l1, m.l1),
        ("on_chip_l2", PAPER.l2, m.l2),
        ("local_mem_on_chip", PAPER.mem_on, m.mem_on),
        ("local_mem_off_chip", PAPER.mem_off, m.mem_off),
        ("remote_2hop", PAPER.hop2, m.hop2),
        ("remote_3hop", PAPER.hop3, m.hop3),
    ];
    JsonValue::obj([(
        "latencies",
        JsonValue::arr(rows.into_iter().map(|(device, paper, measured)| {
            JsonValue::obj([
                ("device", JsonValue::str(device)),
                ("measured", JsonValue::u64(measured)),
                ("paper", JsonValue::u64(paper)),
            ])
        })),
    )])
}

fn table2_data(_: &SuiteCtx) -> JsonValue {
    use pimdsm_proto::{ControllerKind, HandlerCosts, HandlerKind};
    let controllers = [
        ("agg_software", ControllerKind::Software),
        ("numa_coma_hardware", ControllerKind::Hardware),
    ];
    JsonValue::obj([(
        "controllers",
        JsonValue::arr(controllers.into_iter().map(|(name, kind)| {
            let c = HandlerCosts::paper(kind);
            let handler = |h: HandlerKind| {
                let (latency, occupancy) = c.cost(h, 0);
                JsonValue::obj([
                    ("latency", JsonValue::u64(latency)),
                    ("occupancy", JsonValue::u64(occupancy)),
                ])
            };
            JsonValue::obj([
                ("acknowledgment", handler(HandlerKind::Acknowledgment)),
                ("controller", JsonValue::str(name)),
                ("per_inval", JsonValue::u64(c.per_inval)),
                ("read", handler(HandlerKind::Read)),
                ("read_exclusive", handler(HandlerKind::ReadExclusive)),
                ("write_back", handler(HandlerKind::WriteBack)),
            ])
        })),
    )])
}

fn table3_data(ctx: &SuiteCtx) -> JsonValue {
    JsonValue::obj([
        (
            "apps",
            JsonValue::arr(ALL_APPS.into_iter().map(|app| {
                let (l1, l2) = app.cache_kb();
                let w = build(app, ctx.threads, ctx.scale);
                JsonValue::obj([
                    ("app", JsonValue::str(app.name())),
                    ("description", JsonValue::str(app.description())),
                    ("l1_kb", JsonValue::u64(l1)),
                    ("l2_kb", JsonValue::u64(l2)),
                    (
                        "scaled_footprint_kib",
                        JsonValue::u64(w.footprint_bytes() / 1024),
                    ),
                ])
            })),
        ),
        (
            "scale",
            JsonValue::obj([
                ("iter_div", JsonValue::u64(ctx.scale.iter_div)),
                ("size_div", JsonValue::u64(ctx.scale.size_div)),
            ]),
        ),
        ("threads", JsonValue::u64(ctx.threads as u64)),
    ])
}

// ------------------------------------------------------------- ablations

const ASSOC_ORGS: [(&str, u32, bool); 5] = [
    ("direct-mapped", 1, false),
    ("2-way", 2, false),
    ("4-way (paper)", 4, false),
    ("4-way + hashed index", 4, true),
    ("8-way + hashed index", 8, true),
];

fn assoc_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    ASSOC_ORGS
        .iter()
        .map(|&(label, ways, hashed)| PointSpec {
            workload: WorkloadSpec::App {
                app: AppId::Swim,
                threads: ctx.threads,
            },
            machine: MachineSpec::CustomAgg {
                n_d: ctx.threads,
                pressure_pct: 75,
                tweak: Tweak::AmOrg { ways, hashed },
                reconfig: None,
            },
            scale: ctx.scale,
            fault: None,
            label: label.to_string(),
        })
        .collect()
}

fn assoc_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: attraction-memory organization (Swim, 1/1 ratio, 75% pressure)\n"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>12} {:>10}",
        "organization", "total cycles", "write-backs", "2hop"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:<22} {:>14} {:>12} {:>10}",
            r.label,
            r.total_cycles,
            r.proto.write_backs,
            r.proto.reads_by_level[Level::Hop2.index()]
        );
    }
    out
}

const HANDLER_MILLIS: [u32; 4] = [700, 1000, 1500, 2000];

fn handlers_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    HANDLER_MILLIS
        .iter()
        .map(|&milli| PointSpec {
            workload: WorkloadSpec::App {
                app: AppId::Dbase,
                threads: ctx.threads,
            },
            machine: MachineSpec::CustomAgg {
                n_d: (ctx.threads / 2).max(1),
                pressure_pct: 75,
                tweak: Tweak::HandlerScale { milli },
                reconfig: None,
            },
            scale: ctx.scale,
            fault: None,
            label: format!("{:.1}x", milli as f64 / 1000.0),
        })
        .collect()
}

fn handlers_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: AGG handler-cost sensitivity (Dbase, 1/2 ratio, 75% pressure)\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>10}",
        "factor", "total cycles", "vs 0.7x"
    );
    let mut base: Option<u64> = None;
    for r in reports {
        let b = *base.get_or_insert(r.total_cycles);
        let _ = writeln!(
            out,
            "{:<10} {:>14} {:>10.3}",
            r.label,
            r.total_cycles,
            r.total_cycles as f64 / b as f64
        );
    }
    let _ = writeln!(
        out,
        "\n(0.7x is the hardware-controller cost the paper grants NUMA and COMA)"
    );
    out
}

const ONCHIP_PCTS: [u64; 4] = [100, 50, 25, 0];

fn onchip_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    ONCHIP_PCTS
        .iter()
        .map(|&pct| PointSpec {
            workload: WorkloadSpec::App {
                app: AppId::Swim,
                threads: ctx.threads,
            },
            machine: MachineSpec::CustomAgg {
                n_d: ctx.threads,
                pressure_pct: 75,
                tweak: Tweak::OnchipPct { pct },
                reconfig: None,
            },
            scale: ctx.scale,
            fault: None,
            label: format!("{pct}% on-chip"),
        })
        .collect()
}

fn onchip_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: on-chip fraction of P-node memory (Swim, 1/1 ratio, 75% pressure)\n"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>10}",
        "on-chip", "total cycles", "vs 100%"
    );
    let mut base: Option<u64> = None;
    for (pct, r) in ONCHIP_PCTS.iter().zip(reports) {
        let b = *base.get_or_insert(r.total_cycles);
        let _ = writeln!(
            out,
            "{:<12} {:>14} {:>10.3}",
            format!("{pct}%"),
            r.total_cycles,
            r.total_cycles as f64 / b as f64
        );
    }
    let _ = writeln!(
        out,
        "\n(paper: \"the fraction of local memory that is on-chip has only a modest impact\")"
    );
    out
}

const SHAREDLIST_POLICIES: [(&str, bool); 2] = [
    ("reuse SharedList (paper)", true),
    ("no reuse (page out)", false),
];

fn sharedlist_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    SHAREDLIST_POLICIES
        .iter()
        .map(|&(label, reuse)| PointSpec {
            workload: WorkloadSpec::App {
                app: AppId::Barnes,
                threads: ctx.threads,
            },
            machine: MachineSpec::CustomAgg {
                n_d: (ctx.threads / 2).max(1),
                pressure_pct: 90,
                tweak: Tweak::SharedList { reuse },
                reconfig: None,
            },
            scale: ctx.scale,
            fault: None,
            label: label.to_string(),
        })
        .collect()
}

fn sharedlist_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: D-node SharedList reclamation (Barnes, 1/2 ratio, 90% pressure)\n"
    );
    let _ = writeln!(
        out,
        "{:<26} {:>14} {:>10} {:>12} {:>10}",
        "policy", "total cycles", "3hop", "page-outs", "faults"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:<26} {:>14} {:>10} {:>12} {:>10}",
            r.label,
            r.total_cycles,
            r.proto.reads_by_level[Level::Hop3.index()],
            r.proto.page_outs,
            r.proto.disk_faults
        );
    }
    let _ = writeln!(
        out,
        "
(identical rows confirm the paper's Section 4.1 observation: with so many
         dirty-in-P lines freeing their home slots, the SharedList is rarely — here
         never — actually reclaimed, so discouraging its reuse costs nothing)"
    );
    out
}

// ------------------------------------------------------------- fig-fault

/// Epoch-sampling interval of the fault suite: fine enough that the
/// kill, the degraded window and the recovery each span several epochs.
const FAULT_EPOCH: Cycle = 5_000;

/// Cycle at (or after) which the victim dies. Chosen inside the steady
/// state of the CI-scale runs so every architecture has warmed caches
/// and outstanding remote traffic when the node disappears.
const FAULT_KILL_CYCLE: u64 = 20_000;

/// Cycles after the kill at which the rejoin scenario brings the victim
/// back as a compute node.
const FAULT_REJOIN_AFTER: u64 = 20_000;

/// Checkpoint interval of the `ckpt` durability scenario.
const FAULT_CKPT_INTERVAL: u64 = 10_000;

/// The three machine configurations the fault suite compares.
const FAULT_ARCHS: [Config; 3] = [
    Config::Numa,
    Config::Coma { pressure_pct: 75 },
    Config::Agg {
        ratio: 1,
        pressure_pct: 75,
    },
];

/// The five scenarios per architecture: the fault-free baseline, a kill
/// under each durability policy, and a kill followed by a rejoin.
fn fault_scenarios() -> [(&'static str, Option<FaultSpec>); 5] {
    let kill = |durability, rejoin_after| FaultSpec {
        kill_node: 1,
        kill_cycle: FAULT_KILL_CYCLE,
        rejoin_after,
        durability,
    };
    [
        ("base", None),
        ("kill", Some(kill(Durability::None, None))),
        (
            "kill+ckpt",
            Some(kill(
                Durability::Checkpoint {
                    interval: FAULT_CKPT_INTERVAL,
                },
                None,
            )),
        ),
        ("kill+repl", Some(kill(Durability::Replication, None))),
        (
            "kill+rejoin",
            Some(kill(Durability::None, Some(FAULT_REJOIN_AFTER))),
        ),
    ]
}

fn fault_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let mut points = Vec::new();
    for cfg in FAULT_ARCHS {
        for (tag, fault) in fault_scenarios() {
            points.push(PointSpec {
                workload: WorkloadSpec::App {
                    app: AppId::Radix,
                    threads: ctx.threads,
                },
                machine: MachineSpec::Arch(cfg),
                scale: ctx.scale,
                fault,
                label: format!("{} {tag}", cfg.label()),
            });
        }
    }
    points
}

fn fault_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault injection: kill node 1 at cycle {FAULT_KILL_CYCLE} (Radix, 75% pressure)"
    );
    let _ = writeln!(
        out,
        "slowdown is vs the fault-free baseline of the same architecture\n"
    );
    let mut it = reports.iter();
    for cfg in FAULT_ARCHS {
        let _ = writeln!(out, "== {} ==", cfg.label());
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>9} {:>9} {:>7} {:>7} {:>10} {:>8} {:>8}",
            "scenario",
            "cycles",
            "slowdown",
            "lostwork",
            "rehome",
            "lost",
            "recalled",
            "rec p50",
            "rec p99"
        );
        let mut base: Option<u64> = None;
        for (tag, _) in fault_scenarios() {
            let r = it.next().expect("report per scenario");
            let b = *base.get_or_insert(r.total_cycles);
            let _ = write!(
                out,
                "{:<18} {:>12} {:>8.3}x",
                tag,
                r.total_cycles,
                r.total_cycles as f64 / b as f64
            );
            match &r.faults {
                Some(f) => {
                    let _ = writeln!(
                        out,
                        " {:>9} {:>7} {:>7} {:>10} {:>8} {:>8}",
                        f.lost_work_cycles,
                        f.pages_rehomed,
                        f.lines_lost,
                        f.lines_recalled,
                        f.recovery_p50(),
                        f.recovery_p99()
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        " {:>9} {:>7} {:>7} {:>10} {:>8} {:>8}",
                        "-", "-", "-", "-", "-", "-"
                    );
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(recovery columns are cycles per scrubbed/re-homed page, p50/p99 of the"
    );
    let _ = writeln!(
        out,
        " per-page recovery histogram; the results JSON carries {FAULT_EPOCH}-cycle"
    );
    let _ = writeln!(
        out,
        " epoch series for the degraded-throughput time-series plot)"
    );
    out
}

// --------------------------------------------------------------- fig-svc

/// KV write mix of the service suite, percent puts.
const SVC_KV_WRITE_PCT: u32 = 10;

/// The three machine configurations the service suite compares.
const SVC_ARCHS: [Config; 3] = [
    Config::Numa,
    Config::Coma { pressure_pct: 75 },
    Config::Agg {
        ratio: 1,
        pressure_pct: 75,
    },
];

/// The eight service points per architecture: a closed-loop KV skew
/// sweep (θ = 0.6 / 0.9 / 1.2), one open-loop KV point, both graph
/// kernels, and the streaming scan shipped to P-nodes vs offloaded into
/// the D-node memory controllers.
fn svc_workloads(threads: usize) -> [(&'static str, SvcSpec); 8] {
    let kv = |theta_milli, open_loop| SvcSpec::Kv {
        threads,
        theta_milli,
        write_pct: SVC_KV_WRITE_PCT,
        open_loop,
    };
    [
        ("kv-0.6", kv(600, false)),
        ("kv-0.9", kv(900, false)),
        ("kv-1.2", kv(1200, false)),
        ("kv-open", kv(900, true)),
        ("bfs", SvcSpec::Bfs { threads }),
        ("pagerank", SvcSpec::PageRank { threads }),
        (
            "stream-ship",
            SvcSpec::Stream {
                threads,
                offload: false,
            },
        ),
        (
            "stream-offload",
            SvcSpec::Stream {
                threads,
                offload: true,
            },
        ),
    ]
}

fn svc_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let mut points = Vec::new();
    for cfg in SVC_ARCHS {
        for (tag, spec) in svc_workloads(ctx.threads) {
            points.push(PointSpec {
                workload: WorkloadSpec::Svc(spec),
                machine: MachineSpec::Arch(cfg),
                scale: ctx.scale,
                fault: None,
                label: format!("{} {tag}", cfg.label()),
            });
        }
    }
    points
}

fn svc_render(ctx: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Service workloads: throughput and per-request latency percentiles"
    );
    let _ = writeln!(
        out,
        "{} client/worker threads; KV mix {}% puts; COMA/AGG at 75% pressure\n",
        ctx.threads, SVC_KV_WRITE_PCT
    );
    let mut it = reports.iter();
    for cfg in SVC_ARCHS {
        let _ = writeln!(out, "== {} ==", cfg.label());
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>9} {:>9} {:>7} {:>7} {:>7}",
            "workload", "cycles", "requests", "req/Mcyc", "p50", "p95", "p99"
        );
        let mut stream_ship: Option<u64> = None;
        for (tag, _) in svc_workloads(ctx.threads) {
            let r = it.next().expect("report per service point");
            let s = r.svc.as_ref().expect("service run carries svc stats");
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>9} {:>9.1} {:>7} {:>7} {:>7}",
                tag,
                r.total_cycles,
                s.requests,
                s.per_mcycle(r.total_cycles),
                s.p50(),
                s.p95(),
                s.p99()
            );
            if tag == "stream-ship" {
                stream_ship = Some(r.total_cycles);
            } else if tag == "stream-offload" {
                let ship = stream_ship.expect("ship point precedes offload");
                let _ = writeln!(
                    out,
                    "{:<16} (offload vs ship-to-P: {:+.1}% cycles)",
                    "",
                    100.0 * (r.total_cycles as f64 / ship as f64 - 1.0)
                );
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(latency percentiles are cycles from request arrival — queueing included"
    );
    let _ = writeln!(
        out,
        " for the open-loop point — to completion, from the pow-2-bucket histogram)"
    );
    out
}

// ----------------------------------------------------------------- smoke

/// The CI smoke matrix: 2 apps x 2 configs — small enough for a pull
/// request gate, wide enough to cross NUMA and AGG code paths.
fn smoke_points(ctx: &SuiteCtx) -> Vec<PointSpec> {
    let mut points = Vec::new();
    for app in [AppId::Fft, AppId::Radix] {
        for cfg in [
            Config::Numa,
            Config::Agg {
                ratio: 1,
                pressure_pct: 75,
            },
        ] {
            points.push(PointSpec {
                workload: WorkloadSpec::App {
                    app,
                    threads: ctx.threads,
                },
                machine: MachineSpec::Arch(cfg),
                scale: ctx.scale,
                fault: None,
                label: cfg.label(),
            });
        }
    }
    points
}

fn smoke_render(_: &SuiteCtx, reports: &[&RunReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Smoke sweep: 2 apps x 2 configs");
    for r in reports {
        let _ = writeln!(out, "{}", r.summary());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> SuiteCtx {
        SuiteCtx {
            threads: 4,
            scale: Scale::ci(),
        }
    }

    #[test]
    fn suite_names_are_unique_and_findable() {
        for s in ALL_SUITES {
            assert!(std::ptr::eq(find(s.name).unwrap(), s), "{}", s.name);
        }
        assert_eq!(
            ALL_SUITES.len(),
            16,
            "15 figure/table suites plus the smoke suite"
        );
        assert!(find("no-such-suite").is_none());
    }

    #[test]
    fn point_counts_match_the_old_binaries() {
        let ctx = ctx();
        let n_apps = ALL_APPS.len();
        assert_eq!(find("fig6").unwrap().points(&ctx).len(), 7 * n_apps);
        assert_eq!(find("fig7").unwrap().points(&ctx).len(), 7 * n_apps);
        assert_eq!(find("fig8").unwrap().points(&ctx).len(), 3 * n_apps);
        assert_eq!(find("fig9").unwrap().points(&ctx).len(), 20 * n_apps);
        assert_eq!(find("fig10a").unwrap().points(&ctx).len(), 3);
        assert_eq!(find("fig10b").unwrap().points(&ctx).len(), 6);
        assert_eq!(find("table1").unwrap().points(&ctx).len(), 0);
        assert_eq!(find("fig-fault").unwrap().points(&ctx).len(), 15);
        assert_eq!(find("fig-svc").unwrap().points(&ctx).len(), 24);
        assert_eq!(find("smoke").unwrap().points(&ctx).len(), 4);
    }

    #[test]
    fn fig6_and_fig7_share_every_point() {
        let ctx = ctx();
        let a: Vec<String> = find("fig6")
            .unwrap()
            .points(&ctx)
            .iter()
            .map(|p| p.canonical())
            .collect();
        let b: Vec<String> = find("fig7")
            .unwrap()
            .points(&ctx)
            .iter()
            .map(|p| p.canonical())
            .collect();
        assert_eq!(a, b, "fig7 reuses fig6's cache entries");
    }

    #[test]
    fn tables_render_without_reports() {
        let ctx = ctx();
        for name in ["table1", "table2", "table3"] {
            let text = find(name).unwrap().render(&ctx, &[]);
            assert!(text.starts_with("Table"), "{name}: {text}");
            assert!(text.lines().count() > 3, "{name}");
        }
    }

    #[test]
    fn only_tables_define_data_payloads() {
        let ctx = ctx();
        for s in ALL_SUITES {
            let data = s.data(&ctx);
            if s.name.starts_with("table") {
                let doc = data.expect(s.name).render_pretty();
                assert!(doc.starts_with('{'), "{}: {doc}", s.name);
                assert!(doc.len() > 100, "{}: payload too small", s.name);
            } else {
                assert!(data.is_none(), "{} should carry reports, not data", s.name);
            }
        }
    }

    #[test]
    fn smoke_suite_runs_and_renders() {
        let ctx = ctx();
        let suite = find("smoke").unwrap();
        let reports: Vec<_> = suite
            .points(&ctx)
            .iter()
            .map(|p| p.build_machine().run())
            .collect();
        let refs: Vec<&RunReport> = reports.iter().collect();
        let text = suite.render(&ctx, &refs);
        assert!(text.contains("NUMA") && text.contains("1/1AGG75"), "{text}");
    }

    #[test]
    fn only_the_fault_suite_forces_epoch_sampling() {
        for s in ALL_SUITES {
            if s.name == "fig-fault" {
                assert_eq!(s.epoch, Some(FAULT_EPOCH));
            } else {
                assert!(s.epoch.is_none(), "{} must not bypass the cache", s.name);
            }
        }
    }

    #[test]
    fn fault_suite_runs_and_renders() {
        let ctx = ctx();
        let suite = find("fig-fault").unwrap();
        let points = suite.points(&ctx);
        assert_eq!(points[0].fault, None, "first scenario is the baseline");
        let canonicals: std::collections::BTreeSet<String> =
            points.iter().map(|p| p.canonical()).collect();
        assert_eq!(canonicals.len(), points.len(), "every point is distinct");
        let reports: Vec<_> = points.iter().map(|p| p.build_machine().run()).collect();
        let refs: Vec<&RunReport> = reports.iter().collect();
        for (p, r) in points.iter().zip(&refs) {
            assert_eq!(p.fault.is_some(), r.faults.is_some(), "{}", p.key());
            if let Some(f) = &r.faults {
                assert_eq!(f.kills, 1, "{}", p.key());
            }
        }
        let text = suite.render(&ctx, &refs);
        assert!(
            text.contains("== NUMA ==") && text.contains("kill+repl"),
            "{text}"
        );
    }

    #[test]
    fn svc_suite_runs_and_renders() {
        let ctx = ctx();
        let suite = find("fig-svc").unwrap();
        let points = suite.points(&ctx);
        let canonicals: std::collections::BTreeSet<String> =
            points.iter().map(|p| p.canonical()).collect();
        assert_eq!(canonicals.len(), points.len(), "every point is distinct");
        let reports: Vec<_> = points.iter().map(|p| p.build_machine().run()).collect();
        let refs: Vec<&RunReport> = reports.iter().collect();
        for (p, r) in points.iter().zip(&refs) {
            let s = r.svc.as_ref().unwrap_or_else(|| panic!("{}", p.key()));
            assert!(s.requests > 0, "{}", p.key());
            assert!(s.p99() >= s.p50(), "{}", p.key());
        }
        let text = suite.render(&ctx, &refs);
        assert!(
            text.contains("== 1/1AGG75 ==")
                && text.contains("kv-1.2")
                && text.contains("offload vs ship-to-P"),
            "{text}"
        );
    }

    #[test]
    fn fig10a_fatten_matches_the_paper_factors() {
        assert_eq!(fig10a_fatten(16), 1);
        assert_eq!(fig10a_fatten(4), 4);
        assert_eq!(fig10a_fatten(32), 1);
    }
}
