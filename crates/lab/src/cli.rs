//! The `pimdsm-lab` command-line interface — and, through
//! [`bin_main`], the whole implementation of the thin per-figure
//! wrapper binaries (`fig6`, `table1`, ...).
//!
//! ```text
//! pimdsm-lab list                    # name + title + point count per suite
//! pimdsm-lab run fig6 fig7 --jobs 8  # run suites in parallel
//! pimdsm-lab run --all               # every suite
//! pimdsm-lab clean                   # drop the result cache
//! ```
//!
//! The observability flags the bench binaries used to parse each on their
//! own (`--trace`, `--trace-only`, `--metrics`, `--epoch`, `--report`)
//! live here now, once, alongside the lab's own `--jobs`, `--cache-dir`,
//! `--no-cache`, `--threads`, `--scale`, `--quiet` and
//! `--require-hit-rate`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pimdsm::RunReport;
use pimdsm_obs::{JsonValue, ToJson, Tracer};
use pimdsm_workloads::Scale;

use crate::bench;
use crate::cache::ResultCache;
use crate::exec::{run_sweep, Instrumentation, SweepResult};
use crate::suites::{find, Suite, SuiteCtx, ALL_SUITES};

/// Default cache location, under the build tree so `git clean`/`cargo
/// clean` wipe it with everything else.
pub const DEFAULT_CACHE_DIR: &str = "target/lab-cache";

/// Standard thread count for the main comparison (the paper uses 32; a
/// smaller count keeps quick runs fast). `PIMDSM_THREADS` overrides.
pub fn default_threads() -> usize {
    std::env::var("PIMDSM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Scale selected via `PIMDSM_SCALE` (full / bench / ci), default bench.
pub fn default_scale() -> Scale {
    match std::env::var("PIMDSM_SCALE").as_deref() {
        Ok("full") => Scale::full(),
        Ok("ci") => Scale::ci(),
        _ => Scale::bench(),
    }
}

#[derive(Debug, PartialEq)]
enum Command {
    Run(Vec<String>),
    Bench(Vec<String>),
    List,
    Clean,
}

/// Flags specific to `pimdsm-lab bench`.
#[derive(Debug, Clone, PartialEq)]
struct BenchCmd {
    /// Measured runs per suite (after the uncounted warm-up).
    runs: usize,
    /// Explicit output path (single suite only); default `BENCH_<suite>.json`.
    out: Option<PathBuf>,
    /// Suppress the document entirely.
    no_out: bool,
    /// Baseline document to compare against.
    compare: Option<PathBuf>,
    /// Pre-existing current document: compare it instead of running.
    against: Option<PathBuf>,
    /// Documents to schema-validate instead of running.
    check: Vec<PathBuf>,
    /// Regression threshold factor on median wall time.
    threshold: f64,
}

impl Default for BenchCmd {
    fn default() -> BenchCmd {
        BenchCmd {
            runs: 3,
            out: None,
            no_out: false,
            compare: None,
            against: None,
            check: Vec::new(),
            threshold: 1.5,
        }
    }
}

struct Options {
    command: Command,
    bench: Option<BenchCmd>,
    jobs: usize,
    cache_dir: PathBuf,
    no_cache: bool,
    threads: usize,
    scale: Scale,
    trace_path: Option<PathBuf>,
    trace_only: Option<String>,
    metrics_path: Option<PathBuf>,
    epoch: u64,
    report_path: Option<PathBuf>,
    require_hit_rate: Option<f64>,
    quiet: bool,
}

impl Options {
    fn defaults(command: Command) -> Options {
        let bench = matches!(command, Command::Bench(_)).then(BenchCmd::default);
        Options {
            command,
            bench,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_dir: DEFAULT_CACHE_DIR.into(),
            no_cache: false,
            threads: default_threads(),
            scale: default_scale(),
            trace_path: None,
            trace_only: None,
            metrics_path: None,
            epoch: 100_000,
            report_path: None,
            require_hit_rate: None,
            quiet: false,
        }
    }
}

fn parse_scale(v: &str) -> Result<Scale, String> {
    match v {
        "full" => Ok(Scale::full()),
        "bench" => Ok(Scale::bench()),
        "ci" => Ok(Scale::ci()),
        other => Err(format!("--scale takes full|bench|ci, not {other:?}")),
    }
}

/// Parses flags shared by the lab CLI and the wrapper binaries.
/// Returns `Err` on a malformed value; unknown arguments are an error in
/// `strict` mode (the lab CLI) and a warning otherwise (the wrappers,
/// which historically ignored unknown flags).
fn parse_flags(
    args: impl Iterator<Item = String>,
    opts: &mut Options,
    strict: bool,
) -> Result<(), String> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--jobs" | "-j" => {
                opts.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--jobs: {e}"))?
                    .max(1)
            }
            "--cache-dir" => opts.cache_dir = value("--cache-dir")?.into(),
            "--no-cache" => opts.no_cache = true,
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--scale" => opts.scale = parse_scale(&value("--scale")?)?,
            "--trace" => opts.trace_path = Some(value("--trace")?.into()),
            "--trace-only" => opts.trace_only = Some(value("--trace-only")?),
            "--metrics" => opts.metrics_path = Some(value("--metrics")?.into()),
            "--epoch" => {
                opts.epoch = value("--epoch")?
                    .parse()
                    .map_err(|e| format!("--epoch: {e}"))?
            }
            "--report" => opts.report_path = Some(value("--report")?.into()),
            "--require-hit-rate" => {
                opts.require_hit_rate = Some(
                    value("--require-hit-rate")?
                        .parse()
                        .map_err(|e| format!("--require-hit-rate: {e}"))?,
                )
            }
            "--quiet" | "-q" => opts.quiet = true,
            // Bench-only flags: recognized only when a bench command set
            // `opts.bench`; elsewhere they fall through to the unknown arms.
            "--runs" if opts.bench.is_some() => {
                opts.bench.as_mut().unwrap().runs = value("--runs")?
                    .parse::<usize>()
                    .map_err(|e| format!("--runs: {e}"))?
                    .max(1)
            }
            "--out" if opts.bench.is_some() => {
                opts.bench.as_mut().unwrap().out = Some(value("--out")?.into())
            }
            "--no-out" if opts.bench.is_some() => opts.bench.as_mut().unwrap().no_out = true,
            "--compare" if opts.bench.is_some() => {
                opts.bench.as_mut().unwrap().compare = Some(value("--compare")?.into())
            }
            "--against" if opts.bench.is_some() => {
                opts.bench.as_mut().unwrap().against = Some(value("--against")?.into())
            }
            "--check" if opts.bench.is_some() => {
                let path = value("--check")?;
                opts.bench.as_mut().unwrap().check.push(path.into())
            }
            "--threshold" if opts.bench.is_some() => {
                let t = value("--threshold")?
                    .parse::<f64>()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !(t.is_finite() && t >= 1.0) {
                    return Err(format!("--threshold must be a factor >= 1.0, not {t}"));
                }
                opts.bench.as_mut().unwrap().threshold = t
            }
            other if strict => return Err(format!("unknown argument {other:?}")),
            other => eprintln!("[lab] ignoring unknown argument {other:?}"),
        }
    }
    Ok(())
}

fn parse_lab_args(argv: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut argv = argv.peekable();
    let command = match argv.next().as_deref() {
        Some("run") => {
            let mut names = Vec::new();
            let mut all = false;
            while let Some(a) = argv.peek() {
                if a.starts_with('-') && a != "--all" {
                    break;
                }
                let a = argv.next().unwrap();
                if a == "--all" {
                    all = true;
                } else {
                    names.push(a);
                }
            }
            if all {
                names = ALL_SUITES.iter().map(|s| s.name.to_string()).collect();
            }
            if names.is_empty() {
                return Err("run: name at least one suite, or pass --all".into());
            }
            Command::Run(names)
        }
        Some("bench") => {
            let mut names = Vec::new();
            while let Some(a) = argv.peek() {
                if a.starts_with('-') {
                    break;
                }
                names.push(argv.next().unwrap());
            }
            Command::Bench(names)
        }
        Some("list") => Command::List,
        Some("clean") => Command::Clean,
        Some(other) => {
            return Err(format!(
                "unknown command {other:?} (run | bench | list | clean)"
            ))
        }
        None => return Err("usage: pimdsm-lab <run|bench|list|clean> [flags]".into()),
    };
    let mut opts = Options::defaults(command);
    parse_flags(argv, &mut opts, true)?;
    Ok(opts)
}

/// Entry point of the `pimdsm-lab` binary.
pub fn main() -> ExitCode {
    let opts = match parse_lab_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pimdsm-lab: {e}");
            eprintln!("usage: pimdsm-lab <run|bench|list|clean> [suites|--all] [flags]");
            eprintln!(
                "flags: --jobs N --cache-dir DIR --no-cache --threads N --scale full|bench|ci"
            );
            eprintln!("       --trace F --trace-only SUBSTR --metrics F --epoch N --report F");
            eprintln!("       --require-hit-rate PCT --quiet");
            eprintln!(
                "bench: --runs N --out F --no-out --compare BASE --against CUR --check F --threshold X"
            );
            return ExitCode::FAILURE;
        }
    };
    dispatch(opts)
}

/// Entry point of the thin per-figure wrapper binaries: runs one suite
/// with the shared flag surface (unknown flags warn instead of failing,
/// as the old binaries did).
pub fn bin_main(suite: &'static str) -> ExitCode {
    let mut opts = Options::defaults(Command::Run(vec![suite.to_string()]));
    if let Err(e) = parse_flags(std::env::args().skip(1), &mut opts, false) {
        eprintln!("{suite}: {e}");
        return ExitCode::FAILURE;
    }
    dispatch(opts)
}

fn dispatch(opts: Options) -> ExitCode {
    match &opts.command {
        Command::List => {
            let ctx = SuiteCtx {
                threads: opts.threads,
                scale: opts.scale,
            };
            println!("{:<20} {:>7}  description", "suite", "points");
            for s in ALL_SUITES {
                println!("{:<20} {:>7}  {}", s.name, s.points(&ctx).len(), s.title);
            }
            ExitCode::SUCCESS
        }
        Command::Clean => {
            let removed = ResultCache::new(&opts.cache_dir).clean();
            eprintln!(
                "[lab] removed {removed} cache entries from {}",
                opts.cache_dir.display()
            );
            ExitCode::SUCCESS
        }
        Command::Run(names) => run_suites(&names.clone(), &opts),
        Command::Bench(names) => run_bench(&names.clone(), &opts),
    }
}

fn run_suites(names: &[String], opts: &Options) -> ExitCode {
    let mut suites: Vec<&'static Suite> = Vec::new();
    for name in names {
        match find(name) {
            Some(s) => suites.push(s),
            None => {
                eprintln!("[lab] no suite named {name:?} (try `pimdsm-lab list`)");
                return ExitCode::FAILURE;
            }
        }
    }
    let single = suites.len() == 1;
    if !single
        && (opts.trace_path.is_some() || opts.metrics_path.is_some() || opts.report_path.is_some())
    {
        eprintln!("[lab] --trace/--metrics/--report apply to a single suite; run one at a time");
        return ExitCode::FAILURE;
    }

    let ctx = SuiteCtx {
        threads: opts.threads,
        scale: opts.scale,
    };
    let cache = (!opts.no_cache).then(|| ResultCache::new(&opts.cache_dir));
    let inst = Instrumentation {
        trace: opts.trace_path.is_some(),
        trace_only: opts.trace_only.clone(),
        epoch: opts.metrics_path.is_some().then_some(opts.epoch),
    };

    let mut failed = false;
    let (mut hits, mut misses) = (0usize, 0usize);
    let start = std::time::Instant::now();
    for suite in &suites {
        let points = suite.points(&ctx);
        let n = points.len();
        // A suite that renders epoch series (fig-fault) forces sampling
        // on its own runs; an explicit --epoch from --metrics wins.
        let mut suite_inst = inst.clone();
        if suite_inst.epoch.is_none() {
            suite_inst.epoch = suite.epoch;
        }
        let result = run_sweep(points, cache.as_ref(), &suite_inst, opts.jobs, !opts.quiet);
        hits += result.hits;
        misses += result.misses;

        if let Some(path) = &opts.trace_path {
            write_trace(path, &result);
        }
        if let Some(path) = &opts.metrics_path {
            write_metrics(path, suite.name, opts.epoch, &result);
        }

        if let Some(reports) = result.reports() {
            print!("{}", suite.render(&ctx, &reports));
            write_report_doc(suite, &ctx, opts.report_path.as_deref(), &reports);
        } else {
            for o in &result.outcomes {
                if let Err(e) = &o.report {
                    eprintln!("[lab] {}: point {} FAILED: {e}", suite.name, o.spec.key());
                }
            }
            eprintln!("[lab] {}: not rendered (failed points above)", suite.name);
            failed = true;
        }
        if !opts.quiet {
            eprintln!(
                "[lab] {}: {} points, {} cached ({:.2?}), {} ran ({:.2?}), {:.1}% hits, {:.2?}",
                suite.name,
                n,
                result.hits,
                result.hit_wall,
                result.misses,
                result.cold_wall,
                result.hit_rate() * 100.0,
                result.wall
            );
            if result.misses > 0 {
                let totals = result.counter_totals();
                let evs = totals.engine_events() as f64 / result.cold_wall.as_secs_f64().max(1e-9);
                eprintln!(
                    "[lab] {}: {} engine events ({evs:.0}/s cold), peak queue {}, {} txn walks",
                    suite.name,
                    totals.engine_events(),
                    totals.engine_queue_peak(),
                    totals.txn_walks()
                );
            }
        }
    }
    if !opts.quiet && suites.len() > 1 {
        let total = hits + misses;
        let rate = if total == 0 {
            100.0
        } else {
            100.0 * hits as f64 / total as f64
        };
        eprintln!(
            "[lab] total: {total} points, {hits} cached, {misses} ran, {rate:.1}% hits, {:.2?}",
            start.elapsed()
        );
    }
    if let Some(required) = opts.require_hit_rate {
        let total = hits + misses;
        let rate = if total == 0 {
            100.0
        } else {
            100.0 * hits as f64 / total as f64
        };
        if rate < required {
            eprintln!("[lab] cache hit rate {rate:.1}% below required {required:.1}%");
            return ExitCode::FAILURE;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn load_bench_doc(path: &Path) -> Result<bench::BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    bench::validate_doc(&text)
}

fn report_compare(cur: &bench::BenchDoc, base: &bench::BenchDoc, threshold: f64) -> ExitCode {
    match bench::compare(cur, base, threshold) {
        bench::Compared::Ok(ratio) => {
            eprintln!(
                "[bench] {}: median {:.3} ms vs baseline {:.3} ms \
                 ({ratio:.2}x, threshold {threshold:.2}x) — ok",
                cur.suite, cur.wall_median_ms, base.wall_median_ms
            );
            ExitCode::SUCCESS
        }
        bench::Compared::Regression(ratio) => {
            eprintln!(
                "[bench] {}: REGRESSION: median {:.3} ms vs baseline {:.3} ms \
                 ({ratio:.2}x exceeds threshold {threshold:.2}x)",
                cur.suite, cur.wall_median_ms, base.wall_median_ms
            );
            ExitCode::FAILURE
        }
        bench::Compared::Incomparable(why) => {
            eprintln!("[bench] documents are not comparable: {why}");
            ExitCode::from(2)
        }
    }
}

fn run_bench(names: &[String], opts: &Options) -> ExitCode {
    let b = opts.bench.as_ref().expect("bench command implies options");

    if !b.check.is_empty() {
        let mut ok = true;
        for path in &b.check {
            match load_bench_doc(path) {
                Ok(doc) => {
                    eprintln!(
                        "[bench] {}: valid {} document ({} runs of {:?}, median {:.3} ms)",
                        path.display(),
                        bench::BENCH_SCHEMA,
                        doc.runs,
                        doc.suite,
                        doc.wall_median_ms
                    );
                    if !doc.stable {
                        eprintln!(
                            "[bench] {}: WARNING: deterministic fields varied across runs",
                            path.display()
                        );
                    }
                }
                Err(e) => {
                    eprintln!("[bench] {}: INVALID: {e}", path.display());
                    ok = false;
                }
            }
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if let Some(current) = &b.against {
        let Some(baseline) = &b.compare else {
            eprintln!("[bench] --against needs --compare <baseline.json>");
            return ExitCode::FAILURE;
        };
        let cur = match load_bench_doc(current) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("[bench] {}: {e}", current.display());
                return ExitCode::from(2);
            }
        };
        let base = match load_bench_doc(baseline) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("[bench] {}: {e}", baseline.display());
                return ExitCode::from(2);
            }
        };
        return report_compare(&cur, &base, b.threshold);
    }

    if names.is_empty() {
        eprintln!("[bench] name at least one suite, or use --check/--against");
        return ExitCode::FAILURE;
    }
    if names.len() > 1 && (b.out.is_some() || b.compare.is_some()) {
        eprintln!("[bench] --out/--compare apply to a single suite; bench one at a time");
        return ExitCode::FAILURE;
    }

    let ctx = SuiteCtx {
        threads: opts.threads,
        scale: opts.scale,
    };
    for name in names {
        let Some(suite) = find(name) else {
            eprintln!("[bench] no suite named {name:?} (try `pimdsm-lab list`)");
            return ExitCode::FAILURE;
        };
        let result = match bench::measure_suite(suite, &ctx, b.runs, opts.jobs, !opts.quiet) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[bench] {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let peak = result
            .samples
            .iter()
            .map(|s| s.peak_bytes)
            .max()
            .unwrap_or(0);
        eprintln!(
            "[bench] {name}: median {:.2?} (min {:.2?}, max {:.2?}) over {} runs, \
             {:.0} events/s, {} points, peak heap {} KiB",
            result.wall_median(),
            result.wall_min(),
            result.wall_max(),
            result.samples.len(),
            result.events_per_sec(),
            result.points,
            peak / 1024
        );
        if !result.stable_across_runs() {
            eprintln!(
                "[bench] {name}: ERROR: deterministic counters or allocation \
                 totals differed between runs — the simulator did different work"
            );
            return ExitCode::FAILURE;
        }
        let doc = result.to_json();
        if !b.no_out {
            let path = b
                .out
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("BENCH_{name}.json")));
            write_json(&path, &doc, "bench document");
        }
        if let Some(baseline) = &b.compare {
            let base = match load_bench_doc(baseline) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("[bench] {}: {e}", baseline.display());
                    return ExitCode::from(2);
                }
            };
            let cur = bench::validate_doc(&doc.render_pretty())
                .expect("freshly rendered bench document must validate");
            return report_compare(&cur, &base, b.threshold);
        }
    }
    ExitCode::SUCCESS
}

fn write_trace(path: &Path, result: &SweepResult) {
    // Mirror the old Obs behavior: when tracing was requested but no run
    // matched the filter, an empty (but valid) trace is still written.
    let json = result
        .trace_json
        .clone()
        .unwrap_or_else(|| Tracer::enabled().to_chrome_json());
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("[lab] wrote trace to {}", path.display()),
        Err(e) => eprintln!("[lab] failed to write {}: {e}", path.display()),
    }
}

fn write_metrics(path: &Path, bin: &str, epoch: u64, result: &SweepResult) {
    let runs = JsonValue::arr(result.outcomes.iter().filter_map(|o| {
        let r = o.report.as_ref().ok()?;
        let e = r.epochs.as_ref()?;
        Some(JsonValue::obj([
            ("arch", JsonValue::str(r.arch.as_str())),
            ("app", JsonValue::str(r.app.as_str())),
            ("label", JsonValue::str(r.label.as_str())),
            ("epochs", e.to_json()),
        ]))
    }));
    let doc = JsonValue::obj([
        ("bin", JsonValue::str(bin.to_string())),
        ("epoch_cycles", JsonValue::u64(epoch)),
        ("runs", runs),
    ]);
    write_json(path, &doc, "epoch metrics");
}

/// Writes the `{"bin", "runs"[, "data"]}` report document — to
/// `--report`'s path when given, else to `results/<suite>.json` when a
/// `results/` directory exists (the old binaries' convention, so
/// regenerating text tables also refreshes the machine-readable results).
/// Table suites have no runs; their payload is the suite's `data` block.
fn write_report_doc(
    suite: &Suite,
    ctx: &SuiteCtx,
    explicit: Option<&Path>,
    reports: &[&RunReport],
) {
    let data = suite.data(ctx);
    let default = explicit.is_none()
        && (!reports.is_empty() || data.is_some())
        && Path::new("results").is_dir();
    let path: Option<PathBuf> = explicit
        .map(Path::to_path_buf)
        .or_else(|| default.then(|| format!("results/{}.json", suite.name).into()));
    let Some(path) = path else { return };
    let mut pairs = vec![
        ("bin", JsonValue::str(suite.name)),
        ("runs", JsonValue::arr(reports.iter().map(|r| r.to_json()))),
    ];
    if let Some(data) = data {
        pairs.push(("data", data));
    }
    let doc = JsonValue::obj(pairs);
    write_json(&path, &doc, "run reports");
}

fn write_json(path: &Path, doc: &JsonValue, what: &str) {
    match std::fs::write(path, doc.render_pretty()) {
        Ok(()) => eprintln!("[lab] wrote {what} to {}", path.display()),
        Err(e) => eprintln!("[lab] failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_string)
    }

    #[test]
    fn parses_run_with_suites_and_flags() {
        let o = parse_lab_args(args("run fig6 fig7 --jobs 4 --no-cache --scale ci")).unwrap();
        assert_eq!(o.command, Command::Run(vec!["fig6".into(), "fig7".into()]));
        assert_eq!(o.jobs, 4);
        assert!(o.no_cache);
        assert_eq!(o.scale, Scale::ci());
    }

    #[test]
    fn run_all_expands_to_every_suite() {
        let o = parse_lab_args(args("run --all")).unwrap();
        let Command::Run(names) = o.command else {
            panic!("not a run")
        };
        assert_eq!(names.len(), ALL_SUITES.len());
    }

    #[test]
    fn rejects_unknown_commands_and_flags() {
        assert!(parse_lab_args(args("frobnicate")).is_err());
        assert!(parse_lab_args(args("run fig6 --frobnicate")).is_err());
        assert!(parse_lab_args(args("run")).is_err());
        assert!(parse_lab_args(args("run fig6 --scale huge")).is_err());
    }

    #[test]
    fn wrapper_parsing_tolerates_unknown_flags() {
        let mut o = Options::defaults(Command::Run(vec!["fig6".into()]));
        parse_flags(args("--totally-unknown --jobs 2"), &mut o, false).unwrap();
        assert_eq!(o.jobs, 2);
    }

    #[test]
    fn parses_bench_command_and_flags() {
        let o = parse_lab_args(args(
            "bench smoke --runs 5 --jobs 1 --threshold 3.0 --compare BENCH_smoke.json",
        ))
        .unwrap();
        assert_eq!(o.command, Command::Bench(vec!["smoke".into()]));
        let b = o.bench.unwrap();
        assert_eq!(b.runs, 5);
        assert_eq!(b.threshold, 3.0);
        assert_eq!(b.compare.as_deref(), Some(Path::new("BENCH_smoke.json")));
        assert_eq!(o.jobs, 1);

        let o =
            parse_lab_args(args("bench --check a.json --check b.json --against c.json")).unwrap();
        assert_eq!(o.command, Command::Bench(Vec::new()));
        let b = o.bench.unwrap();
        assert_eq!(b.check.len(), 2);
        assert_eq!(b.against.as_deref(), Some(Path::new("c.json")));
    }

    #[test]
    fn bench_flags_are_rejected_outside_bench() {
        assert!(parse_lab_args(args("run fig6 --runs 3")).is_err());
        assert!(parse_lab_args(args("bench smoke --threshold 0.5")).is_err());
        assert!(parse_lab_args(args("bench smoke --runs zero")).is_err());
    }

    #[test]
    fn obs_flags_parse_like_the_old_binaries() {
        let o = parse_lab_args(args(
            "run fig6 --trace t.json --trace-only FFT --metrics m.json --epoch 5000 --report r.json",
        ))
        .unwrap();
        assert_eq!(o.trace_path.as_deref(), Some(Path::new("t.json")));
        assert_eq!(o.trace_only.as_deref(), Some("FFT"));
        assert_eq!(o.metrics_path.as_deref(), Some(Path::new("m.json")));
        assert_eq!(o.epoch, 5000);
        assert_eq!(o.report_path.as_deref(), Some(Path::new("r.json")));
    }
}
