//! The experiment-orchestration CLI. See `pimdsm_lab::cli`.

fn main() -> std::process::ExitCode {
    pimdsm_lab::cli::main()
}
