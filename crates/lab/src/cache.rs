//! The content-addressed result cache.
//!
//! A cache entry is keyed by the FNV-1a-64 hash of the point's
//! [canonical string](crate::spec::PointSpec::canonical) **and** the
//! workspace source fingerprint the binary was built from (embedded by
//! `build.rs` as `PIMDSM_WORKSPACE_FINGERPRINT`). Editing any Rust source
//! or manifest in the workspace changes the fingerprint, so every stale
//! entry silently becomes a miss — the cache can never serve results from
//! an older simulator.
//!
//! Entries store the full canonical string next to the report, and
//! [`ResultCache::load`] verifies it before trusting the entry: a 64-bit
//! hash collision therefore degrades to a miss, never to a wrong result.
//! Loads re-materialize the report through [`RunReport::from_json`], whose
//! round-trip is byte-identical by construction (tested in
//! `pimdsm::report`), so a warm sweep renders exactly the bytes a cold
//! sweep would.

use std::fs;
use std::path::{Path, PathBuf};

use pimdsm::RunReport;
use pimdsm_obs::{json, JsonValue, ToJson};

use crate::spec::PointSpec;

/// The workspace source fingerprint this binary was compiled from.
pub fn workspace_fingerprint() -> &'static str {
    env!("PIMDSM_WORKSPACE_FINGERPRINT")
}

/// 64-bit FNV-1a (the same function `build.rs` uses for the fingerprint).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A directory of cached [`RunReport`]s addressed by experiment content.
pub struct ResultCache {
    dir: PathBuf,
    fingerprint: String,
}

impl ResultCache {
    /// Opens (without creating) a cache rooted at `dir`, bound to this
    /// binary's workspace fingerprint.
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache {
            dir: dir.into(),
            fingerprint: workspace_fingerprint().to_string(),
        }
    }

    /// Opens a cache with an explicit fingerprint (tests use this to
    /// simulate a code change without recompiling).
    pub fn with_fingerprint(
        dir: impl Into<PathBuf>,
        fingerprint: impl Into<String>,
    ) -> ResultCache {
        ResultCache {
            dir: dir.into(),
            fingerprint: fingerprint.into(),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The stable hex key for `spec` under the current fingerprint.
    pub fn key(&self, spec: &PointSpec) -> String {
        let material = format!("{}|fingerprint={}", spec.canonical(), self.fingerprint);
        format!("{:016x}", fnv64(material.as_bytes()))
    }

    fn entry_path(&self, spec: &PointSpec) -> PathBuf {
        self.dir.join(format!("{}.json", self.key(spec)))
    }

    /// Looks up `spec`. Any defect — missing file, unparsable JSON,
    /// canonical/fingerprint mismatch, missing report field — is a miss.
    pub fn load(&self, spec: &PointSpec) -> Option<RunReport> {
        pimdsm_prof::phase!("cache.load");
        let text = fs::read_to_string(self.entry_path(spec)).ok()?;
        let doc = json::parse(&text).ok()?;
        if doc.get("canonical")?.as_str()? != spec.canonical() {
            return None;
        }
        if doc.get("fingerprint")?.as_str()? != self.fingerprint {
            return None;
        }
        RunReport::from_json(doc.get("report")?).ok()
    }

    /// Stores `report` for `spec`, creating the cache directory on first
    /// use. Write errors are reported on stderr and otherwise ignored —
    /// a broken cache only costs re-simulation.
    pub fn store(&self, spec: &PointSpec, report: &RunReport) {
        pimdsm_prof::phase!("cache.store");
        if let Err(e) = fs::create_dir_all(&self.dir) {
            eprintln!("[lab] cannot create cache dir {}: {e}", self.dir.display());
            return;
        }
        let doc = JsonValue::obj([
            ("canonical", JsonValue::str(spec.canonical())),
            ("fingerprint", JsonValue::str(self.fingerprint.as_str())),
            ("report", report.to_json()),
        ]);
        let path = self.entry_path(spec);
        let tmp = path.with_extension("json.tmp");
        // Write-then-rename so a sweep killed mid-store never leaves a
        // half-written entry that `load` would have to reject.
        if let Err(e) = fs::write(&tmp, doc.render_pretty()).and_then(|()| fs::rename(&tmp, &path))
        {
            eprintln!("[lab] cache store failed for {}: {e}", path.display());
        }
    }

    /// Deletes every entry. Returns how many files were removed.
    pub fn clean(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let is_entry = path.extension().is_some_and(|e| e == "json" || e == "tmp");
            if is_entry && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Config, MachineSpec, WorkloadSpec};
    use pimdsm_workloads::{AppId, Scale};

    fn point(label: &str) -> PointSpec {
        PointSpec {
            workload: WorkloadSpec::App {
                app: AppId::Fft,
                threads: 2,
            },
            machine: MachineSpec::Arch(Config::Agg {
                ratio: 1,
                pressure_pct: 75,
            }),
            scale: Scale::ci(),
            fault: None,
            label: label.to_string(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pimdsm-lab-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_is_stable_and_spec_sensitive() {
        let cache = ResultCache::with_fingerprint(tmp_dir("key"), "f00d");
        let a = cache.key(&point("A"));
        assert_eq!(a, cache.key(&point("A")), "same spec, same key");
        assert_eq!(a.len(), 16);
        assert_ne!(a, cache.key(&point("B")), "label is part of the key");
        let other = ResultCache::with_fingerprint(tmp_dir("key"), "beef");
        assert_ne!(a, other.key(&point("A")), "fingerprint is part of the key");
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::with_fingerprint(&dir, "f00d");
        let spec = point("1/1AGG75");
        assert!(cache.load(&spec).is_none(), "cold cache misses");
        let report = spec.build_machine().run();
        cache.store(&spec, &report);
        let restored = cache.load(&spec).expect("warm cache hits");
        assert_eq!(
            restored.to_json().render_pretty(),
            report.to_json().render_pretty(),
            "cached report must re-render byte-identically"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_change_invalidates() {
        let dir = tmp_dir("invalidate");
        let spec = point("1/1AGG75");
        let report = spec.build_machine().run();
        ResultCache::with_fingerprint(&dir, "old").store(&spec, &report);
        assert!(
            ResultCache::with_fingerprint(&dir, "new")
                .load(&spec)
                .is_none(),
            "a code change (new fingerprint) must miss"
        );
        assert!(
            ResultCache::with_fingerprint(&dir, "old")
                .load(&spec)
                .is_some(),
            "the old fingerprint still hits its own entry"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::with_fingerprint(&dir, "f00d");
        let spec = point("1/1AGG75");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(format!("{}.json", cache.key(&spec))), "{ not json").unwrap();
        assert!(cache.load(&spec).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_removes_entries() {
        let dir = tmp_dir("clean");
        let cache = ResultCache::with_fingerprint(&dir, "f00d");
        let spec = point("1/1AGG75");
        let report = spec.build_machine().run();
        cache.store(&spec, &report);
        assert_eq!(cache.clean(), 1);
        assert!(cache.load(&spec).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
