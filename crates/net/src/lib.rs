//! Wormhole-routed 2D-mesh interconnect model.
//!
//! The paper's machines use a wormhole-routed 2D mesh with 2-byte-wide,
//! 1 GHz links (2 GB/s per link per direction) for AGG; the NUMA and COMA
//! baselines get double-width links so that bisection bandwidth matches an
//! AGG machine with the same number of P- as D-nodes (Section 3).
//!
//! [`Network`] models each *directed* link as a contended
//! [`Timeline`](pimdsm_engine::Timeline): a message books every link on its
//! XY route for its serialization time, pipelining the head flit at a fixed
//! per-hop router latency. This captures both the distance term and the
//! queueing term ("all contention in the system is modeled") without
//! simulating individual flits.

pub mod mesh;
pub mod network;

pub use mesh::{Coord, Mesh};
pub use network::{NetCfg, NetStats, Network};
