//! 2D-mesh topology and XY (dimension-ordered) routing.

/// A node's position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (x).
    pub x: usize,
    /// Row (y).
    pub y: usize,
}

/// Directions of the four outgoing links of a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dir {
    East,
    West,
    North,
    South,
}

impl Dir {
    pub(crate) fn index(self) -> usize {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::North => 2,
            Dir::South => 3,
        }
    }
}

/// A `cols` × `rows` 2D mesh.
///
/// Nodes are numbered row-major: node `i` sits at
/// `(i % cols, i / cols)`.
///
/// # Examples
///
/// ```
/// use pimdsm_net::Mesh;
///
/// let m = Mesh::new(4, 2);
/// assert_eq!(m.num_nodes(), 8);
/// assert_eq!(m.hops(0, 7), 4); // 3 east + 1 south
/// assert_eq!(m.hops(3, 3), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    cols: usize,
    rows: usize,
}

impl Mesh {
    /// Creates a mesh with `cols` columns and `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        Mesh { cols, rows }
    }

    /// Picks a near-square mesh for `n` nodes (cols ≥ rows,
    /// cols × rows ≥ n).
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "mesh needs at least one node");
        let rows = (n as f64).sqrt().floor() as usize;
        let rows = rows.max(1);
        let cols = n.div_ceil(rows);
        Mesh::new(cols, rows)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total router positions (may exceed the number of populated nodes).
    pub fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Coordinates of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the mesh.
    pub fn coord(&self, id: usize) -> Coord {
        assert!(id < self.num_nodes(), "node {id} outside mesh");
        Coord {
            x: id % self.cols,
            y: id / self.cols,
        }
    }

    /// Node id at a coordinate.
    pub fn node_at(&self, c: Coord) -> usize {
        debug_assert!(c.x < self.cols && c.y < self.rows);
        c.y * self.cols + c.x
    }

    /// Manhattan hop count between two nodes.
    pub fn hops(&self, from: usize, to: usize) -> usize {
        let a = self.coord(from);
        let b = self.coord(to);
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// Average hop count from `from` to every other node (used to sanity
    /// check calibration).
    pub fn mean_hops_from(&self, from: usize) -> f64 {
        let n = self.num_nodes();
        if n <= 1 {
            return 0.0;
        }
        let total: usize = (0..n)
            .filter(|&t| t != from)
            .map(|t| self.hops(from, t))
            .sum();
        total as f64 / (n - 1) as f64
    }

    /// The XY route from `from` to `to` as a list of directed link ids
    /// (see [`Mesh::link_id`]), X first then Y, appended to `out`.
    pub(crate) fn route_into(&self, from: usize, to: usize, out: &mut Vec<usize>) {
        out.clear();
        let mut cur = self.coord(from);
        let dst = self.coord(to);
        while cur.x != dst.x {
            let dir = if dst.x > cur.x { Dir::East } else { Dir::West };
            out.push(self.link_id(cur, dir));
            cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        }
        while cur.y != dst.y {
            let dir = if dst.y > cur.y {
                Dir::South
            } else {
                Dir::North
            };
            out.push(self.link_id(cur, dir));
            cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        }
    }

    /// Directed link id for the link leaving the router at `c` in
    /// direction `dir`. Ids are dense in `[0, 4 * num_nodes)`.
    pub(crate) fn link_id(&self, c: Coord, dir: Dir) -> usize {
        self.node_at(c) * 4 + dir.index()
    }

    /// Total number of directed link slots (including nonexistent edge
    /// links, which simply go unused).
    pub fn num_link_slots(&self) -> usize {
        self.num_nodes() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_numbering() {
        let m = Mesh::new(3, 2);
        assert_eq!(m.coord(0), Coord { x: 0, y: 0 });
        assert_eq!(m.coord(2), Coord { x: 2, y: 0 });
        assert_eq!(m.coord(3), Coord { x: 0, y: 1 });
        assert_eq!(m.node_at(Coord { x: 2, y: 1 }), 5);
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::new(8, 8);
        assert_eq!(m.hops(0, 63), 14);
        assert_eq!(m.hops(9, 9), 0);
        assert_eq!(m.hops(0, 7), 7);
        assert_eq!(m.hops(0, 56), 7);
    }

    #[test]
    fn for_nodes_covers_requested_count() {
        for n in 1..100 {
            let m = Mesh::for_nodes(n);
            assert!(m.num_nodes() >= n, "n={n} mesh={m:?}");
        }
        let m = Mesh::for_nodes(64);
        assert_eq!((m.cols(), m.rows()), (8, 8));
        let m = Mesh::for_nodes(48);
        assert_eq!(m.num_nodes(), 48);
    }

    #[test]
    fn route_goes_x_then_y() {
        let m = Mesh::new(4, 4);
        let mut route = Vec::new();
        m.route_into(0, 10, &mut route); // (0,0) -> (2,2)
        assert_eq!(route.len(), 4);
        // First two links leave (0,0) east then (1,0) east.
        assert_eq!(route[0], m.link_id(Coord { x: 0, y: 0 }, Dir::East));
        assert_eq!(route[1], m.link_id(Coord { x: 1, y: 0 }, Dir::East));
        assert_eq!(route[2], m.link_id(Coord { x: 2, y: 0 }, Dir::South));
        assert_eq!(route[3], m.link_id(Coord { x: 2, y: 1 }, Dir::South));
    }

    #[test]
    fn route_handles_west_and_north() {
        let m = Mesh::new(4, 4);
        let mut route = Vec::new();
        m.route_into(15, 0, &mut route); // (3,3) -> (0,0)
        assert_eq!(route.len(), 6);
    }

    #[test]
    fn self_route_is_empty() {
        let m = Mesh::new(4, 4);
        let mut route = vec![1, 2, 3];
        m.route_into(5, 5, &mut route);
        assert!(route.is_empty());
    }

    #[test]
    fn mean_hops_reasonable() {
        let m = Mesh::new(8, 8);
        let mh = m.mean_hops_from(0);
        assert!(mh > 6.5 && mh < 7.5, "corner mean hops {mh}");
    }
}
