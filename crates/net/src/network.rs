//! Contended wormhole network built on per-link timelines.

use pimdsm_engine::{Cycle, Timeline};
use pimdsm_obs::{trace::track, Tracer};

use crate::mesh::Mesh;

/// Network timing parameters.
///
/// The paper: 2-byte-wide links cycling at 1 GHz for AGG (2 GB/s per link
/// per direction); NUMA/COMA links are twice as wide. Router/hop latency
/// and injection overhead are calibration knobs used to land Table 1's
/// uncontended remote round trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetCfg {
    /// Link bandwidth in bytes per CPU cycle (2 for AGG, 4 for NUMA/COMA).
    pub bytes_per_cycle: u64,
    /// Head-flit latency per hop (router + wire), in cycles.
    pub hop_latency: Cycle,
    /// Fixed overhead to inject a message at the source NI, in cycles.
    pub inject_latency: Cycle,
    /// Fixed overhead to deliver a message at the destination NI, in cycles.
    pub eject_latency: Cycle,
}

impl Default for NetCfg {
    fn default() -> Self {
        NetCfg {
            bytes_per_cycle: 2,
            hop_latency: 9,
            inject_latency: 10,
            eject_latency: 10,
        }
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Sum over messages of (delivery - injection) cycles.
    pub total_latency: Cycle,
    /// Sum of cycles spent queueing for busy links.
    pub total_queueing: Cycle,
}

/// A wormhole-routed 2D mesh with contended links.
///
/// Every directed link is a [`Timeline`]; a message books each link on its
/// XY route for its serialization time, while the head pipelines at
/// [`NetCfg::hop_latency`] per hop. Local (self) messages bypass the
/// network entirely, as in the paper's node model.
///
/// # Examples
///
/// ```
/// use pimdsm_net::{Mesh, NetCfg, Network};
///
/// let mut net = Network::new(Mesh::new(4, 4), NetCfg::default());
/// let t1 = net.send(0, 3, 16, 0);
/// let uncontended = t1;
/// // A second identical message right behind the first queues on links.
/// let t2 = net.send(0, 3, 16, 0);
/// assert!(t2 > uncontended);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    mesh: Mesh,
    cfg: NetCfg,
    links: Vec<Timeline>,
    stats: NetStats,
    route_buf: Vec<usize>,
    tracer: Tracer,
}

impl Network {
    /// Creates an idle network over `mesh` with timing `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is zero.
    pub fn new(mesh: Mesh, cfg: NetCfg) -> Self {
        assert!(cfg.bytes_per_cycle > 0, "link bandwidth must be nonzero");
        Network {
            mesh,
            cfg,
            links: vec![Timeline::new(); mesh.num_link_slots()],
            stats: NetStats::default(),
            route_buf: Vec::with_capacity(32),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a [`Tracer`]; an enabled tracer records one `net.link`
    /// span per link crossing (tid = link id) and a `net.msg` instant per
    /// delivered message. The default disabled tracer costs one branch.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of directed link slots in the mesh.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The timing configuration.
    pub fn cfg(&self) -> &NetCfg {
        &self.cfg
    }

    /// Hop count between two nodes.
    pub fn hops(&self, from: usize, to: usize) -> usize {
        self.mesh.hops(from, to)
    }

    /// Sends `bytes` from `from` to `to` starting at `now`; returns the
    /// delivery cycle. A self-send returns `now` (handled inside the node):
    /// it moves no bytes, books no links and counts in no statistics, but
    /// an enabled tracer records a `net.local` instant so protocol walks
    /// that resolve at the issuing node stay visible in the trace.
    pub fn send(&mut self, from: usize, to: usize, bytes: u32, now: Cycle) -> Cycle {
        if from == to {
            self.tracer.instant(
                track::NET,
                self.links.len() as u32,
                "local",
                "net.local",
                now,
                &[("node", from as u64), ("bytes", bytes as u64)],
            );
            return now;
        }
        let ser = (bytes as u64).div_ceil(self.cfg.bytes_per_cycle);
        let mut route = std::mem::take(&mut self.route_buf);
        self.mesh.route_into(from, to, &mut route);
        let mut head = now + self.cfg.inject_latency;
        let mut queueing = 0;
        for &link in &route {
            let start = self.links[link].acquire(head, ser);
            queueing += start - head;
            self.tracer.span(
                track::NET,
                link as u32,
                "xfer",
                "net.link",
                start,
                ser.max(1),
                &[
                    ("from", from as u64),
                    ("to", to as u64),
                    ("bytes", bytes as u64),
                ],
            );
            head = start + self.cfg.hop_latency;
        }
        // The tail flit arrives one serialization time after the head.
        let delivered = head + ser + self.cfg.eject_latency;
        self.route_buf = route;
        self.tracer.instant(
            track::NET,
            self.links.len() as u32,
            "deliver",
            "net.msg",
            delivered,
            &[
                ("from", from as u64),
                ("to", to as u64),
                ("bytes", bytes as u64),
            ],
        );

        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;
        self.stats.total_latency += delivered - now;
        self.stats.total_queueing += queueing;
        delivered
    }

    /// The uncontended latency a `bytes`-sized message would see between
    /// two nodes (used for calibration probes; does not book links).
    pub fn ideal_latency(&self, from: usize, to: usize, bytes: u32) -> Cycle {
        if from == to {
            return 0;
        }
        let ser = (bytes as u64).div_ceil(self.cfg.bytes_per_cycle);
        let hops = self.mesh.hops(from, to) as u64;
        self.cfg.inject_latency + hops * self.cfg.hop_latency + ser + self.cfg.eject_latency
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Total busy cycles across all links (for utilization reports).
    pub fn total_link_busy(&self) -> Cycle {
        self.links.iter().map(|l| l.busy_cycles()).sum()
    }

    /// Busy cycles of the single most-loaded link (hot-spot detection).
    pub fn max_link_busy(&self) -> Cycle {
        self.links
            .iter()
            .map(|l| l.busy_cycles())
            .max()
            .unwrap_or(0)
    }

    /// Resets statistics (not link schedules).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
        for l in &mut self.links {
            l.reset_stats();
        }
    }
}

impl NetStats {
    /// Reconstructs the statistics from their JSON form (inverse of
    /// [`ToJson::to_json`](pimdsm_obs::ToJson::to_json)).
    pub fn from_json(v: &pimdsm_obs::JsonValue) -> Result<NetStats, String> {
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing {key}"))
        };
        Ok(NetStats {
            messages: field("messages")?,
            bytes: field("bytes")?,
            total_latency: field("total_latency")?,
            total_queueing: field("total_queueing")?,
        })
    }
}

impl pimdsm_obs::ToJson for NetStats {
    fn to_json(&self) -> pimdsm_obs::JsonValue {
        use pimdsm_obs::JsonValue;
        JsonValue::obj([
            ("messages", JsonValue::u64(self.messages)),
            ("bytes", JsonValue::u64(self.bytes)),
            ("total_latency", JsonValue::u64(self.total_latency)),
            ("total_queueing", JsonValue::u64(self.total_queueing)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(Mesh::new(4, 4), NetCfg::default())
    }

    #[test]
    fn self_send_is_free() {
        let mut n = net();
        assert_eq!(n.send(5, 5, 64, 123), 123);
        assert_eq!(n.stats().messages, 0);
    }

    #[test]
    fn uncontended_matches_ideal() {
        let mut n = net();
        let ideal = n.ideal_latency(0, 15, 80);
        assert_eq!(n.send(0, 15, 80, 1000), 1000 + ideal);
    }

    #[test]
    fn latency_grows_with_distance() {
        let n = net();
        assert!(n.ideal_latency(0, 15, 16) > n.ideal_latency(0, 5, 16));
        assert!(n.ideal_latency(0, 1, 16) > 0);
    }

    #[test]
    fn contention_queues_messages() {
        let mut n = net();
        let t1 = n.send(0, 3, 128, 0);
        let t2 = n.send(0, 3, 128, 0);
        let ser = 128 / 2;
        assert_eq!(t2 - t1, ser, "second message trails by serialization");
        assert!(n.stats().total_queueing > 0);
    }

    #[test]
    fn disjoint_routes_do_not_interfere() {
        let mut n = net();
        let a = n.send(0, 1, 64, 0);
        let b = n.send(14, 15, 64, 0);
        assert_eq!(a, n.ideal_latency(0, 1, 64));
        assert_eq!(b, n.ideal_latency(14, 15, 64));
    }

    #[test]
    fn wider_links_are_faster() {
        let narrow = Network::new(Mesh::new(4, 4), NetCfg::default());
        let wide = Network::new(
            Mesh::new(4, 4),
            NetCfg {
                bytes_per_cycle: 4,
                ..NetCfg::default()
            },
        );
        assert!(wide.ideal_latency(0, 15, 256) < narrow.ideal_latency(0, 15, 256));
    }

    #[test]
    fn tracer_records_link_spans_and_delivery() {
        let mut n = net();
        let t = Tracer::enabled();
        n.attach_tracer(t.clone());
        n.send(0, 3, 64, 0);
        n.send(5, 5, 64, 0); // self-send: no link spans, no delivery
        let events = t.events_sorted();
        let links = events.iter().filter(|e| e.cat == "net.link").count();
        let msgs = events.iter().filter(|e| e.cat == "net.msg").count();
        assert_eq!(links, n.hops(0, 3));
        assert_eq!(msgs, 1);
    }

    #[test]
    fn self_send_traces_a_local_instant_without_stats() {
        let mut n = net();
        let t = Tracer::enabled();
        n.attach_tracer(t.clone());
        assert_eq!(n.send(7, 7, 80, 42), 42);
        let events = t.events_sorted();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].cat, "net.local");
        assert_eq!(events[0].ts, 42);
        assert_eq!(n.stats(), NetStats::default(), "self-sends are free");
        assert_eq!(n.total_link_busy(), 0);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut n = net();
        n.send(0, 3, 64, 0);
        n.send(3, 0, 64, 0);
        let s = n.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 128);
        assert!(s.total_latency > 0);
        assert!(n.total_link_busy() > 0);
        n.reset_stats();
        assert_eq!(n.stats(), NetStats::default());
        assert_eq!(n.total_link_busy(), 0);
    }
}
