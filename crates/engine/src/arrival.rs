//! Deterministic arrival processes for open-loop service workloads.
//!
//! A closed-loop client issues its next request the moment the previous
//! one completes, so offered load tracks service capacity and tail
//! latency is flattered. An *open-loop* client issues on a schedule that
//! does not care how the system is doing — the regime where queueing
//! delay (and therefore p99) actually shows up. [`ArrivalGen`] produces
//! that schedule deterministically: a fixed inter-arrival period with
//! bounded seeded jitter, monotone by construction, bit-identical for
//! equal seeds.

use crate::rng::SimRng;
use crate::Cycle;

/// A deterministic open-loop arrival schedule: request `i` arrives at
/// `i * period` plus a seeded jitter draw in `[0, jitter]`, clamped to be
/// nondecreasing.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::arrival::ArrivalGen;
/// use pimdsm_engine::SimRng;
///
/// let mut a = ArrivalGen::new(100, 20, SimRng::new(7));
/// let mut b = ArrivalGen::new(100, 20, SimRng::new(7));
/// let t0 = a.next_arrival();
/// assert_eq!(t0, b.next_arrival());
/// assert!(a.next_arrival() >= t0);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    base: Cycle,
    period: Cycle,
    jitter: Cycle,
    last: Cycle,
    rng: SimRng,
}

impl ArrivalGen {
    /// Builds a schedule with the given inter-arrival `period` (cycles),
    /// per-arrival `jitter` bound and jitter RNG.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: Cycle, jitter: Cycle, rng: SimRng) -> Self {
        assert!(period > 0, "arrival period must be positive");
        ArrivalGen {
            base: 0,
            period,
            jitter,
            last: 0,
            rng,
        }
    }

    /// The next scheduled arrival cycle. Nondecreasing, and always at
    /// least 1 (cycle 0 is reserved as the closed-loop sentinel in the
    /// op vocabulary).
    pub fn next_arrival(&mut self) -> Cycle {
        let j = if self.jitter == 0 {
            0
        } else {
            self.rng.range(0, self.jitter + 1)
        };
        let at = (self.base + j).max(self.last).max(1);
        self.base += self.period;
        self.last = at;
        at
    }

    /// The configured inter-arrival period.
    pub fn period(&self) -> Cycle {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotone_and_track_the_period() {
        let mut g = ArrivalGen::new(50, 49, SimRng::new(3));
        let mut prev = 0;
        for i in 1..=1000u64 {
            let at = g.next_arrival();
            assert!(at >= prev, "arrival went backwards: {at} < {prev}");
            prev = at;
            // Never drifts beyond the jitter bound around the schedule.
            assert!(at <= (i - 1) * 50 + 49 + 1);
        }
        // 1000 arrivals over a 50-cycle period span ~50k cycles.
        assert!((49_000..=50_050).contains(&prev), "last arrival {prev}");
    }

    #[test]
    fn equal_seeds_give_identical_schedules() {
        let mut a = ArrivalGen::new(128, 64, SimRng::new(11));
        let mut b = ArrivalGen::new(128, 64, SimRng::new(11));
        let va: Vec<u64> = (0..256).map(|_| a.next_arrival()).collect();
        let vb: Vec<u64> = (0..256).map(|_| b.next_arrival()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn zero_jitter_is_a_fixed_cadence() {
        let mut g = ArrivalGen::new(10, 0, SimRng::new(1));
        assert_eq!(g.next_arrival(), 1); // clamped above the sentinel
        assert_eq!(g.next_arrival(), 10);
        assert_eq!(g.next_arrival(), 20);
        assert_eq!(g.period(), 10);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        ArrivalGen::new(0, 0, SimRng::new(0));
    }
}
