//! Deterministic time-ordered event queue.
//!
//! The queue is a flat two-level calendar: a window of `WINDOW` one-cycle
//! buckets starting at `base` (bucket `i` holds exactly the events due at
//! `base + i`), plus an overflow list for events scheduled beyond the
//! window. Because a bucket corresponds to a single cycle, FIFO order
//! within a bucket *is* (time, seq) order — pushes append, pops take the
//! front, and no comparisons happen on the hot path. The overflow list is
//! folded back into the window (sorted by `(time, seq)`) only when the
//! window drains, which keeps pop order identical to the `BinaryHeap`
//! implementation this replaced, byte for byte.

use std::collections::VecDeque;

use crate::Cycle;

/// One-cycle buckets in the calendar window. Events further than this
/// ahead of `base` wait in the overflow list until the window reaches
/// them; the simulator's typical latencies (1..~500 cycles) land in the
/// window directly.
const WINDOW: usize = 1024;

/// A `(time, payload)` event queue with FIFO tie-breaking.
///
/// Events pushed with equal times pop in insertion order, which keeps the
/// simulator deterministic regardless of the queue's internals.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(7, 'x');
/// q.push(7, 'y');
/// q.push(3, 'z');
/// assert_eq!(q.pop(), Some((3, 'z')));
/// assert_eq!(q.pop(), Some((7, 'x')));
/// assert_eq!(q.pop(), Some((7, 'y')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    /// Simulated time of window bucket 0.
    base: Cycle,
    /// First possibly-occupied bucket; while the queue is non-empty the
    /// bucket at `cursor` is never empty (see `settle`).
    cursor: usize,
    /// `buckets[i]` holds the events due at `base + i`, in push order.
    buckets: Vec<VecDeque<(u64, T)>>,
    /// Events due at or beyond `base + WINDOW`.
    far: Vec<FarEntry<T>>,
    len: usize,
    seq: u64,
    pops: u64,
    peak_len: usize,
}

#[derive(Debug, Clone)]
struct FarEntry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            base: 0,
            cursor: 0,
            buckets: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            far: Vec::new(),
            len: 0,
            seq: 0,
            pops: 0,
            peak_len: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        if self.len == 0 {
            // Empty queue: re-anchor the window at the new event so it
            // always lands in bucket 0.
            self.base = time;
            self.cursor = 0;
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if time < self.base {
            // A push into the past relative to the window anchor: fold
            // everything into the overflow list and rebuild. This never
            // happens on the simulator's monotonic schedule, but the
            // queue stays correct if it does.
            self.far.push(FarEntry { time, seq, payload });
            self.spill_window();
            self.rebase();
            return;
        }
        let offset = time - self.base;
        if offset < self.buckets.len() as Cycle {
            let idx = offset as usize;
            self.buckets[idx].push_back((seq, payload));
            // Buckets before the cursor are always empty, so an earlier
            // in-window push just pulls the cursor back.
            if idx < self.cursor {
                self.cursor = idx;
            }
        } else {
            self.far.push(FarEntry { time, seq, payload });
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        if self.len == 0 {
            return None;
        }
        let (_, payload) = self.buckets[self.cursor]
            .pop_front()
            .expect("cursor bucket is non-empty while the queue is");
        let time = self.base + self.cursor as Cycle;
        self.len -= 1;
        self.pops += 1;
        self.settle();
        Some((time, payload))
    }

    /// Returns the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.len == 0 {
            None
        } else {
            // `settle` maintains: non-empty queue ⇒ the cursor bucket
            // holds the earliest pending event.
            Some(self.base + self.cursor as Cycle)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events popped over the queue's lifetime. Deterministic; the
    /// driver feeds this to `pimdsm_prof` as the event-throughput count.
    pub fn total_pops(&self) -> u64 {
        self.pops
    }

    /// Deepest the queue has ever been. Deterministic per run.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Restores the invariant that `cursor` points at a non-empty bucket
    /// whenever the queue is non-empty, folding the overflow list back
    /// in when the window runs dry.
    fn settle(&mut self) {
        if self.len == 0 {
            return;
        }
        loop {
            while self.cursor < self.buckets.len() {
                if !self.buckets[self.cursor].is_empty() {
                    return;
                }
                self.cursor += 1;
            }
            debug_assert!(!self.far.is_empty());
            self.rebase();
        }
    }

    /// Moves every pending window entry into the overflow list (used
    /// only by the defensive past-push path).
    fn spill_window(&mut self) {
        for i in self.cursor..self.buckets.len() {
            let time = self.base + i as Cycle;
            for (seq, payload) in self.buckets[i].drain(..) {
                self.far.push(FarEntry { time, seq, payload });
            }
        }
        self.cursor = self.buckets.len();
    }

    /// Re-anchors the window at the earliest overflow event and moves
    /// every overflow entry that now fits into its bucket. Sorting by
    /// `(time, seq)` before distributing preserves FIFO order within
    /// each one-cycle bucket.
    fn rebase(&mut self) {
        self.far.sort_unstable_by_key(|e| (e.time, e.seq));
        self.base = self.far[0].time;
        self.cursor = 0;
        let horizon = self.base.saturating_add(self.buckets.len() as Cycle);
        let fits = self.far.partition_point(|e| e.time < horizon);
        for e in self.far.drain(..fits) {
            self.buckets[(e.time - self.base) as usize].push_back((e.seq, e.payload));
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            q.push(t, t);
        }
        let mut out = Vec::new();
        while let Some((t, p)) = q.pop() {
            assert_eq!(t, p);
            out.push(t);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(8, ());
        assert_eq!(q.peek_time(), Some(8));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_and_depth_counters_track_lifetime_extremes() {
        let mut q = EventQueue::new();
        assert_eq!((q.total_pops(), q.peak_len()), (0, 0));
        q.push(1, ());
        q.push(2, ());
        q.push(3, ());
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.push(4, ());
        assert_eq!(q.peak_len(), 3, "peak is a lifetime maximum");
        while q.pop().is_some() {}
        assert_eq!(q.total_pops(), 4);
        assert_eq!(q.pop(), None);
        assert_eq!(q.total_pops(), 4, "popping empty does not count");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 'a');
        q.push(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        q.push(15, 'c');
        q.push(5, 'd');
        assert_eq!(q.pop(), Some((5, 'd')));
        assert_eq!(q.pop(), Some((15, 'c')));
        assert_eq!(q.pop(), Some((20, 'b')));
    }

    #[test]
    fn far_events_cross_the_window_in_order() {
        let mut q = EventQueue::new();
        // Two events a full disk fault apart, plus ties on the far side.
        q.push(0, 0u64);
        q.push(1_000_000, 1);
        q.push(1_000_000, 2);
        q.push(3, 3);
        assert_eq!(q.pop(), Some((0, 0)));
        assert_eq!(q.pop(), Some((3, 3)));
        assert_eq!(q.pop(), Some((1_000_000, 1)));
        assert_eq!(q.pop(), Some((1_000_000, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn past_push_before_the_window_anchor_stays_ordered() {
        let mut q = EventQueue::new();
        // First push anchors the window at 2000 …
        q.push(2000, 'a');
        q.push(2000, 'b');
        // … so this lands before `base` and forces a full rebuild.
        q.push(100, 'c');
        q.push(2000, 'd');
        assert_eq!(q.pop(), Some((100, 'c')));
        assert_eq!(q.pop(), Some((2000, 'a')));
        assert_eq!(q.pop(), Some((2000, 'b')));
        assert_eq!(q.pop(), Some((2000, 'd')));
        assert_eq!(q.pop(), None);
    }
}
