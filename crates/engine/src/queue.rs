//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A min-heap of `(time, payload)` events with FIFO tie-breaking.
///
/// Events pushed with equal times pop in insertion order, which keeps the
/// simulator deterministic regardless of heap internals.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(7, 'x');
/// q.push(7, 'y');
/// q.push(3, 'z');
/// assert_eq!(q.pop(), Some((3, 'z')));
/// assert_eq!(q.pop(), Some((7, 'x')));
/// assert_eq!(q.pop(), Some((7, 'y')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Returns the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            q.push(t, t);
        }
        let mut out = Vec::new();
        while let Some((t, p)) = q.pop() {
            assert_eq!(t, p);
            out.push(t);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(8, ());
        assert_eq!(q.peek_time(), Some(8));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 'a');
        q.push(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        q.push(15, 'c');
        q.push(5, 'd');
        assert_eq!(q.pop(), Some((5, 'd')));
        assert_eq!(q.pop(), Some((15, 'c')));
        assert_eq!(q.pop(), Some((20, 'b')));
    }
}
