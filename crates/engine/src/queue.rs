//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A min-heap of `(time, payload)` events with FIFO tie-breaking.
///
/// Events pushed with equal times pop in insertion order, which keeps the
/// simulator deterministic regardless of heap internals.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(7, 'x');
/// q.push(7, 'y');
/// q.push(3, 'z');
/// assert_eq!(q.pop(), Some((3, 'z')));
/// assert_eq!(q.pop(), Some((7, 'x')));
/// assert_eq!(q.pop(), Some((7, 'y')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    pops: u64,
    peak_len: usize,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest (time, seq) first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            pops: 0,
            peak_len: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let e = self.heap.pop();
        if e.is_some() {
            self.pops += 1;
        }
        e.map(|e| (e.time, e.payload))
    }

    /// Returns the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped over the queue's lifetime. Deterministic; the
    /// driver feeds this to `pimdsm_prof` as the event-throughput count.
    pub fn total_pops(&self) -> u64 {
        self.pops
    }

    /// Deepest the queue has ever been. Deterministic per run.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 9, 3, 7] {
            q.push(t, t);
        }
        let mut out = Vec::new();
        while let Some((t, p)) = q.pop() {
            assert_eq!(t, p);
            out.push(t);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(8, ());
        assert_eq!(q.peek_time(), Some(8));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_and_depth_counters_track_lifetime_extremes() {
        let mut q = EventQueue::new();
        assert_eq!((q.total_pops(), q.peak_len()), (0, 0));
        q.push(1, ());
        q.push(2, ());
        q.push(3, ());
        assert_eq!(q.peak_len(), 3);
        q.pop();
        q.pop();
        q.push(4, ());
        assert_eq!(q.peak_len(), 3, "peak is a lifetime maximum");
        while q.pop().is_some() {}
        assert_eq!(q.total_pops(), 4);
        assert_eq!(q.pop(), None);
        assert_eq!(q.total_pops(), 4, "popping empty does not count");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, 'a');
        q.push(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        q.push(15, 'c');
        q.push(5, 'd');
        assert_eq!(q.pop(), Some((5, 'd')));
        assert_eq!(q.pop(), Some((15, 'c')));
        assert_eq!(q.pop(), Some((20, 'b')));
    }
}
