//! Lightweight statistics collectors.

/// A power-of-two bucketed histogram of cycle counts.
///
/// # Bucket indexing
///
/// The bucket layout is fixed and part of the public API:
///
/// * `buckets()[0]` holds samples with value **0 or 1**.
/// * `buckets()[i]` for `i >= 1` holds samples in **`[2^i, 2^(i+1))`** —
///   i.e. an exact power of two `2^i` lands in bucket `i`, and
///   `2^(i+1) - 1` is the largest value in bucket `i`.
/// * `u64::MAX` lands in the last bucket, `buckets()[63]`, which covers
///   `[2^63, u64::MAX]`.
///
/// Equivalently, for `value > 1` the index is `63 - value.leading_zeros()`
/// (the position of the most significant set bit). [`Histogram::bucket_of`]
/// exposes this mapping and [`Histogram::bucket_bounds`] its inverse.
///
/// The running `sum` saturates at `u64::MAX` rather than wrapping, so a
/// histogram fed extreme values still reports a coherent (if clamped) total.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(300);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum(), 303);
/// assert_eq!(Histogram::bucket_of(3), 1);
/// assert_eq!(Histogram::bucket_of(256), 8);
/// assert_eq!(Histogram::bucket_bounds(8), (256, 511));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Bucket index a value falls into (see the type-level docs).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Inclusive `(lo, hi)` value range covered by bucket `i`.
    ///
    /// Bucket 0 covers `(0, 1)`; bucket `i >= 1` covers
    /// `(2^i, 2^(i+1) - 1)`, with bucket 63 capped at `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    #[inline]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < 64, "bucket index {i} out of range");
        if i == 0 {
            (0, 1)
        } else if i == 63 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << i, (1u64 << (i + 1)) - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, for rendering. Indexing is documented on the type.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Estimated `p`-th percentile (`0.0..=100.0`) by linear interpolation
    /// within the containing bucket.
    ///
    /// The rank `p/100 * (count - 1)` is located in the cumulative bucket
    /// counts; the result interpolates between the bucket's inclusive
    /// bounds according to where the rank falls among that bucket's
    /// samples. The estimate is exact when all of a bucket's samples sit at
    /// its lower bound, is never below the true minimum bucket bound, never
    /// above `max()`, and is monotone in `p`. Returns 0.0 for an empty
    /// histogram.
    ///
    /// ```
    /// use pimdsm_engine::Histogram;
    /// let mut h = Histogram::new();
    /// for v in [8, 8, 8, 8] { h.record(v); }
    /// let p50 = h.percentile(50.0);
    /// assert!((8.0..16.0).contains(&p50));
    /// ```
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        // Fractional rank in [0, count-1].
        let rank = p / 100.0 * (self.count - 1) as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let first = seen as f64; // rank of the bucket's first sample
            let last = (seen + n - 1) as f64; // rank of its last sample
            if rank <= last {
                let (lo, hi) = Self::bucket_bounds(i);
                let hi = hi.min(self.max).max(lo);
                let frac = if last > first {
                    ((rank - first) / (last - first)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                return lo as f64 + frac * (hi - lo) as f64;
            }
            seen += n;
        }
        self.max as f64
    }

    /// Rebuilds a histogram from previously captured raw parts
    /// ([`buckets`](Histogram::buckets), [`count`](Histogram::count),
    /// [`sum`](Histogram::sum), [`max`](Histogram::max)) — the inverse used
    /// by JSON round-trips of recorded distributions.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts do not sum to `count`.
    pub fn from_raw(buckets: [u64; 64], count: u64, sum: u64, max: u64) -> Self {
        assert_eq!(
            buckets.iter().sum::<u64>(),
            count,
            "histogram bucket counts must sum to count"
        );
        Histogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Running mean/min/max/variance without storing samples.
///
/// Uses Welford's online algorithm, so the variance is numerically stable
/// even for long runs of large cycle counts, and two collectors can be
/// [merged](RunningStats::merge) exactly (Chan et al.'s parallel update).
///
/// # Examples
///
/// ```
/// use pimdsm_engine::RunningStats;
///
/// let mut s = RunningStats::new();
/// s.add(2.0);
/// s.add(4.0);
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.variance(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample (Welford update).
    pub fn add(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another collector into this one.
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// fed every sample into a single collector, using Chan et al.'s
    /// parallel combination of Welford states.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.buckets()[0], 2); // 0, 1
        assert_eq!(h.buckets()[1], 2); // 2, 3
        assert_eq!(h.buckets()[2], 1); // 4
        assert_eq!(h.max(), 4);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn histogram_bucket_indexing_boundaries() {
        // Exact powers of two land in the bucket bearing their exponent.
        for i in 1..64 {
            let v = 1u64 << i;
            assert_eq!(Histogram::bucket_of(v), i, "2^{i}");
            if v > 2 {
                assert_eq!(Histogram::bucket_of(v - 1), i - 1, "2^{i} - 1");
            }
        }
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);

        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.buckets()[63], 2);
        assert_eq!(h.max(), u64::MAX);
        // Sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_bounds_invert_bucket_of() {
        for i in 0..64 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i);
            assert_eq!(Histogram::bucket_of(hi), i);
            assert!(lo <= hi);
        }
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_bounds(63).1, u64::MAX);
    }

    #[test]
    fn histogram_from_raw_round_trips() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 9, 4096, 0] {
            h.record(v);
        }
        let rebuilt = Histogram::from_raw(*h.buckets(), h.count(), h.sum(), h.max());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.percentile(50.0), h.percentile(50.0));
    }

    #[test]
    #[should_panic(expected = "must sum to count")]
    fn histogram_from_raw_rejects_inconsistent_count() {
        let _ = Histogram::from_raw([0; 64], 3, 0, 0);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 1010);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn percentile_empty_and_single() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0.0);
        let mut h = Histogram::new();
        h.record(100);
        for p in [0.0, 50.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!((64.0..=100.0).contains(&v), "p{p} = {v}");
        }
    }

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 5, 9, 17, 64, 64, 200, 4096] {
            h.record(v);
        }
        let mut prev = f64::NEG_INFINITY;
        for p in 0..=100 {
            let v = h.percentile(p as f64);
            assert!(v >= prev, "p{p}: {v} < {prev}");
            assert!(v <= h.max() as f64);
            prev = v;
        }
        // p0 starts in the lowest occupied bucket, p100 reaches the max.
        assert!(h.percentile(0.0) <= 1.0);
        assert_eq!(h.percentile(100.0), h.max() as f64);
    }

    #[test]
    fn percentile_interpolates_within_bucket() {
        // 100 samples all in bucket 4 ([16, 31]): p0 pins to the lower
        // bound and p100 pins to the recorded max.
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(16);
        }
        h.record(31);
        assert_eq!(h.percentile(0.0), 16.0);
        assert_eq!(h.percentile(100.0), 31.0);
        let p50 = h.percentile(50.0);
        assert!((16.0..=31.0).contains(&p50));
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn running_stats_tracks_extremes() {
        let mut s = RunningStats::new();
        for v in [5.0, -1.0, 9.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn welford_variance_matches_direct_formula() {
        let samples = [3.0_f64, 7.0, 7.0, 19.0, 24.0, 1.0, 100.0];
        let mut s = RunningStats::new();
        for v in samples {
            s.add(v);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential_feed() {
        let xs = [2.0_f64, 4.0, 4.0, 4.0, 5.0];
        let ys = [5.0_f64, 7.0, 9.0, 100.0];
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for v in xs {
            a.add(v);
            whole.add(v);
        }
        for v in ys {
            b.add(v);
            whole.add(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.add(3.0);
        a.add(5.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
