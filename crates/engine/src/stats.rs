//! Lightweight statistics collectors.

/// A power-of-two bucketed histogram of cycle counts.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))`, with bucket 0 holding 0
/// and 1. Useful for latency distributions without storing every sample.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::Histogram;
///
/// let mut h = Histogram::new();
/// h.record(3);
/// h.record(300);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum(), 303);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts, for rendering.
    pub fn buckets(&self) -> &[u64; 64] {
        &self.buckets
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Running mean/min/max without storing samples.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::RunningStats;
///
/// let mut s = RunningStats::new();
/// s.add(2.0);
/// s.add(4.0);
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest sample (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        assert_eq!(h.buckets()[0], 2); // 0, 1
        assert_eq!(h.buckets()[1], 2); // 2, 3
        assert_eq!(h.buckets()[2], 1); // 4
        assert_eq!(h.max(), 4);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 1010);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn running_stats_tracks_extremes() {
        let mut s = RunningStats::new();
        for v in [5.0, -1.0, 9.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 4.0).abs() < 1e-12);
    }
}
