//! Contended resource models.
//!
//! All contention in the simulator — network links, DRAM banks, directory
//! controllers, D-node protocol processors — is expressed with two
//! primitives:
//!
//! - [`Timeline`]: a single-server FIFO resource. `acquire(at, dur)` books
//!   the earliest slot of length `dur` starting no earlier than `at`.
//! - [`Server`]: a [`Timeline`] with the paper's latency/occupancy split
//!   (Table 2): a request holds the server for its *occupancy*, but the
//!   reply departs after the (possibly shorter) *latency*.

use crate::Cycle;

/// Window width for the bucketed capacity model, as a power of two.
const BUCKET_SHIFT: u32 = 8;
/// Cycles of service capacity per window.
const BUCKET_CYCLES: Cycle = 1 << BUCKET_SHIFT;
/// Windows per storage chunk, as a power of two. One chunk covers
/// `BUCKET_CYCLES << CHUNK_SHIFT` = 64K cycles in 2 KiB — small enough
/// that a machine full of mostly-idle resources doesn't pay megabytes of
/// zeroed storage, large enough that a busy resource touches few chunks.
const CHUNK_SHIFT: u32 = 8;
/// Windows per storage chunk.
const CHUNK: usize = 1 << CHUNK_SHIFT;

/// A single-server queued resource with time-bucketed capacity.
///
/// The timeline divides simulated time into 256-cycle windows and tracks
/// how much service each window has handed out. Within a window behavior
/// is exactly a FIFO single server; across windows, capacity drains with
/// time. Crucially, this stays correct when acquisitions arrive *out of
/// time order* — the conservatively-ordered transaction walk books
/// chained events at future timestamps, and a booking far in the future
/// must not delay traffic at earlier times, nor may a burst at one
/// instant inflate waits at unrelated times.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::Timeline;
///
/// let mut bank = Timeline::new();
/// assert_eq!(bank.acquire(100, 10), 100); // idle: starts immediately
/// assert_eq!(bank.acquire(105, 10), 110); // contended: queues behind
/// assert_eq!(bank.busy_cycles(), 20);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Booked service per window, as a chunked dense array indexed by
    /// window number. A missing chunk means every window in it is
    /// untouched; windows are written once and never removed, so a flat
    /// array beats a search tree on both lookup and allocation churn.
    used: Vec<Option<Box<[Cycle; CHUNK]>>>,
    max_finish: Cycle,
    busy: Cycle,
    uses: u64,
}

impl Timeline {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Booked service in window `b` (0 when never touched).
    #[inline]
    fn window(&self, b: Cycle) -> Cycle {
        match self.used.get((b >> CHUNK_SHIFT) as usize) {
            Some(Some(chunk)) => chunk[b as usize & (CHUNK - 1)],
            _ => 0,
        }
    }

    /// Mutable booked-service slot for window `b`, allocating its chunk
    /// on first touch.
    #[inline]
    fn window_mut(&mut self, b: Cycle) -> &mut Cycle {
        let ci = (b >> CHUNK_SHIFT) as usize;
        if ci >= self.used.len() {
            self.used.resize_with(ci + 1, || None);
        }
        let chunk = self.used[ci].get_or_insert_with(|| Box::new([0; CHUNK]));
        &mut chunk[b as usize & (CHUNK - 1)]
    }

    /// Finds the first window at or after `at` with spare capacity;
    /// service starts behind whatever that window already booked. A
    /// duration may overflow past the window boundary by at most one
    /// request's worth, which is far below the window size in practice.
    #[inline]
    fn place(&self, at: Cycle) -> (Cycle, Cycle) {
        let mut b = at >> BUCKET_SHIFT;
        loop {
            let bstart = b << BUCKET_SHIFT;
            let used = self.window(b);
            let pos = used.max(at.saturating_sub(bstart));
            if pos >= BUCKET_CYCLES {
                b += 1;
                continue;
            }
            return (b, bstart + pos);
        }
    }

    /// Books the resource for `dur` cycles for a request arriving at `at`.
    ///
    /// Returns the cycle at which service starts (`>= at`).
    #[inline]
    pub fn acquire(&mut self, at: Cycle, dur: Cycle) -> Cycle {
        let (bucket, start) = self.place(at);
        let bstart = bucket << BUCKET_SHIFT;
        *self.window_mut(bucket) = (start - bstart) + dur;
        self.max_finish = self.max_finish.max(start + dur);
        self.busy += dur;
        self.uses += 1;
        start
    }

    /// The latest known service completion.
    pub fn free_at(&self) -> Cycle {
        self.max_finish
    }

    /// How long a request arriving at `at` would wait before service.
    #[inline]
    pub fn wait_at(&self, at: Cycle) -> Cycle {
        let (_, start) = self.place(at);
        start - at
    }

    /// Total cycles of booked service time.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Number of acquisitions.
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Resets utilization counters (not the schedule).
    pub fn reset_stats(&mut self) {
        self.busy = 0;
        self.uses = 0;
    }
}

// Equality is over the *schedule*, not the storage: a chunk allocated but
// still all-zero books nothing and must compare equal to no chunk at all.
impl PartialEq for Timeline {
    fn eq(&self, other: &Self) -> bool {
        self.max_finish == other.max_finish
            && self.busy == other.busy
            && self.uses == other.uses
            && (0..(self.used.len().max(other.used.len()) * CHUNK) as Cycle)
                .all(|b| self.window(b) == other.window(b))
    }
}

impl Eq for Timeline {}

/// Outcome of dispatching a request to a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerGrant {
    /// Cycle at which the handler began executing.
    pub start: Cycle,
    /// Cycle at which the reply departs (start + latency).
    pub reply_at: Cycle,
    /// Cycle at which the server can accept the next request
    /// (start + occupancy).
    pub free_at: Cycle,
}

/// A request server with distinct latency and occupancy, modeling the
/// paper's protocol handlers (Table 2).
///
/// *Latency* is the time from handler start until its reply message can be
/// injected; *occupancy* is how long the handler keeps the protocol
/// processor busy. Occupancy ≥ latency is typical for the paper's software
/// handlers (e.g. Read: latency 40, occupancy 80).
///
/// # Examples
///
/// ```
/// use pimdsm_engine::Server;
///
/// let mut dnode = Server::new();
/// let g1 = dnode.dispatch(0, 40, 80);
/// assert_eq!((g1.start, g1.reply_at, g1.free_at), (0, 40, 80));
/// // The next request queues behind the 80-cycle occupancy even though the
/// // first reply left at cycle 40.
/// let g2 = dnode.dispatch(10, 40, 80);
/// assert_eq!(g2.start, 80);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Server {
    timeline: Timeline,
    handled: u64,
}

impl Server {
    /// Creates an idle server.
    pub fn new() -> Self {
        Server::default()
    }

    /// Dispatches a request arriving at `at` with the given handler
    /// `latency` and `occupancy`.
    ///
    /// # Panics
    ///
    /// Panics if `latency > occupancy`; a handler cannot reply after it has
    /// already released the processor.
    #[inline]
    pub fn dispatch(&mut self, at: Cycle, latency: Cycle, occupancy: Cycle) -> ServerGrant {
        assert!(
            latency <= occupancy,
            "handler latency ({latency}) must not exceed occupancy ({occupancy})"
        );
        let start = self.timeline.acquire(at, occupancy);
        self.handled += 1;
        ServerGrant {
            start,
            reply_at: start + latency,
            free_at: start + occupancy,
        }
    }

    /// Books the server without a reply (pure occupancy, e.g. handling an
    /// acknowledgment). Returns the start cycle.
    #[inline]
    pub fn occupy(&mut self, at: Cycle, occupancy: Cycle) -> Cycle {
        self.handled += 1;
        self.timeline.acquire(at, occupancy)
    }

    /// Total cycles the server has been busy.
    pub fn busy_cycles(&self) -> Cycle {
        self.timeline.busy_cycles()
    }

    /// Number of requests handled.
    pub fn handled(&self) -> u64 {
        self.handled
    }

    /// The cycle at which the server next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.timeline.free_at()
    }

    /// Resets utilization counters (not the schedule).
    pub fn reset_stats(&mut self) {
        self.timeline.reset_stats();
        self.handled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_idle_starts_immediately() {
        let mut t = Timeline::new();
        assert_eq!(t.acquire(50, 5), 50);
        assert_eq!(t.free_at(), 55);
    }

    #[test]
    fn timeline_queues_fifo() {
        let mut t = Timeline::new();
        t.acquire(0, 10);
        assert_eq!(t.acquire(3, 10), 10);
        assert_eq!(t.acquire(3, 10), 20);
        assert_eq!(t.busy_cycles(), 30);
        assert_eq!(t.uses(), 3);
    }

    #[test]
    fn timeline_gap_then_idle() {
        let mut t = Timeline::new();
        t.acquire(0, 10);
        // Arrives after the resource went idle again.
        assert_eq!(t.acquire(100, 10), 100);
        assert_eq!(t.wait_at(105), 5);
        assert_eq!(t.wait_at(200), 0);
    }

    #[test]
    fn server_latency_occupancy_split() {
        let mut s = Server::new();
        let g = s.dispatch(100, 40, 140);
        assert_eq!(g.start, 100);
        assert_eq!(g.reply_at, 140);
        assert_eq!(g.free_at, 240);
        let g2 = s.dispatch(100, 40, 80);
        assert_eq!(g2.start, 240);
        assert_eq!(s.handled(), 2);
        assert_eq!(s.busy_cycles(), 220);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn server_rejects_latency_above_occupancy() {
        Server::new().dispatch(0, 50, 40);
    }

    #[test]
    fn server_occupy_books_time() {
        let mut s = Server::new();
        assert_eq!(s.occupy(10, 40), 10);
        assert_eq!(s.occupy(10, 40), 50);
        assert_eq!(s.free_at(), 90);
    }

    #[test]
    fn reset_stats_keeps_schedule() {
        let mut t = Timeline::new();
        t.acquire(0, 100);
        t.reset_stats();
        assert_eq!(t.busy_cycles(), 0);
        // Schedule preserved: still busy until 100.
        assert_eq!(t.acquire(0, 1), 100);
    }
}
