//! Deterministic random-number plumbing for the synthetic workloads.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — small, fast,
//! `Clone`, and bit-for-bit reproducible across platforms and crate
//! versions, which matters for a simulator whose whole evaluation rests on
//! repeatable reference streams.

/// A seeded, deterministic RNG used by workload generators.
///
/// # Examples
///
/// ```
/// use pimdsm_engine::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.range(0, 1000), b.range(0, 1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// Uses Lemire's nearly-divisionless bounded sampling; the tiny modulo
    /// bias for ranges far below 2^64 is irrelevant for workload synthesis.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick an index from an empty range");
        self.range(0, n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Derives an independent child RNG (e.g. one per thread) so streams do
    /// not depend on inter-thread interleaving.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64();
        SimRng::new(s ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// A Zipf(θ) sampler over `{0, .., n-1}` with a precomputed CDF.
///
/// Used to model skewed sharing (e.g. Barnes-Hut tree nodes near the root
/// are read by every thread far more often than the leaves).
///
/// # Examples
///
/// ```
/// use pimdsm_engine::{SimRng, Zipf};
///
/// let zipf = Zipf::new(1000, 0.9);
/// let mut rng = SimRng::new(7);
/// let mut hits0 = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 0 {
///         hits0 += 1;
///     }
/// }
/// // Item 0 is by far the hottest.
/// assert!(hits0 > 300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` items with exponent `theta`.
    ///
    /// `theta = 0` is uniform; `theta` near 1 is strongly skewed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler covers zero items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one item index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        let va: Vec<u64> = (0..32).map(|_| a.range(0, 1_000_000)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.range(0, 1_000_000)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::new(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::new(21);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::new(5);
        let mut root2 = SimRng::new(5);
        let mut c1 = root1.fork(0);
        let mut c2 = root2.fork(0);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d1 = root1.fork(1);
        let vals1: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let vals2: Vec<u64> = (0..8).map(|_| d1.next_u64()).collect();
        assert_ne!(vals1, vals2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(77);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items should not be identity");
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SimRng::new(11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skewed_orders_frequencies() {
        let z = Zipf::new(16, 1.0);
        let mut rng = SimRng::new(13);
        let mut counts = [0u32; 16];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[15]);
    }

    #[test]
    fn zipf_sample_in_range() {
        let z = Zipf::new(3, 0.7);
        let mut rng = SimRng::new(17);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn zipf_hot_mass_grows_with_theta() {
        // The service-workload skew sweep (θ ∈ {0.6, 0.9, 1.2}) relies on
        // higher exponents concentrating requests on the hot keys.
        let mut prev_hot = 0u32;
        for theta in [0.0, 0.6, 0.9, 1.2] {
            let z = Zipf::new(1024, theta);
            let mut rng = SimRng::new(99);
            let mut hot = 0u32;
            for _ in 0..50_000 {
                // Top 1% of the key space.
                if z.sample(&mut rng) < 10 {
                    hot += 1;
                }
            }
            assert!(
                hot > prev_hot,
                "hot mass did not grow at θ={theta}: {hot} <= {prev_hot}"
            );
            prev_hot = hot;
        }
    }

    #[test]
    fn zipf_golden_sequence_pins_cross_run_identity() {
        // Bit-identical across *process runs* (and platforms): the first
        // draws of a fixed (n, θ, seed) are pinned. If this moves, every
        // cached lab result keyed on a svc workload is stale.
        let z = Zipf::new(100, 0.9);
        let mut rng = SimRng::new(42);
        let seq: Vec<usize> = (0..8).map(|_| z.sample(&mut rng)).collect();
        assert_eq!(seq, GOLDEN_ZIPF_100_09_SEED42);
    }

    const GOLDEN_ZIPF_100_09_SEED42: [usize; 8] = [0, 5, 24, 73, 96, 37, 29, 53];
}
