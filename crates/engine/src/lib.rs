//! Discrete-event simulation kernel for the PIM-DSM simulator.
//!
//! This crate provides the timing substrate every other crate builds on:
//!
//! - [`Cycle`] — the simulated clock (CPU cycles of the 1 GHz cores the
//!   paper models).
//! - [`EventQueue`] — a deterministic time-ordered queue with FIFO
//!   tie-breaking, used by the machine driver to schedule threads.
//! - [`Timeline`] and [`Server`] — contended resources. A [`Timeline`] is a
//!   single-server FIFO resource (a network link, a DRAM bank); a
//!   [`Server`] separates *latency* (time until the reply leaves) from
//!   *occupancy* (time until the server can accept the next request), which
//!   is exactly how the paper characterizes its software protocol handlers
//!   (Table 2).
//! - [`SimRng`] — a seeded deterministic RNG plus the distribution helpers
//!   the synthetic workloads need (Zipf, geometric).
//! - [`ArrivalGen`] — a deterministic open-loop arrival schedule for the
//!   service workloads (fixed period plus bounded seeded jitter).
//!
//! The whole simulator is single-threaded and deterministic: the same
//! configuration and seed always produce the same cycle counts.
//!
//! # Examples
//!
//! ```
//! use pimdsm_engine::{EventQueue, Timeline};
//!
//! let mut q = EventQueue::new();
//! q.push(10, "b");
//! q.push(5, "a");
//! assert_eq!(q.pop(), Some((5, "a")));
//!
//! let mut link = Timeline::new();
//! // Two back-to-back 4-cycle acquisitions contend: the second starts when
//! // the first finishes.
//! assert_eq!(link.acquire(0, 4), 0);
//! assert_eq!(link.acquire(1, 4), 4);
//! ```

pub mod arrival;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;

pub use arrival::ArrivalGen;
pub use queue::EventQueue;
pub use resource::{Server, ServerGrant, Timeline};
pub use rng::{SimRng, Zipf};
pub use stats::{Histogram, RunningStats};

/// Simulated time, in CPU cycles of the modeled 1 GHz processors.
pub type Cycle = u64;
