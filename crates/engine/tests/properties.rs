//! Property-based tests for the simulation kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use pimdsm_engine::{EventQueue, Histogram, SimRng, Timeline, Zipf};

/// The specification `EventQueue` is tested against: a plain min-heap of
/// `(time, seq, payload)` with an explicit insertion sequence for FIFO
/// tie-breaking — the exact structure the calendar queue replaced.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    pops: u64,
    peak: usize,
}

impl HeapModel {
    fn push(&mut self, time: u64, payload: usize) {
        self.heap.push(Reverse((time, self.seq, payload)));
        self.seq += 1;
        self.peak = self.peak.max(self.heap.len());
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        let e = self.heap.pop();
        if e.is_some() {
            self.pops += 1;
        }
        e.map(|Reverse((t, _, p))| (t, p))
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

proptest! {
    /// Service never starts before the request arrives, and the capacity
    /// handed out inside any 256-cycle window never exceeds the window
    /// plus one request's duration (the documented overflow tolerance).
    #[test]
    fn timeline_capacity_conservation(
        reqs in proptest::collection::vec((0u64..10_000, 1u64..200), 1..300)
    ) {
        let mut t = Timeline::new();
        let mut per_window: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut max_dur = 0;
        for (at, dur) in reqs {
            let start = t.acquire(at, dur);
            prop_assert!(start >= at, "service started before arrival");
            *per_window.entry(start >> 8).or_insert(0) += dur;
            max_dur = max_dur.max(dur);
        }
        for (_, used) in per_window {
            prop_assert!(
                used <= 256 + max_dur,
                "window oversubscribed: {used} cycles booked"
            );
        }
    }

    /// With nondecreasing arrivals the timeline is a FIFO server up to
    /// the documented window-boundary tolerance: a service may overlap
    /// the previous one by at most one request duration (when the
    /// previous booking ran past its 256-cycle window).
    #[test]
    fn timeline_fifo_for_ordered_arrivals(
        mut gaps in proptest::collection::vec((0u64..50, 1u64..40), 1..100)
    ) {
        let mut t = Timeline::new();
        let mut at = 0;
        let mut prev_end = 0u64;
        let mut max_dur = 0u64;
        for (gap, dur) in gaps.drain(..) {
            at += gap;
            let start = t.acquire(at, dur);
            max_dur = max_dur.max(dur);
            prop_assert!(
                start + max_dur >= prev_end,
                "overlap beyond the one-request tolerance: start {start}, prev end {prev_end}"
            );
            prev_end = prev_end.max(start + dur);
        }
    }

    /// The event queue pops every event in time order, FIFO on ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..100, 0..200)
    ) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push(t, seq);
        }
        let mut prev: Option<(u64, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((pt, pseq)) = prev {
                prop_assert!(t > pt || (t == pt && seq > pseq), "order violated");
            }
            prev = Some((t, seq));
        }
        prop_assert!(q.is_empty());
    }

    /// The calendar queue is observationally identical to a `BinaryHeap`
    /// reference model under random interleaved push/pop traffic with
    /// heavy ties: every pop, every peek, the live length, and the
    /// lifetime `pops`/`peak_len` counters all agree. Deltas are drawn to
    /// cluster times (ties), stay inside the calendar window, and spill
    /// far past it (disk-fault-sized latencies), so the overflow fold-in
    /// path is exercised too.
    #[test]
    fn event_queue_matches_heap_reference_model(
        ops in proptest::collection::vec((0u64..8, 0u64..2000), 1..500)
    ) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::default();
        let mut now = 0u64;
        let mut next_payload = 0usize;
        for (kind, x) in ops {
            match kind {
                0..=4 => {
                    let delta = match kind {
                        0 => 0,
                        1 => x % 4,
                        2 => x,
                        3 => 1_000_000 + x,
                        _ => x % 64,
                    };
                    q.push(now + delta, next_payload);
                    model.push(now + delta, next_payload);
                    next_payload += 1;
                }
                _ => {
                    let got = q.pop();
                    prop_assert_eq!(got, model.pop());
                    if let Some((t, _)) = got {
                        now = t;
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.peek_time(), model.peek_time());
        }
        loop {
            let got = q.pop();
            prop_assert_eq!(got, model.pop());
            if got.is_none() {
                break;
            }
        }
        prop_assert_eq!(q.total_pops(), model.pops);
        prop_assert_eq!(q.peak_len(), model.peak);
    }

    /// Counter parity on a pure push-then-drain schedule: `peak_len` is
    /// the high-water mark and `total_pops` counts only successful pops,
    /// exactly as the reference model defines them.
    #[test]
    fn event_queue_counters_match_reference(
        times in proptest::collection::vec(0u64..50, 0..200)
    ) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::default();
        for (payload, &t) in times.iter().enumerate() {
            q.push(t, payload);
            model.push(t, payload);
        }
        while q.pop().is_some() {
            model.pop();
        }
        prop_assert_eq!(q.pop(), None);
        prop_assert_eq!(model.pop(), None);
        prop_assert_eq!(q.total_pops(), model.pops);
        prop_assert_eq!(q.peak_len(), model.peak);
    }

    /// RNG ranges stay within bounds and forks are deterministic.
    #[test]
    fn rng_bounds_and_fork_determinism(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..32 {
            let x = a.range(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span);
            prop_assert_eq!(x, b.range(lo, lo + span));
        }
        let mut fa = a.fork(7);
        let mut fb = b.fork(7);
        prop_assert_eq!(fa.next_u64(), fb.next_u64());
    }

    /// Histogram bucket indexing invariants: every recorded value lands in
    /// the documented bucket (`buckets()[i]` covers `[2^i, 2^(i+1))`, with
    /// bucket 0 holding {0, 1} and bucket 63 capped at `u64::MAX`), bucket
    /// bounds invert the mapping, counts are conserved, and percentiles are
    /// monotone and bounded by the observed maximum. Boundary values —
    /// exact powers of two, their neighbours, and `u64::MAX` — are mixed
    /// into every case.
    #[test]
    fn histogram_bucket_indexing_invariants(
        values in proptest::collection::vec(any::<u64>(), 1..100),
        shifts in proptest::collection::vec(0u32..64, 1..20)
    ) {
        let mut h = Histogram::new();
        let mut expected = [0u64; 64];
        let boundary = shifts
            .iter()
            .flat_map(|&s| {
                let p = 1u64 << s;
                [p, p.saturating_sub(1), p.saturating_add(1)]
            })
            .chain([0, 1, u64::MAX]);
        for v in values.iter().copied().chain(boundary) {
            let i = Histogram::bucket_of(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            prop_assert!(
                (lo..=hi).contains(&v),
                "value {v} mapped to bucket {i} = [{lo}, {hi}]"
            );
            // Documented closed form: MSB position for v > 1.
            if v > 1 {
                prop_assert_eq!(i, 63 - v.leading_zeros() as usize);
            } else {
                prop_assert_eq!(i, 0);
            }
            h.record(v);
            expected[i] += 1;
        }
        prop_assert_eq!(h.buckets(), &expected);
        prop_assert_eq!(h.count(), expected.iter().sum::<u64>());
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            let q = h.percentile(p);
            prop_assert!(q >= prev, "percentile not monotone at p{p}");
            prop_assert!(q <= h.max() as f64);
            prev = q;
        }
    }

    /// Zipf samples stay in range for any size/exponent.
    #[test]
    fn zipf_in_range(n in 1usize..2000, theta in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Skew monotonicity, pointwise: Zipf is inverse-CDF sampled and
    /// `p_i ∝ i^-θ` is likelihood-ratio ordered in θ, so under common
    /// random numbers a higher exponent never yields a *colder* (higher)
    /// index than a lower one. This is the noise-free form of "higher θ
    /// puts more mass on the hot keys".
    #[test]
    fn zipf_skew_monotone_under_common_draws(
        n in 2usize..2000,
        theta in 0.0f64..1.5,
        delta in 0.01f64..1.0,
        seed in any::<u64>()
    ) {
        let cold = Zipf::new(n, theta);
        let hot = Zipf::new(n, theta + delta);
        let mut rc = SimRng::new(seed);
        let mut rh = rc.clone();
        for _ in 0..64 {
            let c = cold.sample(&mut rc);
            let h = hot.sample(&mut rh);
            prop_assert!(h <= c, "θ={theta} drew {c}, θ+{delta} drew hotter-is-colder {h}");
        }
    }

    /// Two independently constructed samplers with equal parameters and
    /// equal seeds produce bit-identical index sequences.
    #[test]
    fn zipf_equal_seeds_bit_identical(
        n in 1usize..500,
        theta in 0.0f64..2.0,
        seed in any::<u64>()
    ) {
        let z1 = Zipf::new(n, theta);
        let z2 = Zipf::new(n, theta);
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        let a: Vec<usize> = (0..128).map(|_| z1.sample(&mut r1)).collect();
        let b: Vec<usize> = (0..128).map(|_| z2.sample(&mut r2)).collect();
        prop_assert_eq!(a, b);
    }
}
