//! Run statistics in the shape of the paper's figures.

use pimdsm_engine::Cycle;
use pimdsm_faults::RecoveryStats;
use pimdsm_net::NetStats;
use pimdsm_obs::EpochSeries;
use pimdsm_proto::{Census, Level, ProtoStats};
use pimdsm_svc::SvcStats;

/// Per-thread time accounting.
///
/// The paper divides execution time into *Memory* (processor stalled on
/// memory accesses) and *Processor* (useful instructions, synchronization
/// spinning, and non-memory pipeline hazards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadAcct {
    /// Cycles executing instructions (includes issue slots for memory
    /// operations).
    pub compute: Cycle,
    /// Cycles stalled on memory (load misses, full write buffer,
    /// offload waits).
    pub memory: Cycle,
    /// Cycles spinning at barriers and locks (Processor time in the
    /// paper's split).
    pub sync: Cycle,
    /// Cycle at which the thread finished.
    pub finish: Cycle,
}

impl ThreadAcct {
    /// Processor time under the paper's classification.
    pub fn processor(&self) -> Cycle {
        self.compute + self.sync
    }
}

/// Complete statistics of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Architecture name ("NUMA", "COMA", "AGG").
    pub arch: String,
    /// Application name.
    pub app: String,
    /// Extra run label (e.g. "1/4AGG75").
    pub label: String,
    /// End-to-end execution time in cycles.
    pub total_cycles: Cycle,
    /// Per-thread accounting.
    pub threads: Vec<ThreadAcct>,
    /// Protocol statistics (read levels, invalidations, ...).
    pub proto: ProtoStats,
    /// Line-state census at end of run (Figure 8).
    pub census: Census,
    /// Network statistics.
    pub net: NetStats,
    /// Mean utilization of directory controllers / D-node processors.
    pub controller_util: f64,
    /// (total, max-per-link) busy cycles on the interconnect.
    pub link_busy: (Cycle, Cycle),
    /// Cycles spent in dynamic reconfiguration (Figure 10-(a)), if any.
    pub reconfig_cycles: Cycle,
    /// Whether a [`ReconfigPlan`](crate::ReconfigPlan) was armed for this
    /// run. Distinguishes "reconfigured for free / never reached the
    /// barrier" (`true`, `reconfig_cycles == 0`) from "no plan at all".
    pub reconfig_armed: bool,
    /// Fault-injection and recovery accounting, when a
    /// [`FaultPlan`](pimdsm_faults::FaultPlan) was attached
    /// ([`Machine::set_faults`](crate::Machine::set_faults)).
    pub faults: Option<RecoveryStats>,
    /// Per-request service statistics (latency percentiles, throughput
    /// counts), when the workload issued `ReqStart`/`ReqEnd` brackets —
    /// i.e. for the [`pimdsm_svc`] serving workloads.
    pub svc: Option<SvcStats>,
    /// Epoch-sampled metric time-series, when sampling was enabled
    /// ([`Machine::sample_epochs`](crate::Machine::sample_epochs)).
    pub epochs: Option<EpochSeries>,
}

impl RunReport {
    /// Mean per-thread memory-stall cycles (the paper's Memory bar).
    pub fn memory_time(&self) -> f64 {
        mean(self.threads.iter().map(|t| t.memory))
    }

    /// Mean per-thread processor cycles (everything that is not memory
    /// stall, measured against the run length).
    pub fn processor_time(&self) -> f64 {
        self.total_cycles as f64 - self.memory_time()
    }

    /// Fraction of execution spent stalled on memory.
    pub fn memory_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.memory_time() / self.total_cycles as f64
        }
    }

    /// Sum of all read latencies (the quantity of Figure 7), per level.
    pub fn read_latency_by_level(&self) -> [Cycle; 5] {
        self.proto.read_latency_by_level
    }

    /// Figure 7's component decomposition: for each access level, the
    /// summed read latency split into cache / network / handler / DRAM /
    /// queueing cycles (indexed by [`pimdsm_obs::breakdown`]). Each row
    /// sums to the matching [`read_latency_by_level`](Self::read_latency_by_level)
    /// entry — the transaction walk attributes every cycle to exactly one
    /// component.
    pub fn read_breakdown_by_level(&self) -> [[Cycle; 5]; 5] {
        self.proto.read_breakdown_by_level
    }

    /// Total summed read latency.
    pub fn total_read_latency(&self) -> Cycle {
        self.proto.total_read_latency()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{:>5} {:<8} {:>12} cycles  (memory {:>4.1}%, reads {}, 2hop {}, 3hop {})",
            self.arch,
            self.label,
            self.total_cycles,
            self.memory_fraction() * 100.0,
            self.proto.total_reads(),
            self.proto.reads_by_level[Level::Hop2.index()],
            self.proto.reads_by_level[Level::Hop3.index()],
        )
    }
}

impl ThreadAcct {
    /// Reconstructs the accounting from its JSON form.
    pub fn from_json(v: &pimdsm_obs::JsonValue) -> Result<ThreadAcct, String> {
        let field = |key: &str| -> Result<Cycle, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing thread field {key}"))
        };
        Ok(ThreadAcct {
            compute: field("compute")?,
            memory: field("memory")?,
            sync: field("sync")?,
            finish: field("finish")?,
        })
    }
}

impl RunReport {
    /// Reconstructs a report from the JSON written by
    /// [`ToJson::to_json`](pimdsm_obs::ToJson::to_json).
    ///
    /// This is the inverse `pimdsm-lab`'s content-addressed result cache
    /// relies on: a cached run must re-render to exactly the bytes a fresh
    /// run would produce. Derived fields (`memory_time`, `memory_fraction`,
    /// …) are recomputed rather than read back; an `epochs` time-series is
    /// *not* restored (instrumented runs bypass the cache).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_json(v: &pimdsm_obs::JsonValue) -> Result<RunReport, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing {key}"))
        };
        let threads = v
            .get("threads")
            .and_then(|x| x.as_arr())
            .ok_or("missing threads")?
            .iter()
            .map(ThreadAcct::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let link = v.get("link_busy").ok_or("missing link_busy")?;
        let link_field = |key: &str| -> Result<Cycle, String> {
            link.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing link_busy.{key}"))
        };
        Ok(RunReport {
            arch: str_field("arch")?,
            app: str_field("app")?,
            label: str_field("label")?,
            total_cycles: v
                .get("total_cycles")
                .and_then(|x| x.as_u64())
                .ok_or("missing total_cycles")?,
            threads,
            proto: ProtoStats::from_json(v.get("proto").ok_or("missing proto")?)?,
            census: Census::from_json(v.get("census").ok_or("missing census")?)?,
            net: NetStats::from_json(v.get("net").ok_or("missing net")?)?,
            controller_util: v
                .get("controller_util")
                .and_then(|x| x.as_f64())
                .ok_or("missing controller_util")?,
            link_busy: (link_field("total")?, link_field("max_per_link")?),
            reconfig_cycles: v
                .get("reconfig_cycles")
                .and_then(|x| x.as_u64())
                .ok_or("missing reconfig_cycles")?,
            reconfig_armed: matches!(
                v.get("reconfig_armed"),
                Some(pimdsm_obs::JsonValue::Bool(true))
            ),
            faults: match v.get("faults") {
                Some(f) => Some(RecoveryStats::from_json(f)?),
                None => None,
            },
            svc: match v.get("svc") {
                Some(s) => Some(SvcStats::from_json(s)?),
                None => None,
            },
            epochs: None,
        })
    }
}

impl pimdsm_obs::ToJson for ThreadAcct {
    fn to_json(&self) -> pimdsm_obs::JsonValue {
        use pimdsm_obs::JsonValue;
        JsonValue::obj([
            ("compute", JsonValue::u64(self.compute)),
            ("memory", JsonValue::u64(self.memory)),
            ("sync", JsonValue::u64(self.sync)),
            ("finish", JsonValue::u64(self.finish)),
        ])
    }
}

impl pimdsm_obs::ToJson for RunReport {
    fn to_json(&self) -> pimdsm_obs::JsonValue {
        use pimdsm_obs::JsonValue;
        let mut fields = vec![
            ("arch", JsonValue::str(self.arch.as_str())),
            ("app", JsonValue::str(self.app.as_str())),
            ("label", JsonValue::str(self.label.as_str())),
            ("total_cycles", JsonValue::u64(self.total_cycles)),
            (
                "threads",
                JsonValue::arr(self.threads.iter().map(|t| t.to_json())),
            ),
            ("proto", self.proto.to_json()),
            ("census", self.census.to_json()),
            ("net", self.net.to_json()),
            ("controller_util", JsonValue::num(self.controller_util)),
            (
                "link_busy",
                JsonValue::obj([
                    ("total", JsonValue::u64(self.link_busy.0)),
                    ("max_per_link", JsonValue::u64(self.link_busy.1)),
                ]),
            ),
            ("reconfig_cycles", JsonValue::u64(self.reconfig_cycles)),
            ("reconfig_armed", JsonValue::Bool(self.reconfig_armed)),
            ("memory_time", JsonValue::num(self.memory_time())),
            ("processor_time", JsonValue::num(self.processor_time())),
            ("memory_fraction", JsonValue::num(self.memory_fraction())),
        ];
        if let Some(f) = &self.faults {
            fields.push(("faults", f.to_json()));
        }
        if let Some(s) = &self.svc {
            fields.push(("svc", s.to_json()));
        }
        if let Some(e) = &self.epochs {
            fields.push(("epochs", e.to_json()));
        }
        JsonValue::obj(fields)
    }
}

fn mean(iter: impl Iterator<Item = Cycle>) -> f64 {
    let mut sum = 0u64;
    let mut n = 0u64;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(threads: Vec<ThreadAcct>, total: Cycle) -> RunReport {
        RunReport {
            arch: "AGG".into(),
            app: "FFT".into(),
            label: "1/1AGG75".into(),
            total_cycles: total,
            threads,
            proto: ProtoStats::default(),
            census: Census::default(),
            net: NetStats::default(),
            controller_util: 0.0,
            link_busy: (0, 0),
            reconfig_cycles: 0,
            reconfig_armed: false,
            faults: None,
            svc: None,
            epochs: None,
        }
    }

    #[test]
    fn memory_time_is_mean_over_threads() {
        let r = report(
            vec![
                ThreadAcct {
                    memory: 100,
                    ..Default::default()
                },
                ThreadAcct {
                    memory: 300,
                    ..Default::default()
                },
            ],
            1000,
        );
        assert_eq!(r.memory_time(), 200.0);
        assert_eq!(r.processor_time(), 800.0);
        assert!((r.memory_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = report(vec![], 0);
        assert_eq!(r.memory_time(), 0.0);
        assert_eq!(r.memory_fraction(), 0.0);
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn report_json_round_trips_through_from_json() {
        use pimdsm_obs::ToJson;
        let mut r = report(
            vec![
                ThreadAcct {
                    compute: 10,
                    memory: 20,
                    sync: 5,
                    finish: 35,
                },
                ThreadAcct {
                    compute: 11,
                    memory: 21,
                    sync: 6,
                    finish: 38,
                },
            ],
            1234,
        );
        r.proto.record_read(Level::Hop2, 298);
        r.proto.write_backs = 7;
        r.census.d_slots = 99;
        r.net.messages = 42;
        r.controller_util = 0.125;
        r.link_busy = (1000, 250);
        r.reconfig_cycles = 17;
        r.reconfig_armed = true;
        let mut rs = RecoveryStats {
            kills: 1,
            pages_rehomed: 4,
            lines_lost: 2,
            ..Default::default()
        };
        rs.recovery.record(1_500);
        r.faults = Some(rs);
        let mut svc = SvcStats::default();
        svc.record(0, 210);
        svc.record(1, 950);
        svc.record(2, 77);
        svc.queued_cycles = 13;
        r.svc = Some(svc);

        let rendered = r.to_json().render_pretty();
        let parsed = pimdsm_obs::json::parse(&rendered).expect("parse back");
        let restored = RunReport::from_json(&parsed).expect("restore");
        assert_eq!(
            restored.to_json().render_pretty(),
            rendered,
            "cache round-trip must be byte-identical"
        );
        assert_eq!(restored.total_cycles, 1234);
        assert_eq!(restored.threads, r.threads);
        assert_eq!(restored.proto, r.proto);
        assert_eq!(restored.census, r.census);
        assert_eq!(restored.net, r.net);
        assert!(restored.reconfig_armed);
        assert_eq!(restored.faults, r.faults);
        assert_eq!(restored.svc, r.svc);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let v = pimdsm_obs::json::parse("{\"arch\": \"AGG\"}").unwrap();
        let err = RunReport::from_json(&v).unwrap_err();
        assert!(err.contains("missing"), "unhelpful error: {err}");
    }

    #[test]
    fn thread_acct_processor_split() {
        let t = ThreadAcct {
            compute: 70,
            sync: 30,
            memory: 50,
            finish: 150,
        };
        assert_eq!(t.processor(), 100);
    }
}
