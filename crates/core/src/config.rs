//! Machine sizing rules (Section 3 of the paper).
//!
//! All compared machines hold the *same total DRAM* and run the same
//! number of application threads. The swept parameter is **memory
//! pressure** — application footprint divided by total DRAM (25%, 50% or
//! 75%). For AGG, half the memory lives in P-nodes and half in D-nodes
//! whatever the D:P ratio (1/1AGG: 32+32 equal nodes; 1/4AGG: 8 D-nodes
//! with 4× the memory each), which matches the paper's "keep total memory
//! constant while varying the ratio".

use pimdsm_mem::CacheCfg;
use pimdsm_proto::{AggCfg, ComaCfg, NumaCfg};
use pimdsm_workloads::Workload;

/// Which architecture to build, with its architecture-specific knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArchSpec {
    /// CC-NUMA baseline: one node per thread, double-width links.
    Numa,
    /// Flat COMA baseline: one node per thread, double-width links.
    Coma,
    /// AGG with one P-node per thread and `n_d` D-nodes.
    Agg {
        /// Number of D-nodes.
        n_d: usize,
    },
    /// AGG with explicit per-node memory sizing (Figure 9 keeps total
    /// D-memory fixed while node counts vary).
    AggExplicit {
        /// Number of D-nodes.
        n_d: usize,
        /// Lines of tagged local memory per P-node.
        p_am_lines: u64,
        /// Data-array lines per D-node.
        d_data_lines: u64,
    },
}

impl ArchSpec {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ArchSpec::Numa => "NUMA",
            ArchSpec::Coma => "COMA",
            ArchSpec::Agg { .. } | ArchSpec::AggExplicit { .. } => "AGG",
        }
    }
}

/// Fully resolved sizing for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineCfg {
    /// Application threads (= compute nodes).
    pub threads: usize,
    /// Memory pressure (footprint / total DRAM).
    pub pressure: f64,
    /// Total machine DRAM, in lines.
    pub total_mem_lines: u64,
    /// L1 size in bytes after clamping.
    pub l1_bytes: u64,
    /// L2 size in bytes after clamping.
    pub l2_bytes: u64,
}

const LINE_BYTES: u64 = 64;
const LINE_SHIFT: u32 = 6;

/// Rounds `lines` up to a valid 4-way set-associative capacity.
fn round_cache_lines(lines: u64, ways: u64) -> u64 {
    lines.div_ceil(ways).max(1) * ways
}

/// Computes the resolved sizing for a workload at a pressure.
///
/// Cache sizes start from the application's Table 3 values but are
/// clamped so the hierarchy stays inclusive when problem sizes are scaled
/// down: L2 is at most half the per-P-node local memory (the paper's own
/// FFT configuration has local memory only ~1.3× L2), and L1 at most half
/// of L2.
pub fn resolve(workload: &dyn Workload, pressure: f64) -> MachineCfg {
    assert!(
        pressure > 0.0 && pressure <= 1.0,
        "memory pressure must be in (0, 1]"
    );
    let threads = workload.threads();
    let footprint_lines = workload.footprint_bytes().div_ceil(LINE_BYTES);
    let total = ((footprint_lines as f64 / pressure).ceil() as u64).max(threads as u64 * 64);

    // Clamp caches against the smallest local memory they will coexist
    // with: the AGG 1/1 P-node memory at 75% pressure.
    let worst_total = ((footprint_lines as f64 / 0.75).ceil() as u64).max(threads as u64 * 64);
    let worst_p_am_bytes = worst_total / 2 / threads as u64 * LINE_BYTES;
    let l2_bytes = (workload.l2_kb() * 1024)
        .min(worst_p_am_bytes / 2)
        .max(2048);
    let l1_bytes = (workload.l1_kb() * 1024).min(l2_bytes / 2).max(1024);
    // Round to valid geometries (L1 direct-mapped, L2 4-way).
    let l1_bytes = round_cache_lines(l1_bytes / LINE_BYTES, 1) * LINE_BYTES;
    let l2_bytes = round_cache_lines(l2_bytes / LINE_BYTES, 4) * LINE_BYTES;

    MachineCfg {
        threads,
        pressure,
        total_mem_lines: total,
        l1_bytes,
        l2_bytes,
    }
}

impl MachineCfg {
    fn l1(&self) -> CacheCfg {
        CacheCfg::new(self.l1_bytes, 1, LINE_SHIFT)
    }

    fn l2(&self) -> CacheCfg {
        CacheCfg::new(self.l2_bytes, 4, LINE_SHIFT)
    }

    /// Builds the NUMA system configuration.
    pub fn numa(&self) -> NumaCfg {
        let node_lines = round_cache_lines(self.total_mem_lines / self.threads as u64, 1);
        let mut cfg = NumaCfg::paper(self.threads, 1, 1, node_lines);
        cfg.l1 = self.l1();
        cfg.l2 = self.l2();
        cfg
    }

    /// Builds the COMA system configuration.
    pub fn coma(&self) -> ComaCfg {
        let node_lines = round_cache_lines(self.total_mem_lines / self.threads as u64, 4);
        let mut cfg = ComaCfg::paper(self.threads, 1, 1, node_lines);
        cfg.l1 = self.l1();
        cfg.l2 = self.l2();
        cfg.am = CacheCfg::new(node_lines * LINE_BYTES, 4, LINE_SHIFT).with_hashed_index();
        cfg.onchip_lines = node_lines / 2;
        cfg
    }

    /// Builds the AGG system configuration: half the memory in P-nodes,
    /// half in D-nodes.
    pub fn agg(&self, n_d: usize) -> AggCfg {
        let p_am = round_cache_lines(self.total_mem_lines / 2 / self.threads as u64, 4);
        let d_data = (self.total_mem_lines / 2 / n_d as u64).max(8 * 64);
        self.agg_explicit(n_d, p_am, d_data)
    }

    /// Builds an AGG configuration with explicit per-node memory sizes.
    pub fn agg_explicit(&self, n_d: usize, p_am_lines: u64, d_data_lines: u64) -> AggCfg {
        let p_am = round_cache_lines(p_am_lines, 4);
        let mut cfg = AggCfg::paper(self.threads, n_d, 1, 1, p_am.max(8), d_data_lines.max(16));
        cfg.p_am = cfg.p_am.with_hashed_index();
        cfg.l1 = self.l1();
        cfg.l2 = self.l2();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimdsm_workloads::{build, AppId, Scale};

    #[test]
    fn pressure_scales_total_memory() {
        let w = build(AppId::Fft, 4, Scale::ci());
        let hi = resolve(&*w, 0.75);
        let lo = resolve(&*w, 0.25);
        assert!(lo.total_mem_lines > hi.total_mem_lines * 2);
        // Caches identical across pressures.
        assert_eq!(hi.l1_bytes, lo.l1_bytes);
        assert_eq!(hi.l2_bytes, lo.l2_bytes);
    }

    #[test]
    fn caches_fit_under_local_memory() {
        for app in pimdsm_workloads::ALL_APPS {
            let w = build(app, 4, Scale::ci());
            let cfg = resolve(&*w, 0.75);
            let agg = cfg.agg(4);
            assert!(
                agg.l2.size_bytes() <= agg.p_am.size_bytes(),
                "{app:?}: L2 {} > AM {}",
                agg.l2.size_bytes(),
                agg.p_am.size_bytes()
            );
            assert!(agg.l1.size_bytes() <= agg.l2.size_bytes());
        }
    }

    #[test]
    fn total_memory_matches_across_archs() {
        let w = build(AppId::Radix, 8, Scale::ci());
        let cfg = resolve(&*w, 0.5);
        let numa_total = cfg.numa().node_mem_lines * 8;
        let coma_total = cfg.coma().am.capacity_lines() * 8;
        let agg = cfg.agg(8);
        let agg_total = agg.p_am.capacity_lines() * 8 + agg.dnode.data_lines * 8;
        let spread = |a: u64, b: u64| (a as f64 / b as f64 - 1.0).abs();
        assert!(spread(numa_total, coma_total) < 0.05);
        assert!(spread(numa_total, agg_total) < 0.05);
    }

    #[test]
    fn agg_ratio_keeps_total_d_memory() {
        // bench scale: large enough that the 8-page D-node floor is moot.
        let w = build(AppId::Swim, 8, Scale::bench());
        let cfg = resolve(&*w, 0.75);
        let one_one = cfg.agg(8);
        let one_four = cfg.agg(2);
        let a = one_one.dnode.data_lines * 8;
        let b = one_four.dnode.data_lines * 2;
        assert!(
            a.abs_diff(b) <= 8,
            "total D memory constant across ratios up to rounding: {a} vs {b}"
        );
    }

    #[test]
    #[should_panic(expected = "pressure")]
    fn rejects_bad_pressure() {
        let w = build(AppId::Fft, 2, Scale::ci());
        resolve(&*w, 0.0);
    }
}
