//! The machine driver: executes workload threads against a memory system.
//!
//! Threads are scheduled through a global time-ordered event queue. Each
//! scheduler step executes one operation of one thread and books its
//! timing against the (contended) memory system, so cross-thread
//! interference — link queueing, D-node occupancy, DRAM ports — emerges
//! from resource timelines rather than from message-level simulation.
//!
//! The processor model follows Table 1: batched independent loads overlap
//! through a 16-entry load-buffer window; stores retire through a
//! 32-entry write buffer and only stall the processor when it fills;
//! latencies up to the L2 hit time are hidden by the out-of-order core
//! (charged as Processor time), anything longer is Memory stall time.

use std::collections::{BTreeMap, VecDeque};

use pimdsm_engine::{Cycle, EventQueue};
use pimdsm_faults::{FaultKind, FaultPlan, FaultSchedule, RecoveryStats};
use pimdsm_obs::{trace::track, EpochSampler, Tracer};
use pimdsm_proto::{Access, AggSystem, ComaSystem, Level, MemSystem, NodeId, NumaSystem};
use pimdsm_svc::SvcStats;
use pimdsm_workloads::{Op, ThreadGen, Workload};

use crate::config::{resolve, ArchSpec};
use crate::report::{RunReport, ThreadAcct};

/// Write-buffer capacity (Table 1: 32-entry fully associative).
const WRITE_BUFFER_ENTRIES: usize = 32;
/// Load-buffer window (Table 1: 16 outstanding loads).
const LOAD_WINDOW: usize = 16;
/// Latency fully hidden by the out-of-order core (the L2 hit time).
const HIDDEN_LATENCY: Cycle = 6;
/// Cost of leaving a barrier once released.
const BARRIER_EXIT: Cycle = 40;

/// A dynamic reconfiguration order (Figure 10-(a)): at the workload's
/// reconfiguration barrier, change the machine to `target_p` P-nodes and
/// `target_d` D-nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigPlan {
    /// P-node count after reconfiguration.
    pub target_p: usize,
    /// D-node count after reconfiguration.
    pub target_d: usize,
    /// Base cost: setup, synchronization, decision making.
    pub base_cycles: Cycle,
    /// Page-mapping update cost per 10 pages moved.
    pub per_10_pages: Cycle,
    /// TLB update cost per P-node processor.
    pub tlb_per_p: Cycle,
}

impl ReconfigPlan {
    /// The paper's overhead model: 100,000 base cycles, 1,000 per 10
    /// pages, 1,000 per P-node TLB update.
    pub fn paper(target_p: usize, target_d: usize) -> Self {
        ReconfigPlan {
            target_p,
            target_d,
            base_cycles: 100_000,
            per_10_pages: 1_000,
            tlb_per_p: 1_000,
        }
    }
}

/// Why a [`ReconfigPlan`] cannot be attached to this machine/workload
/// pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigError {
    /// The workload declares no reconfiguration barrier.
    NoReconfigPoint,
    /// Only AGG machines can trade P-nodes for D-nodes.
    NotAgg,
}

impl std::fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReconfigError::NoReconfigPoint => {
                write!(f, "workload has no reconfiguration point")
            }
            ReconfigError::NotAgg => write!(f, "only AGG machines reconfigure"),
        }
    }
}

impl std::error::Error for ReconfigError {}

/// Live state of an attached [`FaultPlan`]: the pending schedule, the
/// run's durability policy, the accounting sink, and the transient
/// effects (stalled threads, an open link-degradation window).
struct FaultRuntime {
    schedule: FaultSchedule,
    durability: pimdsm_faults::Durability,
    stats: RecoveryStats,
    /// Threads frozen until their node's recovery completes.
    thread_stall: BTreeMap<usize, Cycle>,
    /// End of the current link-degradation window (0 = none).
    degrade_until: Cycle,
    /// Extra cycles per remote access inside the window.
    degrade_extra: Cycle,
}

enum SystemBox {
    Numa(NumaSystem),
    Coma(ComaSystem),
    Agg(AggSystem),
}

impl SystemBox {
    fn sys(&mut self) -> &mut dyn MemSystem {
        match self {
            SystemBox::Numa(s) => s,
            SystemBox::Coma(s) => s,
            SystemBox::Agg(s) => s,
        }
    }

    fn sys_ref(&self) -> &dyn MemSystem {
        match self {
            SystemBox::Numa(s) => s,
            SystemBox::Coma(s) => s,
            SystemBox::Agg(s) => s,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Parked,
    Delayed,
    Done,
}

struct ThreadState {
    gen: Box<dyn ThreadGen>,
    node: NodeId,
    acct: ThreadAcct,
    wb: VecDeque<Cycle>,
    status: Status,
    /// Open service request: (start cycle, class). See [`Op::ReqStart`].
    req: Option<(Cycle, u8)>,
}

#[derive(Default)]
struct BarrierState {
    waiting: Vec<(usize, Cycle)>,
}

#[derive(Default)]
struct LockState {
    holder: Option<usize>,
    waiters: VecDeque<(usize, Cycle)>,
}

/// A configured machine ready to run one workload.
pub struct Machine {
    system: SystemBox,
    workload: Box<dyn Workload>,
    threads: Vec<ThreadState>,
    queue: EventQueue<usize>,
    barriers: BTreeMap<u32, BarrierState>,
    locks: BTreeMap<u32, LockState>,
    lock_base: u64,
    reconfig: Option<ReconfigPlan>,
    reconfig_cycles: Cycle,
    faults: Option<FaultRuntime>,
    svc: SvcStats,
    svc_used: bool,
    label: String,
    tracer: Tracer,
    epoch: Option<Cycle>,
}

impl Machine {
    /// Builds a machine of the given architecture, sized for `workload`
    /// at `pressure` (Section 3's sizing rules).
    ///
    /// # Panics
    ///
    /// Panics if the architecture cannot host the workload's thread count.
    pub fn build(spec: ArchSpec, workload: Box<dyn Workload>, pressure: f64) -> Machine {
        let mut cfg = resolve(&*workload, pressure);
        // Threads that only start after a dynamic reconfiguration don't
        // get a P-node yet; those nodes begin life as D-nodes.
        let initial_p = (0..workload.threads())
            .filter(|&t| !workload.delayed_start(t))
            .count();
        cfg.threads = initial_p;
        let system = match spec {
            ArchSpec::Numa => SystemBox::Numa(NumaSystem::new(cfg.numa())),
            ArchSpec::Coma => SystemBox::Coma(ComaSystem::new(cfg.coma())),
            ArchSpec::Agg { n_d } => SystemBox::Agg(AggSystem::new(cfg.agg(n_d))),
            ArchSpec::AggExplicit {
                n_d,
                p_am_lines,
                d_data_lines,
            } => SystemBox::Agg(AggSystem::new(cfg.agg_explicit(
                n_d,
                p_am_lines,
                d_data_lines,
            ))),
        };
        let mut machine = Self::assemble(system, workload, spec.name().to_string());
        machine.apply_preloads();
        machine
    }

    /// Builds an AGG machine whose configuration is adjusted by `tweak`
    /// after the standard sizing — the hook the ablation benches use to
    /// vary handler costs, SharedList policy, associativity, or the
    /// on-chip fraction.
    pub fn build_custom_agg(
        workload: Box<dyn Workload>,
        pressure: f64,
        n_d: usize,
        tweak: impl FnOnce(&mut pimdsm_proto::AggCfg),
    ) -> Machine {
        let mut cfg = resolve(&*workload, pressure);
        cfg.threads = (0..workload.threads())
            .filter(|&t| !workload.delayed_start(t))
            .count();
        let mut agg_cfg = cfg.agg(n_d);
        tweak(&mut agg_cfg);
        let system = SystemBox::Agg(AggSystem::new(agg_cfg));
        let mut machine = Self::assemble(system, workload, "AGG".to_string());
        machine.apply_preloads();
        machine
    }

    /// Installs initialization-time data (page homes + resident clean
    /// copies) without simulated time; see
    /// [`Workload::preload_regions`].
    fn apply_preloads(&mut self) {
        let regions = self.workload.preload_regions();
        if regions.is_empty() {
            return;
        }
        let line = 64u64;
        for r in regions {
            let owner_node = self
                .threads
                .get(r.owner_tid)
                .map(|t| t.node)
                .filter(|&n| n != usize::MAX)
                .unwrap_or_else(|| self.threads[0].node);
            let kind = match r.kind {
                pimdsm_workloads::PreloadKind::ColdPrivate => {
                    pimdsm_proto::PreloadKind::ColdPrivate
                }
                pimdsm_workloads::PreloadKind::SharedInit => pimdsm_proto::PreloadKind::SharedInit,
            };
            let sys = self.system.sys();
            let mut addr = r.base;
            while addr < r.base + r.bytes {
                sys.preload(addr, owner_node, kind);
                addr += line;
            }
        }
    }

    fn assemble(system: SystemBox, workload: Box<dyn Workload>, label: String) -> Machine {
        let compute = system.sys_ref().compute_nodes();
        let n = workload.threads();
        let mut threads = Vec::with_capacity(n);
        let mut next_node = 0;
        for tid in 0..n {
            let delayed = workload.delayed_start(tid);
            let node = if delayed {
                usize::MAX
            } else {
                assert!(
                    next_node < compute.len(),
                    "workload needs {n} compute nodes, machine has {}",
                    compute.len()
                );
                let nd = compute[next_node];
                next_node += 1;
                nd
            };
            threads.push(ThreadState {
                gen: workload.spawn(tid),
                node,
                acct: ThreadAcct::default(),
                wb: VecDeque::with_capacity(WRITE_BUFFER_ENTRIES),
                status: if delayed {
                    Status::Delayed
                } else {
                    Status::Ready
                },
                req: None,
            });
        }
        // Locks live past the end of the data footprint, page-aligned.
        let lock_base = (workload.footprint_bytes() + (1 << 16)) & !0xFFF;
        Machine {
            system,
            workload,
            threads,
            queue: EventQueue::new(),
            barriers: BTreeMap::new(),
            locks: BTreeMap::new(),
            lock_base,
            reconfig: None,
            reconfig_cycles: 0,
            faults: None,
            svc: SvcStats::default(),
            svc_used: false,
            label,
            tracer: Tracer::disabled(),
            epoch: None,
        }
    }

    /// Attaches a display label to the run (e.g. `"1/4AGG75"`).
    pub fn with_label(mut self, label: impl Into<String>) -> Machine {
        self.label = label.into();
        self
    }

    /// Attaches a [`Tracer`]; an enabled tracer records structured events
    /// (protocol handler occupancy, attraction-memory hits/misses/swaps,
    /// link transfers, reconfiguration) for Chrome-trace export. The
    /// default disabled tracer makes every emission site a single branch.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.system.sys().attach_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Enables epoch metrics sampling: every `epoch` cycles the run loop
    /// snapshots the memory system's cumulative counters and the finished
    /// [`RunReport`] carries the per-epoch time-series in
    /// [`RunReport::epochs`].
    pub fn sample_epochs(&mut self, epoch: Cycle) {
        self.epoch = Some(epoch.max(1));
    }

    /// Schedules a dynamic reconfiguration at the workload's
    /// reconfiguration barrier.
    ///
    /// A plan targeting the machine's current shape is accepted as a
    /// checked no-op: the barrier fires, nothing converts, and the run
    /// charges zero reconfiguration cycles.
    ///
    /// # Errors
    ///
    /// Fails if the workload has no reconfiguration point or the machine
    /// is not AGG; the machine is left unchanged.
    pub fn set_reconfig(&mut self, plan: ReconfigPlan) -> Result<(), ReconfigError> {
        if self.workload.reconfig_barrier().is_none() {
            return Err(ReconfigError::NoReconfigPoint);
        }
        if !matches!(self.system, SystemBox::Agg(_)) {
            return Err(ReconfigError::NotAgg);
        }
        self.reconfig = Some(plan);
        Ok(())
    }

    /// Attaches a declarative fault schedule (see [`pimdsm_faults`]): the
    /// run loop replays its cycle- and barrier-triggered events against
    /// the simulated clock, and the finished [`RunReport`] carries the
    /// recovery accounting in [`RunReport::faults`]. The plan's retry
    /// policy, when set, replaces the fabric's default.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        if let Some(r) = plan.retry {
            self.system.sys().fabric_mut().retry = r;
        }
        self.faults = Some(FaultRuntime {
            schedule: FaultSchedule::new(&plan),
            durability: plan.durability,
            stats: RecoveryStats::default(),
            thread_stall: BTreeMap::new(),
            degrade_until: 0,
            degrade_extra: 0,
        });
    }

    /// Runs the workload to completion and returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (threads parked with nothing runnable), which
    /// indicates a workload barrier/lock bug.
    pub fn run(&mut self) -> RunReport {
        for tid in 0..self.threads.len() {
            if self.threads[tid].status == Status::Ready {
                self.queue.push(0, tid);
            }
        }
        let mut sampler = self.epoch.map(EpochSampler::new);
        while let Some((now, tid)) = self.queue.pop() {
            if let Some(s) = &mut sampler {
                if s.due(now) {
                    let probe = self.system.sys_ref().epoch_probe();
                    s.sample(now, &probe);
                }
            }
            if self
                .faults
                .as_ref()
                .and_then(|f| f.schedule.next_cycle())
                .is_some_and(|c| c <= now)
            {
                let due = self
                    .faults
                    .as_mut()
                    .map(|f| f.schedule.due_at_cycle(now))
                    .unwrap_or_default();
                for kind in due {
                    self.apply_fault(kind, now);
                }
            }
            self.step(tid, now);
        }
        // Feed the host-side profiler: events drained and peak queue
        // depth are deterministic observations, never simulation inputs.
        pimdsm_prof::counters::add(
            pimdsm_prof::counters::ENGINE_EVENTS,
            self.queue.total_pops(),
        );
        pimdsm_prof::counters::observe_max(
            pimdsm_prof::counters::ENGINE_QUEUE_PEAK,
            self.queue.peak_len() as u64,
        );
        let parked: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status != Status::Done)
            .map(|(i, _)| i)
            .collect();
        assert!(
            parked.is_empty(),
            "deadlock: threads {parked:?} never finished (barrier/lock mismatch)"
        );

        let total = self
            .threads
            .iter()
            .map(|t| t.acct.finish)
            .max()
            .unwrap_or(0);
        let epochs = sampler.map(|s| s.finish(total, &self.system.sys_ref().epoch_probe()));
        // Fold the fabric's retry accounting into the recovery stats: the
        // protocol substrate counts the probes, the driver owns the sink.
        let faults = self.faults.as_ref().map(|f| {
            let fab = self.system.sys_ref().fabric();
            let mut rs = f.stats.clone();
            rs.retries += fab.retries;
            rs.retry_wait_cycles += fab.retry_wait_cycles;
            rs
        });
        RunReport {
            arch: self.system.sys_ref().name().to_string(),
            app: self.workload.name().to_string(),
            label: self.label.clone(),
            total_cycles: total,
            threads: self.threads.iter().map(|t| t.acct).collect(),
            proto: self.system.sys_ref().stats().clone(),
            census: self.system.sys_ref().census(),
            net: self.system.sys_ref().net_stats(),
            controller_util: self.system.sys_ref().controller_utilization(total),
            link_busy: self.system.sys_ref().net_link_busy(),
            reconfig_cycles: self.reconfig_cycles,
            reconfig_armed: self.reconfig.is_some(),
            faults,
            svc: self.svc_used.then(|| self.svc.clone()),
            epochs,
        }
    }

    /// Applies one fault at `now`: the protocol-level effect, the trace
    /// event, and the driver-level consequences (thread re-binding,
    /// stalls, degradation windows).
    fn apply_fault(&mut self, kind: FaultKind, now: Cycle) {
        match kind {
            FaultKind::Kill { node } => self.apply_kill_fault(node, now),
            FaultKind::Rejoin { node } => {
                self.tracer.instant(
                    track::MACHINE,
                    0,
                    "rejoin",
                    "machine.fault",
                    now,
                    &[("node", node as u64)],
                );
                self.system.sys().apply_rejoin(node, now);
                self.faults.as_mut().expect("fault runtime").stats.rejoins += 1;
            }
            FaultKind::DegradeLink { extra, for_cycles } => {
                self.tracer.instant(
                    track::MACHINE,
                    0,
                    "degrade",
                    "machine.fault",
                    now,
                    &[("extra", extra), ("for_cycles", for_cycles)],
                );
                let f = self.faults.as_mut().expect("fault runtime");
                f.degrade_until = now + for_cycles;
                f.degrade_extra = extra;
            }
            FaultKind::HandlerStall { node, extra } => {
                self.tracer.instant(
                    track::MACHINE,
                    0,
                    "stall",
                    "machine.fault",
                    now,
                    &[("node", node as u64), ("extra", extra)],
                );
                self.system.sys().stall_controller(node, now, extra);
                let f = self.faults.as_mut().expect("fault runtime");
                f.stats.stall_cycles += extra;
            }
        }
    }

    /// Kills `node`: the memory system recovers (re-homing, re-election,
    /// scrubbing), threads bound to nodes that left the compute set are
    /// re-bound to survivors, and every affected thread stalls until the
    /// recovery completes.
    fn apply_kill_fault(&mut self, node: NodeId, now: Cycle) {
        self.tracer.instant(
            track::MACHINE,
            0,
            "kill",
            "machine.fault",
            now,
            &[("node", node as u64)],
        );
        let durability = self.faults.as_ref().expect("fault runtime").durability;
        // Take the stats out so the system and the sink can be borrowed
        // together; put the updated sink back below.
        let mut rs = std::mem::take(&mut self.faults.as_mut().expect("fault runtime").stats);
        let recovered_at = self.system.sys().apply_kill(node, now, durability, &mut rs);
        rs.kills += 1;
        rs.lost_work_cycles += durability.lost_work(now);
        self.tracer.span(
            track::MACHINE,
            0,
            "recovery",
            "machine.recovery",
            now,
            (recovered_at - now).max(1),
            &[("node", node as u64)],
        );

        // Re-bind threads whose node left the compute set, preferring
        // compute nodes no thread currently uses (smallest first).
        let compute = self.system.sys_ref().compute_nodes();
        let mut free: Vec<NodeId> = compute
            .iter()
            .copied()
            .filter(|n| !self.threads.iter().any(|t| t.node == *n))
            .collect();
        let mut stalled: Vec<usize> = Vec::new();
        for tid in 0..self.threads.len() {
            let t = &self.threads[tid];
            if t.status == Status::Done || t.node == usize::MAX {
                continue;
            }
            if !compute.contains(&t.node) {
                let new_node = if free.is_empty() {
                    compute[tid % compute.len()]
                } else {
                    free.remove(0)
                };
                self.threads[tid].node = new_node;
                stalled.push(tid);
            }
        }
        let f = self.faults.as_mut().expect("fault runtime");
        f.stats = rs;
        // The re-bound threads lost their context: they resume (cold)
        // once the recovery completes.
        for tid in stalled {
            let slot = f.thread_stall.entry(tid).or_insert(recovered_at);
            *slot = (*slot).max(recovered_at);
        }
    }

    /// Applies the open link-degradation window to a finished access:
    /// remote completions inside the window pay the extra latency.
    fn degraded(&mut self, acc: &Access) -> Cycle {
        let Some(f) = &mut self.faults else {
            return acc.done_at;
        };
        if acc.done_at < f.degrade_until && matches!(acc.level, Level::Hop2 | Level::Hop3) {
            f.stats.degraded_cycles += f.degrade_extra;
            acc.done_at + f.degrade_extra
        } else {
            acc.done_at
        }
    }

    /// Runs the full-sweep coherence oracle over the memory system's
    /// current state (see `pimdsm_proto::check`).
    ///
    /// # Panics
    ///
    /// Panics if any coherence invariant is violated.
    pub fn check_coherence(&self) {
        self.system.sys_ref().check_coherence();
    }

    /// Access to the underlying AGG system (for tests and benches).
    ///
    /// # Panics
    ///
    /// Panics if the machine is not AGG.
    pub fn agg(&self) -> &AggSystem {
        match &self.system {
            SystemBox::Agg(s) => s,
            _ => panic!("machine is not AGG"),
        }
    }

    fn lock_addr(&self, id: u32) -> u64 {
        self.lock_base + id as u64 * 4096
    }

    fn step(&mut self, tid: usize, now: Cycle) {
        // A thread whose node is mid-recovery is frozen until the memory
        // system finished reconstructing; it resumes where it left off.
        if let Some(f) = &mut self.faults {
            if let Some(&until) = f.thread_stall.get(&tid) {
                if now < until {
                    self.queue.push(until, tid);
                    return;
                }
                f.thread_stall.remove(&tid);
            }
        }
        let Some(op) = self.threads[tid].gen.next_op() else {
            self.threads[tid].acct.finish = now;
            self.threads[tid].status = Status::Done;
            return;
        };
        match op {
            Op::Compute(n) => {
                self.threads[tid].acct.compute += n;
                self.queue.push(now + n, tid);
            }
            Op::Load(a) => {
                let node = self.threads[tid].node;
                let acc = self.system.sys().read(node, a, now);
                let done = self.degraded(&acc);
                self.charge_load(tid, now, done);
                self.queue.push(done, tid);
            }
            Op::LoadBatch {
                base,
                stride,
                count,
            } => {
                let done = self.exec_load_window(tid, now, |i| base + stride as u64 * i, count);
                self.queue.push(done, tid);
            }
            Op::Gather(b) => {
                let done =
                    self.exec_load_window(tid, now, |i| b.addrs()[i as usize], b.len() as u32);
                self.queue.push(done, tid);
            }
            Op::Store(a) => {
                let t = self.exec_store(tid, now, a);
                self.queue.push(t + 1, tid);
            }
            Op::StoreBatch {
                base,
                stride,
                count,
            } => {
                let mut t = now;
                for i in 0..count as u64 {
                    t = self.exec_store(tid, t, base + stride as u64 * i) + 1;
                }
                self.queue.push(t, tid);
            }
            Op::Scatter(b) => {
                let mut t = now;
                for &a in b.addrs() {
                    t = self.exec_store(tid, t, a) + 1;
                }
                self.queue.push(t, tid);
            }
            Op::Barrier(id) => self.arrive_barrier(tid, id, now),
            Op::Lock(id) => self.acquire_lock(tid, id, now),
            Op::Unlock(id) => self.release_lock(tid, id, now),
            Op::OffloadScan {
                chunk_addr,
                bytes,
                scan_cycles,
                reply_bytes,
            } => {
                let node = self.threads[tid].node;
                match &mut self.system {
                    SystemBox::Agg(agg) => {
                        let d = agg.home_for_addr(chunk_addr, node);
                        let done = agg.offload(node, d, 16, scan_cycles, bytes, reply_bytes, now);
                        self.threads[tid].acct.memory += done - now;
                        self.queue.push(done, tid);
                    }
                    _ => {
                        // No D-node processors: the thread scans locally.
                        let done = self.exec_load_window(
                            tid,
                            now,
                            |i| chunk_addr + i * 64,
                            (bytes / 64).max(1) as u32,
                        );
                        self.threads[tid].acct.compute += scan_cycles;
                        self.queue.push(done + scan_cycles, tid);
                    }
                }
            }
            Op::ReqStart { arrival, class } => {
                self.svc_used = true;
                let t = &mut self.threads[tid];
                assert!(
                    t.req.is_none(),
                    "thread {tid} opened a request inside a request"
                );
                if arrival > now {
                    // Open loop, early: the client idles until the
                    // scheduled arrival.
                    t.req = Some((arrival, class));
                    self.queue.push(arrival, tid);
                } else {
                    // Closed loop (arrival == 0), or an open-loop request
                    // that arrived while the client was still busy — the
                    // lag is queueing delay and counts toward latency.
                    let start = if arrival == 0 { now } else { arrival };
                    self.svc.queued_cycles += now - start;
                    t.req = Some((start, class));
                    self.queue.push(now, tid);
                }
            }
            Op::ReqEnd { class } => {
                let (start, opened) = self.threads[tid]
                    .req
                    .take()
                    .unwrap_or_else(|| panic!("thread {tid} ended a request it never opened"));
                debug_assert_eq!(opened, class, "request class changed mid-flight");
                let lat = now - start;
                self.svc.record(class, lat);
                self.tracer.span(
                    track::MACHINE,
                    tid as u32,
                    "request",
                    "svc.request",
                    start,
                    lat.max(1),
                    &[("class", u64::from(class))],
                );
                self.queue.push(now, tid);
            }
        }
    }

    /// Splits a load's latency into pipelined (Processor) and stalled
    /// (Memory) time.
    fn charge_load(&mut self, tid: usize, issued: Cycle, done: Cycle) {
        let lat = done - issued;
        let hidden = lat.min(HIDDEN_LATENCY);
        let acct = &mut self.threads[tid].acct;
        acct.compute += hidden;
        acct.memory += lat - hidden;
    }

    /// Issues `count` independent loads through the 16-entry load-buffer
    /// window; returns the cycle the last one completes.
    fn exec_load_window(
        &mut self,
        tid: usize,
        now: Cycle,
        addr_of: impl Fn(u64) -> u64,
        count: u32,
    ) -> Cycle {
        let node = self.threads[tid].node;
        // Fixed ring of completion times: `head` is the oldest in-flight
        // load once the window has filled. Loads issue and retire in FIFO
        // order, so this reproduces the old deque exactly without an
        // allocation per batch.
        let mut window = [0 as Cycle; LOAD_WINDOW];
        let mut filled = 0usize;
        let mut head = 0usize;
        let mut last_done = now;
        for i in 0..count as u64 {
            let issue = if filled == LOAD_WINDOW {
                window[head].max(now + i)
            } else {
                now + i
            };
            let acc = self.system.sys().read(node, addr_of(i), issue);
            let done = self.degraded(&acc);
            if filled == LOAD_WINDOW {
                window[head] = done;
                head = (head + 1) % LOAD_WINDOW;
            } else {
                window[filled] = done;
                filled += 1;
            }
            last_done = last_done.max(done);
        }
        // Issue slots are Processor time; the remainder of the span is
        // overlap-adjusted Memory stall.
        let span = last_done - now;
        let issue_cycles = count as Cycle + HIDDEN_LATENCY.min(span);
        let acct = &mut self.threads[tid].acct;
        acct.compute += issue_cycles.min(span);
        acct.memory += span.saturating_sub(issue_cycles);
        last_done
    }

    /// Retires one store through the write buffer; returns the cycle the
    /// store was accepted (the processor continues from there).
    fn exec_store(&mut self, tid: usize, now: Cycle, addr: u64) -> Cycle {
        let mut t = now;
        {
            let wb = &mut self.threads[tid].wb;
            while let Some(&front) = wb.front() {
                if front <= t {
                    wb.pop_front();
                } else {
                    break;
                }
            }
            if wb.len() >= WRITE_BUFFER_ENTRIES {
                let free = wb.pop_front().expect("buffer full");
                self.threads[tid].acct.memory += free - t;
                t = free;
            }
        }
        let node = self.threads[tid].node;
        let acc = self.system.sys().write(node, addr, t);
        let done = self.degraded(&acc);
        self.threads[tid].wb.push_back(done);
        self.threads[tid].acct.compute += 1;
        t
    }

    fn arrive_barrier(&mut self, tid: usize, id: u32, now: Cycle) {
        let width = self.workload.barrier_width(id);
        assert!(width > 0, "barrier {id} has zero width");
        let state = self.barriers.entry(id).or_default();
        state.waiting.push((tid, now));
        if state.waiting.len() < width {
            self.threads[tid].status = Status::Parked;
            return;
        }
        let waiting = std::mem::take(&mut state.waiting);
        self.barriers.remove(&id);

        let mut release_at = now;
        if self.workload.reconfig_barrier() == Some(id) {
            if let Some(plan) = self.reconfig {
                release_at = self.do_reconfig(plan, now);
                self.reconfig_cycles += release_at - now;
            }
        }
        // Barrier-triggered faults fire as the barrier releases; their
        // consequences (stalls, recovery waits) apply to the released
        // threads through the normal step-time checks.
        let due = self
            .faults
            .as_mut()
            .map(|f| f.schedule.due_at_barrier(id))
            .unwrap_or_default();
        for kind in due {
            self.apply_fault(kind, release_at);
        }
        self.tracer.instant(
            track::MACHINE,
            0,
            "barrier",
            "machine.barrier",
            release_at,
            &[("id", id as u64), ("width", width as u64)],
        );
        for (t, arrived) in waiting {
            self.threads[t].acct.sync += release_at - arrived;
            self.threads[t].status = Status::Ready;
            self.queue.push(release_at + BARRIER_EXIT, t);
        }
        // Wake threads that only start after the reconfiguration point.
        let delayed: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Delayed)
            .map(|(i, _)| i)
            .collect();
        if self.workload.reconfig_barrier() == Some(id) {
            for t in delayed {
                assert_ne!(
                    self.threads[t].node,
                    usize::MAX,
                    "delayed thread {t} was never assigned a node"
                );
                self.threads[t].status = Status::Ready;
                self.queue.push(release_at + BARRIER_EXIT, t);
            }
        }
    }

    /// Performs the machine transformation of Section 2.3 and returns the
    /// cycle at which execution resumes.
    fn do_reconfig(&mut self, plan: ReconfigPlan, now: Cycle) -> Cycle {
        let SystemBox::Agg(agg) = &mut self.system else {
            panic!("only AGG machines reconfigure");
        };
        let cur_p = agg.p_nodes().len();
        let cur_d = agg.d_nodes().len();
        assert_eq!(
            plan.target_p + plan.target_d,
            cur_p + cur_d,
            "reconfiguration must preserve the node count"
        );
        if plan.target_p == cur_p && plan.target_d == cur_d {
            // Checked no-op: the machine already has the target shape, so
            // no node converts and no overhead is charged.
            return now;
        }
        let mut t = now + plan.base_cycles;
        let mut pages_moved = 0u64;

        if plan.target_p > cur_p {
            // Convert D-nodes (from the tail of the D list) into P-nodes.
            // The conversions proceed in parallel: each node streams its
            // own memory out over its own links.
            let converts: Vec<NodeId> = agg
                .d_nodes()
                .iter()
                .rev()
                .take(plan.target_p - cur_p)
                .copied()
                .collect();
            let start = t;
            let mut new_nodes = Vec::new();
            for d in converts {
                let (done, pages, _lines) = agg.convert_d_to_p(d, start);
                t = t.max(done);
                pages_moved += pages;
                new_nodes.push(d);
            }
            // Hand the new P-nodes to the delayed threads.
            let mut it = new_nodes.into_iter();
            for thread in &mut self.threads {
                if thread.status == Status::Delayed && thread.node == usize::MAX {
                    thread.node = it
                        .next()
                        .unwrap_or_else(|| panic!("not enough new P-nodes for delayed threads"));
                }
            }
        } else if plan.target_d > cur_d {
            // Convert the P-nodes of the highest-numbered (now finished)
            // threads into D-nodes.
            let victims: Vec<NodeId> = self
                .threads
                .iter()
                .skip(plan.target_p)
                .map(|th| th.node)
                .filter(|&n| n != usize::MAX)
                .take(plan.target_d - cur_d)
                .collect();
            let start = t;
            for p in victims {
                let (done, _flushed) = agg.convert_p_to_d(p, start);
                t = t.max(done);
            }
        }

        t += pages_moved.div_ceil(10) * plan.per_10_pages;
        t += plan.tlb_per_p * plan.target_p as Cycle;
        self.tracer.span(
            track::MACHINE,
            0,
            "reconfig",
            "machine.reconfig",
            now,
            (t - now).max(1),
            &[
                ("target_p", plan.target_p as u64),
                ("target_d", plan.target_d as u64),
                ("pages_moved", pages_moved),
            ],
        );
        t
    }

    fn acquire_lock(&mut self, tid: usize, id: u32, now: Cycle) {
        let addr = self.lock_addr(id);
        let state = self.locks.entry(id).or_default();
        if state.holder.is_none() {
            state.holder = Some(tid);
            let node = self.threads[tid].node;
            let acc = self.system.sys().write(node, addr, now);
            self.threads[tid].acct.sync += acc.done_at - now;
            self.queue.push(acc.done_at, tid);
        } else {
            state.waiters.push_back((tid, now));
            self.threads[tid].status = Status::Parked;
        }
    }

    fn release_lock(&mut self, tid: usize, id: u32, now: Cycle) {
        let addr = self.lock_addr(id);
        let node = self.threads[tid].node;
        let rel = self.system.sys().write(node, addr, now);
        self.threads[tid].acct.sync += rel.done_at - now;
        self.queue.push(rel.done_at, tid);

        let state = self
            .locks
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unlock of never-locked lock {id}"));
        assert_eq!(state.holder, Some(tid), "unlock by non-holder");
        state.holder = None;
        if let Some((w, arrived)) = state.waiters.pop_front() {
            state.holder = Some(w);
            let wnode = self.threads[w].node;
            let acc = self.system.sys().write(wnode, addr, rel.done_at);
            self.threads[w].acct.sync += acc.done_at - arrived;
            self.threads[w].status = Status::Ready;
            self.queue.push(acc.done_at, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimdsm_workloads::kernels::{HotSpot, PrivateStream, SharedRead};
    use pimdsm_workloads::{build, build_dbase, AppId, Scale};

    fn run(spec: ArchSpec, w: Box<dyn Workload>, pressure: f64) -> RunReport {
        Machine::build(spec, w, pressure).run()
    }

    #[test]
    fn private_stream_runs_on_all_archs() {
        for spec in [ArchSpec::Numa, ArchSpec::Coma, ArchSpec::Agg { n_d: 2 }] {
            let w = Box::new(PrivateStream::new(4, 256 * 1024, 2));
            let r = run(spec, w, 0.5);
            assert!(r.total_cycles > 0, "{spec:?}");
            assert_eq!(r.threads.len(), 4);
            assert!(r.proto.total_reads() > 100);
        }
    }

    #[test]
    fn second_pass_hits_local_memory_on_agg() {
        // At 25% pressure each P-node's attraction memory comfortably
        // holds its thread's whole 512 KiB working set.
        let w = Box::new(PrivateStream::new(2, 512 * 1024, 3));
        let r = run(ArchSpec::Agg { n_d: 2 }, w, 0.25);
        let local = r.proto.reads_by_level[pimdsm_proto::Level::LocalMem.index()];
        let hop2 = r.proto.reads_by_level[pimdsm_proto::Level::Hop2.index()];
        assert!(
            local > hop2,
            "after the first pass data is attracted locally: {local} vs {hop2}"
        );
    }

    #[test]
    fn hotspot_generates_invalidations() {
        let w = Box::new(HotSpot::new(4, 8, 500));
        let r = run(ArchSpec::Agg { n_d: 2 }, w, 0.25);
        assert!(r.proto.invalidations > 50, "{}", r.proto.invalidations);
    }

    #[test]
    fn shared_read_replicates_without_invalidations() {
        let w = Box::new(SharedRead::new(4, 128 * 1024, 2_000));
        let r = run(ArchSpec::Coma, w, 0.25);
        assert_eq!(r.proto.invalidations, 0);
    }

    #[test]
    fn all_apps_complete_on_agg() {
        for app in pimdsm_workloads::ALL_APPS {
            let w = build(app, 4, Scale::ci());
            let r = run(ArchSpec::Agg { n_d: 4 }, w, 0.75);
            assert!(r.total_cycles > 0, "{app:?}");
            let done = r.threads.iter().all(|t| t.finish > 0);
            assert!(done, "{app:?} left unfinished threads");
        }
    }

    #[test]
    fn all_apps_complete_on_numa_and_coma() {
        for app in pimdsm_workloads::ALL_APPS {
            for spec in [ArchSpec::Numa, ArchSpec::Coma] {
                let w = build(app, 2, Scale::ci());
                let r = run(spec, w, 0.75);
                assert!(r.total_cycles > 0, "{app:?} on {spec:?}");
            }
        }
    }

    #[test]
    fn read_breakdown_decomposes_read_latency() {
        // Figure 7's decomposition must be exact on every architecture:
        // each level's component breakdown sums to that level's total
        // summed read latency.
        for spec in [ArchSpec::Numa, ArchSpec::Coma, ArchSpec::Agg { n_d: 2 }] {
            let w = build(AppId::Radix, 4, Scale::ci());
            let r = run(spec, w, 0.75);
            let latency = r.read_latency_by_level();
            let breakdown = r.read_breakdown_by_level();
            for (lvl, row) in breakdown.iter().enumerate() {
                assert_eq!(
                    row.iter().sum::<Cycle>(),
                    latency[lvl],
                    "{spec:?} level {lvl}: breakdown must sum to the read latency"
                );
            }
            assert!(
                latency.iter().sum::<Cycle>() > 0,
                "{spec:?}: run recorded no read latency"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || build(AppId::Radix, 4, Scale::ci());
        let a = run(ArchSpec::Agg { n_d: 2 }, mk(), 0.75);
        let b = run(ArchSpec::Agg { n_d: 2 }, mk(), 0.75);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.proto.reads_by_level, b.proto.reads_by_level);
    }

    #[test]
    fn dynamic_reconfiguration_grows_p_nodes() {
        let w = build_dbase(2, 4, Scale::ci(), false);
        let mut m = Machine::build(ArchSpec::Agg { n_d: 6 }, w, 0.5);
        // 2 threads running on 2 of the... build gives compute nodes for
        // max(t1,t2)=4 threads; 2 start, 2 delayed.
        m.set_reconfig(ReconfigPlan::paper(4, 4)).unwrap();
        let r = m.run();
        assert!(r.reconfig_cycles >= 100_000, "{}", r.reconfig_cycles);
        assert!(r.reconfig_armed);
        assert!(r.threads.iter().all(|t| t.finish > 0));
    }

    #[test]
    fn reconfig_to_current_shape_is_noop() {
        // 4 → 2 threads: a phased workload with no delayed starters, so a
        // shape-preserving plan has genuinely nothing to do.
        let w = build_dbase(4, 2, Scale::ci(), false);
        let mut m = Machine::build(ArchSpec::Agg { n_d: 4 }, w, 0.5);
        let (p, d) = (m.agg().p_nodes().len(), m.agg().d_nodes().len());
        m.set_reconfig(ReconfigPlan::paper(p, d)).unwrap();
        let r = m.run();
        assert_eq!(r.reconfig_cycles, 0, "no-op charges nothing");
        assert!(r.reconfig_armed, "the plan was armed, even if idle");
        assert_eq!(m.agg().p_nodes().len(), p);
        assert_eq!(m.agg().d_nodes().len(), d);
    }

    #[test]
    fn offload_scan_runs_on_agg_and_falls_back_elsewhere() {
        let w = build_dbase(2, 2, Scale::ci(), true);
        let agg = run(ArchSpec::Agg { n_d: 2 }, w, 0.5);
        assert!(agg.total_cycles > 0);
        let w = build_dbase(2, 2, Scale::ci(), true);
        let numa = run(ArchSpec::Numa, w, 0.5);
        assert!(numa.total_cycles > 0);
    }

    #[test]
    fn reconfig_requires_phased_workload() {
        let w = build(AppId::Fft, 2, Scale::ci());
        let mut m = Machine::build(ArchSpec::Agg { n_d: 2 }, w, 0.5);
        let err = m.set_reconfig(ReconfigPlan::paper(2, 2)).unwrap_err();
        assert_eq!(err, ReconfigError::NoReconfigPoint);
        assert_eq!(err.to_string(), "workload has no reconfiguration point");
    }

    #[test]
    fn reconfig_requires_agg_machine() {
        let w = build_dbase(2, 4, Scale::ci(), false);
        let mut m = Machine::build(ArchSpec::Numa, w, 0.5);
        let err = m.set_reconfig(ReconfigPlan::paper(4, 2)).unwrap_err();
        assert_eq!(err, ReconfigError::NotAgg);
        assert_eq!(err.to_string(), "only AGG machines reconfigure");
    }

    #[test]
    fn fault_kill_mid_run_completes_on_all_archs() {
        use pimdsm_faults::{Durability, FaultPlan};
        for spec in [ArchSpec::Numa, ArchSpec::Coma, ArchSpec::Agg { n_d: 2 }] {
            let w = build(AppId::Radix, 4, Scale::ci());
            let mut m = Machine::build(spec, w, 0.75);
            let victim = match spec {
                ArchSpec::Agg { .. } => m.agg().p_nodes()[0],
                _ => 0,
            };
            let plan = FaultPlan::new()
                .kill_at(victim, 5_000)
                .with_durability(Durability::None);
            m.set_faults(plan);
            let r = m.run();
            assert!(r.total_cycles > 0, "{spec:?}");
            assert!(r.threads.iter().all(|t| t.finish > 0), "{spec:?}");
            let rs = r.faults.as_ref().expect("fault accounting present");
            assert_eq!(rs.kills, 1, "{spec:?}");
            // The kill fires at the first event-loop step at or after its
            // trigger cycle; Durability::None discards everything so far.
            assert!(rs.lost_work_cycles >= 5_000, "{spec:?}");
            assert!(rs.recovery.count() > 0, "{spec:?}: no recovery samples");
            m.check_coherence();
        }
    }

    #[test]
    fn fault_injection_is_deterministic() {
        use pimdsm_faults::{Durability, FaultPlan};
        let go = || {
            let w = build(AppId::Radix, 4, Scale::ci());
            let mut m = Machine::build(ArchSpec::Agg { n_d: 2 }, w, 0.75);
            let victim = m.agg().p_nodes()[0];
            let plan = FaultPlan::new()
                .kill_at(victim, 5_000)
                .rejoin_at(victim, 400_000)
                .with_durability(Durability::Checkpoint { interval: 10_000 });
            m.set_faults(plan);
            m.run()
        };
        let a = go();
        let b = go();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.proto.reads_by_level, b.proto.reads_by_level);
    }

    #[test]
    fn degrade_and_stall_faults_are_accounted() {
        use pimdsm_faults::FaultPlan;
        let w = build(AppId::Radix, 4, Scale::ci());
        let mut m = Machine::build(ArchSpec::Numa, w, 0.75);
        m.set_faults(
            FaultPlan::new()
                .degrade_at(1_000, 50, 50_000)
                .stall_at(0, 2_000, 10_000),
        );
        let r = m.run();
        let rs = r.faults.as_ref().expect("fault accounting present");
        assert!(rs.degraded_cycles > 0, "remote ops inside the window pay");
        assert_eq!(rs.stall_cycles, 10_000);
        assert_eq!(rs.kills, 0);
    }

    #[test]
    fn write_buffer_absorbs_store_bursts() {
        // Stores complete into the write buffer: issue time advances by
        // ~1 cycle per store while the buffer has room.
        let w = Box::new(PrivateStream::new(1, 64 * 1024, 1));
        let r = run(ArchSpec::Numa, w, 0.5);
        // Sanity only: the run completes and charges compute time.
        assert!(r.threads[0].compute > 0);
    }

    #[test]
    fn barrier_sync_time_is_charged() {
        // Radix has barriers; some thread must spin.
        let w = build(AppId::Radix, 4, Scale::ci());
        let r = run(ArchSpec::Agg { n_d: 2 }, w, 0.5);
        let total_sync: u64 = r.threads.iter().map(|t| t.sync).sum();
        assert!(total_sync > 0);
    }
}
