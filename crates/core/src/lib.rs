//! # pimdsm — a PIM-based DSM machine simulator
//!
//! Reproduction of *"Toward a Cost-Effective DSM Organization That
//! Exploits Processor-Memory Integration"* (Torrellas, Yang, Nguyen;
//! HPCA 2000).
//!
//! The paper proposes **AGG**: a cache-coherent DSM machine built from a
//! single type of off-the-shelf Processor-In-Memory chip. Compute nodes
//! (P-nodes) tag their local DRAM and manage it as a huge cache; identical
//! chips act as directory nodes (D-nodes) running the coherence protocol
//! in software over a fully-associative, software-managed backing store.
//! This crate drives the complete simulation stack and reproduces the
//! paper's evaluation against flat-COMA and CC-NUMA baselines.
//!
//! ## Quick start
//!
//! ```
//! use pimdsm::{ArchSpec, Machine};
//! use pimdsm_workloads::{build, AppId, Scale};
//!
//! let workload = build(AppId::Fft, 4, Scale::ci());
//! let mut machine = Machine::build(ArchSpec::Agg { n_d: 4 }, workload, 0.75);
//! let report = machine.run();
//! assert!(report.total_cycles > 0);
//! println!("{}", report.summary());
//! ```
//!
//! ## Crate map
//!
//! - [`config`] — machine sizing (memory pressure, cache clamping, node
//!   counts) for the three architectures.
//! - [`machine`] — the execution driver: threads, write buffers, MLP
//!   windowing, barriers, locks, dynamic reconfiguration, and
//!   computation-in-memory dispatch.
//! - [`report`] — per-run statistics in the shape of the paper's figures.
//! - [`calibration`] — Table 1 latency probes.

pub mod calibration;
pub mod config;
pub mod machine;
pub mod report;

pub use config::{ArchSpec, MachineCfg};
pub use machine::{Machine, ReconfigError, ReconfigPlan};
pub use report::{RunReport, ThreadAcct};
