//! Table 1 calibration probes.
//!
//! The paper characterizes its machines by uncontended round-trip
//! latencies (Table 1): L1 3 cycles, L2 6, local on-chip memory 37,
//! local off-chip memory 57, remote 2-hop 298, remote 3-hop 383. These
//! probes measure the same quantities on our simulator so the `table1`
//! bench can print paper-vs-measured, and the integration tests can pin
//! the calibration.

use pimdsm_proto::{AggCfg, AggSystem, Level, MemSystem};

/// Measured uncontended round trips, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    /// L1 hit.
    pub l1: u64,
    /// L2 hit.
    pub l2: u64,
    /// Local memory, on-chip portion.
    pub mem_on: u64,
    /// Local memory, off-chip portion.
    pub mem_off: u64,
    /// Remote clean read via the home (2 node hops), mesh-average
    /// distance.
    pub hop2: u64,
    /// Remote dirty read via home and owner (3 node hops).
    pub hop3: u64,
}

/// The paper's Table 1 values for comparison.
pub const PAPER: Calibration = Calibration {
    l1: 3,
    l2: 6,
    mem_on: 37,
    mem_off: 57,
    hop2: 298,
    hop3: 383,
};

/// Builds a quiet 32P+32D AGG machine and measures each round trip with
/// single probing accesses.
pub fn measure() -> Calibration {
    measure_with(AggCfg::paper(32, 32, 8, 32, 8192, 8192))
}

/// Measures the round trips on a specific AGG configuration.
pub fn measure_with(cfg: AggCfg) -> Calibration {
    let mut sys = AggSystem::new(cfg);
    let p = sys.p_nodes()[0];
    let mut t = 0u64;
    let mut next = |sys: &mut AggSystem, f: &mut dyn FnMut(&mut AggSystem, u64) -> u64| {
        t += 1_000_000; // quiesce all resources between probes
        f(sys, t)
    };

    // L1: read the same line twice.
    let l1 = next(&mut sys, &mut |s, t0| {
        s.read(p, 0x10_0000, t0);
        let a = s.read(p, 0x10_0000, t0 + 500_000);
        assert_eq!(a.level, Level::L1);
        a.done_at - (t0 + 500_000)
    });

    // L2: fill, then evict from L1 by conflict, then read again. Easier:
    // read a line, read a conflicting line (same L1 set, different L2
    // set-way), then re-read the first.
    let l2 = next(&mut sys, &mut |s, t0| {
        let l1_bytes = s.cfg().l1.size_bytes();
        s.read(p, 0x20_0000, t0);
        s.read(p, 0x20_0000 + l1_bytes, t0 + 100_000);
        let a = s.read(p, 0x20_0000, t0 + 200_000);
        assert_eq!(a.level, Level::L2);
        a.done_at - (t0 + 200_000)
    });

    // Local memory: touch a line, purge the caches, touch again.
    let mem_on = next(&mut sys, &mut |s, t0| {
        s.read(p, 0x30_0000, t0);
        s.purge_caches(p, 0x30_0000);
        let a = s.read(p, 0x30_0000, t0 + 100_000);
        assert_eq!(a.level, Level::LocalMem);
        a.done_at - (t0 + 100_000)
    });

    // Off-chip local memory: fill the on-chip portion with other lines
    // first, then re-read the demoted line.
    let mem_off = next(&mut sys, &mut |s, t0| {
        s.read(p, 0x40_0000, t0);
        s.purge_caches(p, 0x40_0000);
        let onchip = s.cfg().p_onchip_lines;
        let mut tt = t0 + 1000;
        for i in 0..onchip + 4 {
            s.read(p, 0x50_0000 + i * 64, tt);
            tt += 200;
        }
        s.purge_caches(p, 0x40_0000);
        let a = s.read(p, 0x40_0000, tt + 100_000);
        assert_eq!(a.level, Level::LocalMem);
        a.done_at - (tt + 100_000)
    });

    // 2-hop: first read of a virgin line homed at the average-distance
    // D-node (averaged over many lines/homes).
    let hop2 = next(&mut sys, &mut |s, t0| {
        let mut sum = 0;
        let n = 32u64;
        for i in 0..n {
            let addr = 0x100_0000 + i * 4096;
            let a = s.read(p, addr, t0 + i * 10_000);
            assert_eq!(a.level, Level::Hop2);
            sum += a.done_at - (t0 + i * 10_000);
        }
        sum / n
    });

    // 3-hop: another P-node dirties a line; our probe reads it through
    // the home and owner.
    let hop3 = next(&mut sys, &mut |s, t0| {
        let writer = s.p_nodes()[s.p_nodes().len() / 2];
        let mut sum = 0;
        let n = 32u64;
        for i in 0..n {
            let addr = 0x200_0000 + i * 4096;
            s.write(writer, addr, t0 + i * 20_000);
            let a = s.read(p, addr, t0 + i * 20_000 + 10_000);
            assert_eq!(a.level, Level::Hop3);
            sum += a.done_at - (t0 + i * 20_000 + 10_000);
        }
        sum / n
    });

    Calibration {
        l1,
        l2,
        mem_on,
        mem_off,
        hop2,
        hop3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_tracks_table1_shape() {
        let c = measure();
        assert_eq!(c.l1, PAPER.l1);
        assert_eq!(c.l2, PAPER.l2);
        // Memory and remote latencies within a loose band of Table 1.
        let within = |got: u64, want: u64, tol: f64| {
            let lo = (want as f64 * (1.0 - tol)) as u64;
            let hi = (want as f64 * (1.0 + tol)) as u64;
            assert!(
                (lo..=hi).contains(&got),
                "measured {got}, paper {want} (±{:.0}%)",
                tol * 100.0
            );
        };
        within(c.mem_on, PAPER.mem_on, 0.25);
        within(c.mem_off, PAPER.mem_off, 0.25);
        within(c.hop2, PAPER.hop2, 0.30);
        within(c.hop3, PAPER.hop3, 0.30);
        assert!(c.hop3 > c.hop2);
        assert!(c.mem_off > c.mem_on);
    }
}
