//! Known-bad: heap-ordered hot path and an order-less arena (D003).
//! Scanned by the fixture tests *as if* this file were `crates/mem/src/`.

use std::collections::BinaryHeap;

pub struct PendingEvents {
    // Equal-time events pop in heap-shape order, and every push allocates
    // a node's worth of growth on the hottest simulator path.
    heap: BinaryHeap<(u64, u64)>,
}

impl PendingEvents {
    pub fn new() -> Self {
        PendingEvents {
            heap: BinaryHeap::new(),
        }
    }

    pub fn push(&mut self, time: u64, payload: u64) {
        self.heap.push((time, payload));
    }
}

pub struct TagArena {
    // An arena with no iter_deterministic(): sweeps fall back to ad-hoc
    // orders that leak insertion history into simulated time.
    slab: Vec<Option<u64>>,
}

impl TagArena {
    pub fn new(slots: usize) -> Self {
        TagArena {
            slab: vec![None; slots],
        }
    }

    pub fn occupied(&self) -> usize {
        self.slab.iter().filter(|s| s.is_some()).count()
    }
}
