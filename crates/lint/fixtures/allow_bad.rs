//! Known-bad: escape hatches without a justification (L000), which do
//! not suppress the underlying finding either.

use std::collections::HashMap; // pimdsm-lint: allow(D001)

pub fn table() -> HashMap<u64, u64> {
    // pimdsm-lint: allow(D001, "")
    HashMap::new()
}
