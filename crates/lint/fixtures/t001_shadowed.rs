//! Known-bad regression: a rebind (`let tx = Txn::start(..)` twice)
//! drops the first walk with no `return` statement involved. The old
//! T001 keyed every check off the *first* `let` and missed this
//! entirely; the fix tracks each construction's own binding.

use crate::fabric::Fabric;
use crate::txn::{Txn, TxnKind};

/// The first walk is dropped at the second `let`: only the rebound
/// transaction ever finishes.
pub fn shadowed_rebind(fab: &mut Fabric, node: usize, line: u64, now: u64) -> u64 {
    let tx = Txn::start(node, line, now);
    let tx = Txn::start(node, line + 1, now);
    tx.finish(fab, Level::LocalMem, TxnKind::Read, false).done_at
}
