//! Known-bad: Txn walks that escape their function without finishing
//! (T002). Every leak here is invisible to per-function T001 — the body
//! that constructs each walk does call `.finish(` somewhere, or hands
//! the walk to a helper — and only the call graph exposes the drop.

use crate::fabric::Fabric;
use crate::txn::{Txn, TxnKind};

/// Receives a walk by value and drops it on the floor: the span, read
/// statistics and latency breakdown all vanish with it.
pub fn forward_and_forget(fab: &mut Fabric, tx: Txn, now: u64) -> u64 {
    let _ = fab;
    now
}

/// Clean under T001 (the body finishes *a* walk and moves the other
/// onward), but the helper above never finishes what it is handed.
pub fn read_via_helper(fab: &mut Fabric, node: usize, line: u64, now: u64) -> u64 {
    let tx = Txn::start(node, line, now);
    let probe = Txn::start(node, line + 1, now);
    probe.finish(fab, Level::LocalMem, TxnKind::Read, false);
    forward_and_forget(fab, tx, now)
}

/// Parking a walk in a struct defers it past the event that started it:
/// the parallel engine cannot window a half-finished walk.
pub struct ParkedWalk {
    pub txn: Txn,
    pub retries: u32,
}

/// Escape hatch: a deliberately parked walk, with its reason on record.
pub struct ParkedAllowed {
    // pimdsm-lint: allow(T002, "fixture: recovery parks the walk across a rejoin window by design")
    pub txn: Txn,
}
