//! Known-bad: unordered collections on the simulation path (D001).
//! Scanned by the fixture tests *as if* this file were `crates/mem/src/`.

use std::collections::{HashMap, HashSet};

pub struct Directory {
    homes: HashMap<u64, usize>,
    sharers: HashSet<usize>,
}

impl Directory {
    pub fn new() -> Self {
        Directory {
            homes: HashMap::new(),
            sharers: HashSet::new(),
        }
    }

    /// Iterating this map is exactly the fig10a bug: per-process hash
    /// seeds reorder the sweep and the reorder leaks into booked cycles.
    pub fn sweep(&self) -> usize {
        self.homes.iter().map(|(_, &n)| n).sum()
    }
}
