//! Known-bad: transaction walks that never reach `.finish(...)` (T001).

use crate::fabric::Fabric;
use crate::txn::{Txn, TxnKind};

/// Constructs a walk and silently drops it: no span, no stats, and the
/// breakdown-sums-to-total assertion in `finish` never runs.
pub fn read_forgot_finish(fab: &mut Fabric, node: usize, line: u64, now: u64) -> u64 {
    let mut tx = Txn::start(node, line, now);
    tx.probe(3);
    tx.send(fab, node, 1, 16);
    tx.at()
}

/// Calls finish on the main path but leaks the walk on an early return.
pub fn read_early_return(fab: &mut Fabric, node: usize, line: u64, now: u64) -> u64 {
    let mut tx = Txn::start(node, line, now);
    tx.probe(3);
    if line == 0 {
        return now; // the in-flight walk is dropped here
    }
    tx.finish(fab, Level::LocalMem, TxnKind::Read, false).done_at
}
