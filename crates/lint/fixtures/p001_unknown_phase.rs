//! Known-bad fixture for P001: a typo'd phase name next to a valid one.
//! The valid entry proves the rule doesn't fire on registered phases.

pub fn build_and_run() {
    {
        pimdsm_prof::phase!("point.build");
    }
    {
        // Typo: the registry spells this "point.run".
        pimdsm_prof::phase!("point.rnu");
    }
}
