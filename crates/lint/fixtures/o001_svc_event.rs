//! Known-bad: a service-subsystem trace emission outside the obs
//! registry (O001) — the name typo makes every `svc.request` latency
//! query come back empty.

use pimdsm_obs::trace::track;
use pimdsm_obs::Tracer;

pub fn emit(tracer: &Tracer, tid: u32, at: u64) {
    // Typo'd event name on the registered svc.request category.
    tracer.span(track::MACHINE, tid, "reqeust", "svc.request", at, 9, &[]);
}
