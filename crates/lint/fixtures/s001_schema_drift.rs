//! Known-bad: a report field missing from the JSON round-trip (S001).
//!
//! `dropped_on_restore` is serialized but never restored, and
//! `never_written` is restored from a default but never serialized — both
//! sides of the silent-drop-on-cache-re-render class.

#[derive(Default)]
pub struct FixtureStats {
    pub messages: u64,
    pub dropped_on_restore: u64,
    pub never_written: u64,
}

impl FixtureStats {
    pub fn from_json(v: &pimdsm_obs::JsonValue) -> Result<FixtureStats, String> {
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("missing {key}"))
        };
        // `dropped_on_restore` is not restored — a cached re-render
        // would silently zero it. The `..Default::default()` hides the
        // omission from the compiler, which is why S001 exists.
        Ok(FixtureStats {
            messages: field("messages")?,
            never_written: field("never_written").unwrap_or(0),
            ..Default::default()
        })
    }
}

impl pimdsm_obs::ToJson for FixtureStats {
    fn to_json(&self) -> pimdsm_obs::JsonValue {
        use pimdsm_obs::JsonValue;
        JsonValue::obj([
            ("messages", JsonValue::u64(self.messages)),
            ("dropped_on_restore", JsonValue::u64(self.dropped_on_restore)),
        ])
    }
}
