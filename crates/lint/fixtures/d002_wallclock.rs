//! Known-bad: wall-clock time and ambient randomness in sim code (D002).

use std::time::{Instant, SystemTime};

pub fn decide_timeout() -> u64 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    t0.elapsed().as_nanos() as u64
}

pub fn random_victim(n: usize) -> usize {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..n)
}
