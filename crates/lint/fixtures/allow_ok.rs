//! A justified suppression: the escape hatch silences D001 here.

// pimdsm-lint: allow(D001, "interned id set, never iterated; order cannot leak")
use std::collections::HashSet;

pub struct Interner {
    // pimdsm-lint: allow(D001, "membership checks only; see module note")
    seen: HashSet<u64>,
}

impl Interner {
    // pimdsm-lint: allow(W001, "scratch interner, rebuilt per event; no cross-region writes")
    pub fn insert(&mut self, id: u64) -> bool {
        let fresh = !self.seen.contains(&id); // pimdsm-lint: allow(D001, "lookup only")
        if fresh {
            self.seen.insert(id); // pimdsm-lint: allow(D001, "lookup only")
        }
        fresh
    }
}
