//! Known-bad: determinism taint flowing into the simulation path
//! (D004). The wall-clock read hides behind a (mistaken) D002 allow, so
//! only interprocedural taint propagation catches the callers.

/// Direct source: reads the wall clock. The D002 allow below silences
/// the per-site rule — taint propagation is deliberately unimpressed.
fn host_millis() -> u64 {
    // pimdsm-lint: allow(D002, "fixture: mistaken 'host-side telemetry' justification")
    std::time::SystemTime::now().elapsed().unwrap().as_millis() as u64
}

/// Transitively tainted: never touches a clock itself, yet its result
/// varies run to run through the helper.
pub fn jitter_seed(node: usize) -> u64 {
    host_millis() ^ node as u64
}

/// Escape hatch: tainted on purpose, with the reason on record.
// pimdsm-lint: allow(D004, "fixture: debug-only wall-clock stamp, never feeds simulated time")
pub fn debug_stamp() -> u64 {
    host_millis()
}
