//! Known-bad: trace events outside the obs registry (O001).

use pimdsm_obs::trace::track;
use pimdsm_obs::Tracer;

pub fn emit(tracer: &Tracer, node: u32, at: u64) {
    // Typo'd category: every `proto.handler` filter silently misses it.
    tracer.span(track::PROTO, node, "Read", "proto.hanlder", at, 5, &[]);
    // Unregistered event name.
    tracer.instant(track::PROTO, node, "mystery", "am.miss", at, &[]);
}
