//! Known-bad: event-handler-reachable `&mut` state outside the W001
//! mesh-region tables. The parallel-engine audit is only trustworthy if
//! every mutable type the handlers can touch has a declared region.

/// A stateful widget no region bucket claims.
pub struct Gizmo {
    pub twists: u64,
}

impl Gizmo {
    pub fn twist(&mut self) {
        self.twists += 1;
    }
}

/// Same shape, but hand-audited through the escape hatch.
pub struct Whatsit {
    pub spins: u64,
}

impl Whatsit {
    // pimdsm-lint: allow(W001, "fixture: hand-audited scratch state, local to one event")
    pub fn spin(&mut self) {
        self.spins += 1;
    }
}

impl Machine {
    /// An event-handler root (the audit keys on `Machine::step` by
    /// name): both widgets become handler-reachable through it.
    pub fn step(&mut self, g: &mut Gizmo, w: &mut Whatsit) {
        g.twist();
        w.spin();
    }
}
