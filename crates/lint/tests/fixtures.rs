//! The fixture corpus: every rule must fire on its known-bad snippet
//! with the right rule ID and span, the allow escape hatch must work,
//! and the real workspace must self-scan clean.

use std::path::{Path, PathBuf};

use pimdsm_lint::{run_all, Diagnostic, Workspace};

/// Repo root (two levels above this crate's manifest).
fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Scans the real workspace plus one fixture file classified as `krate`
/// `src/` code, returning only the diagnostics from the fixture.
fn scan_fixture(name: &str, krate: &str) -> Vec<Diagnostic> {
    let root = root();
    let mut ws = Workspace::load(&root).expect("scan workspace");
    let path = fixture_path(name);
    let rel = format!("crates/{krate}/src/{name}");
    let raw = std::fs::read_to_string(&path).expect("read fixture");
    ws.add_source_as(path, rel.clone(), raw, krate);
    run_all(&ws).into_iter().filter(|d| d.rel == rel).collect()
}

/// Line (1-indexed) of the first occurrence of `needle` in the fixture.
fn line_of(name: &str, needle: &str) -> usize {
    let text = std::fs::read_to_string(fixture_path(name)).unwrap();
    let off = text.find(needle).expect("needle present in fixture");
    text[..off].matches('\n').count() + 1
}

#[test]
fn workspace_self_scan_is_clean() {
    let ws = Workspace::load(&root()).expect("scan workspace");
    assert!(ws.files.len() > 50, "workspace walk found the sources");
    let diags = run_all(&ws);
    assert!(
        diags.is_empty(),
        "workspace must have zero unsuppressed violations:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn d001_fires_on_unordered_collections() {
    let diags = scan_fixture("d001_collections.rs", "mem");
    assert!(diags.iter().all(|d| d.rule == "D001"), "{diags:?}");
    // Import line, two field declarations, two constructors.
    assert!(diags.len() >= 5, "one finding per use: {diags:?}");
    let import = line_of("d001_collections.rs", "use std::collections");
    assert!(
        diags.iter().any(|d| d.line == import),
        "span points at the import: {diags:?}"
    );
    assert!(diags[0].msg.contains("BTreeMap"), "suggests the fix");
}

#[test]
fn d001_does_not_fire_outside_simulation_crates() {
    let diags = scan_fixture("d001_collections.rs", "lab");
    assert!(
        diags.iter().all(|d| d.rule != "D001"),
        "lab is orchestration, not sim path: {diags:?}"
    );
}

#[test]
fn d002_fires_on_wall_clock_and_randomness() {
    // D004 also fires here (the same sources taint the functions); this
    // test pins the per-site rule.
    let diags: Vec<Diagnostic> = scan_fixture("d002_wallclock.rs", "engine")
        .into_iter()
        .filter(|d| d.rule == "D002")
        .collect();
    for needle in ["Instant::now", "SystemTime", "thread_rng"] {
        assert!(
            diags.iter().any(|d| d.msg.contains(needle)),
            "missing {needle}: {diags:?}"
        );
    }
    let now_line = line_of("d002_wallclock.rs", "Instant::now()");
    assert!(diags.iter().any(|d| d.line == now_line));
}

#[test]
fn d003_fires_on_binaryheap_and_orderless_arenas() {
    // W001 also reaches the fixture's `push` method through method-name
    // over-approximation; this test pins the data-structure rule.
    let diags: Vec<Diagnostic> = scan_fixture("d003_binaryheap.rs", "mem")
        .into_iter()
        .filter(|d| d.rule == "D003")
        .collect();
    // Import, field declaration, two constructor/use sites — plus the
    // arena-without-iter_deterministic finding.
    assert!(diags.len() >= 4, "{diags:?}");
    let import = line_of("d003_binaryheap.rs", "use std::collections");
    assert!(
        diags.iter().any(|d| d.line == import),
        "span points at the import: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.msg.contains("EventQueue")),
        "suggests the engine queue: {diags:?}"
    );
    let slab = line_of("d003_binaryheap.rs", "slab: Vec<Option<u64>>");
    assert!(
        diags
            .iter()
            .any(|d| d.line == slab && d.msg.contains("iter_deterministic")),
        "orderless arena reported at its field: {diags:?}"
    );
}

#[test]
fn d003_does_not_fire_outside_simulation_crates() {
    let diags = scan_fixture("d003_binaryheap.rs", "lab");
    assert!(
        diags.iter().all(|d| d.rule != "D003"),
        "lab is orchestration, not sim path: {diags:?}"
    );
}

#[test]
fn t001_fires_on_unfinished_txn_walks() {
    // T002 independently reports the never-finished construction; this
    // test pins the per-function rule.
    let diags: Vec<Diagnostic> = scan_fixture("t001_txn_leak.rs", "proto")
        .into_iter()
        .filter(|d| d.rule == "T001")
        .collect();
    assert_eq!(diags.len(), 2, "one per leak: {diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("t001_txn_leak.rs", "let mut tx = Txn::start"),
        "never-finished walk reported at its construction"
    );
    assert_eq!(
        diags[1].line,
        line_of("t001_txn_leak.rs", "return now;"),
        "early return reported at the return"
    );
}

#[test]
fn s001_fires_on_schema_drift() {
    let diags = scan_fixture("s001_schema_drift.rs", "core");
    assert!(diags.iter().all(|d| d.rule == "S001"), "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("`dropped_on_restore`") && d.msg.contains("from_json")));
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("`never_written`") && d.msg.contains("to_json")));
}

#[test]
fn o001_fires_on_unregistered_trace_vocabulary() {
    let diags = scan_fixture("o001_unknown_category.rs", "proto");
    assert!(diags.iter().all(|d| d.rule == "O001"), "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.msg.contains("proto.hanlder")));
    assert!(diags.iter().any(|d| d.msg.contains("mystery")));
    let typo_line = line_of("o001_unknown_category.rs", "proto.hanlder");
    assert!(diags.iter().any(|d| d.line == typo_line));
}

#[test]
fn o001_covers_the_svc_crate_vocabulary() {
    let diags = scan_fixture("o001_svc_event.rs", "svc");
    assert!(diags.iter().all(|d| d.rule == "O001"), "{diags:?}");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("reqeust"), "{diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("o001_svc_event.rs", "reqeust"),
        "span points at the bad emission"
    );
}

#[test]
fn p001_fires_on_unregistered_phase_names() {
    let diags = scan_fixture("p001_unknown_phase.rs", "lab");
    assert!(diags.iter().all(|d| d.rule == "P001"), "{diags:?}");
    assert_eq!(diags.len(), 1, "only the typo fires: {diags:?}");
    assert!(diags[0].msg.contains("point.rnu"), "{diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("p001_unknown_phase.rs", "point.rnu\");"),
        "span points at the bad invocation"
    );
}

#[test]
fn t001_shadowed_rebind_is_reported_at_the_dropped_construction() {
    let diags: Vec<Diagnostic> = scan_fixture("t001_shadowed.rs", "proto")
        .into_iter()
        .filter(|d| d.rule == "T001")
        .collect();
    assert_eq!(diags.len(), 1, "exactly the shadowing drop: {diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("t001_shadowed.rs", "let tx = Txn::start(node, line, now)"),
        "span points at the dropped (first) construction, not the rebind"
    );
    assert!(diags[0].msg.contains("shadowed"), "{diags:?}");
}

#[test]
fn t002_fires_across_the_call_graph() {
    let diags: Vec<Diagnostic> = scan_fixture("t002_escape.rs", "proto")
        .into_iter()
        .filter(|d| d.rule == "T002")
        .collect();
    // The dropped by-value parameter, the producing call site whose walk
    // feeds it, and the struct-stored Txn.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("t002_escape.rs", "pub fn forward_and_forget"),
        "unfinished by-value param reported at the helper: {diags:?}"
    );
    assert!(diags[0].msg.contains("`tx`"), "{diags:?}");
    assert_eq!(
        diags[1].line,
        line_of("t002_escape.rs", "let tx = Txn::start(node, line, now)"),
        "producing call site reported at the construction: {diags:?}"
    );
    assert_eq!(
        diags[2].line,
        line_of("t002_escape.rs", "pub txn: Txn,"),
        "stored Txn reported at the field: {diags:?}"
    );
    assert!(diags[2].msg.contains("ParkedWalk"), "{diags:?}");
    // The allow-hatch case (`ParkedAllowed`) is suppressed.
    assert!(
        !diags.iter().any(|d| d.msg.contains("ParkedAllowed")),
        "justified allow suppresses the parked walk: {diags:?}"
    );
}

#[test]
fn d004_propagates_taint_to_transitive_callers() {
    let diags: Vec<Diagnostic> = scan_fixture("d004_taint.rs", "core")
        .into_iter()
        .filter(|d| d.rule == "D004")
        .collect();
    // The direct toucher and its transitive caller; the allow-hatched
    // `debug_stamp` is suppressed.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("d004_taint.rs", "fn host_millis"),
        "{diags:?}"
    );
    assert_eq!(
        diags[1].line,
        line_of("d004_taint.rs", "pub fn jitter_seed"),
        "transitive caller flagged even though it never reads a clock: {diags:?}"
    );
    assert!(
        diags[1].msg.contains("`jitter_seed`") && diags[1].msg.contains("`host_millis`"),
        "message shows the taint chain: {diags:?}"
    );
    assert!(
        diags[1].msg.contains("SystemTime"),
        "message names the root source: {diags:?}"
    );
    assert!(
        !diags
            .iter()
            .any(|d| d.line == line_of("d004_taint.rs", "pub fn debug_stamp")),
        "justified allow suppresses the deliberate taint: {diags:?}"
    );
}

#[test]
fn w001_fires_on_unclassified_handler_reachable_state() {
    let diags: Vec<Diagnostic> = scan_fixture("w001_unclassified.rs", "core")
        .into_iter()
        .filter(|d| d.rule == "W001")
        .collect();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("w001_unclassified.rs", "pub fn twist"),
        "{diags:?}"
    );
    assert!(
        diags[0].msg.contains("`Gizmo`") && diags[0].msg.contains("mesh-region"),
        "{diags:?}"
    );
    // `Whatsit::spin` is equally unclassified but carries a reasoned
    // allow — the hatch works for W001 too.
    assert!(
        !diags.iter().any(|d| d.msg.contains("Whatsit")),
        "{diags:?}"
    );
}

#[test]
fn allow_escape_hatch_suppresses_with_reason() {
    let diags = scan_fixture("allow_ok.rs", "mem");
    assert!(
        diags.is_empty(),
        "justified allows suppress every finding: {diags:?}"
    );
}

#[test]
fn reasonless_allow_is_flagged_and_does_not_suppress() {
    let diags = scan_fixture("allow_bad.rs", "mem");
    assert!(
        diags.iter().any(|d| d.rule == "L000"),
        "malformed directive reported: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == "D001"),
        "the underlying finding still fires: {diags:?}"
    );
}

#[test]
fn cli_exits_zero_on_clean_workspace_and_lists_rules() {
    let bin = env!("CARGO_BIN_EXE_pimdsm-lint");
    let out = std::process::Command::new(bin)
        .args(["--root"])
        .arg(root())
        .output()
        .expect("run pimdsm-lint");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    let list = std::process::Command::new(bin)
        .arg("--list")
        .output()
        .expect("run pimdsm-lint --list");
    let text = String::from_utf8_lossy(&list.stdout);
    for id in [
        "D001", "D002", "D003", "D004", "T001", "T002", "W001", "S001", "O001", "P001",
    ] {
        assert!(text.contains(id), "--list names {id}");
    }
}

#[test]
fn cli_json_format_emits_the_stable_schema() {
    let bin = env!("CARGO_BIN_EXE_pimdsm-lint");
    let out = std::process::Command::new(bin)
        .args(["--format", "json", "--root"])
        .arg(root())
        .output()
        .expect("run pimdsm-lint --format json");
    assert!(out.status.success(), "clean workspace exits 0");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"schema\": \"pimdsm-lint-diagnostics-v1\""));
    assert!(text.contains("\"diagnostics\": []"), "clean scan: {text}");
    // The allow inventory carries every suppression's mandatory reason.
    assert!(text.contains("\"allows\": ["));
    assert!(text.contains("\"reason\": \""));
    for id in ["\"D004\"", "\"T002\"", "\"W001\""] {
        assert!(text.contains(id), "rules array names {id}: {text}");
    }
}

#[test]
fn cli_shared_state_audit_is_nonempty_and_schema_stable() {
    let bin = env!("CARGO_BIN_EXE_pimdsm-lint");
    let out = std::process::Command::new(bin)
        .args(["--audit", "shared-state", "--root"])
        .arg(root())
        .output()
        .expect("run pimdsm-lint --audit shared-state");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"schema\": \"pimdsm-lint-audit-v1\""));
    for root_fn in ["Machine::run", "Machine::step", "Machine::apply_fault"] {
        assert!(text.contains(root_fn), "audit roots include {root_fn}");
    }
    for region in [
        "\"driver\"",
        "\"per_node\"",
        "\"per_page_directory\"",
        "\"interconnect\"",
        "\"observability\"",
        "\"walk_local\"",
    ] {
        assert!(text.contains(region), "region {region} present: {text}");
    }
    assert!(
        text.contains("\"unclassified\": []"),
        "workspace is fully classified"
    );
    // Deterministic: two runs render byte-identical documents, and the
    // committed artifact matches.
    let again = std::process::Command::new(bin)
        .args(["--audit", "shared-state", "--root"])
        .arg(root())
        .output()
        .expect("re-run audit");
    assert_eq!(out.stdout, again.stdout, "audit output is deterministic");
    let committed = std::fs::read_to_string(root().join("results/shared_state_audit.json"))
        .expect("committed audit artifact");
    assert_eq!(
        committed.as_bytes(),
        &out.stdout[..],
        "results/shared_state_audit.json is stale: regenerate with \
         `cargo run -p pimdsm-lint -- --audit shared-state > results/shared_state_audit.json`"
    );
}
