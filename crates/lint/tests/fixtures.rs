//! The fixture corpus: every rule must fire on its known-bad snippet
//! with the right rule ID and span, the allow escape hatch must work,
//! and the real workspace must self-scan clean.

use std::path::{Path, PathBuf};

use pimdsm_lint::{run_all, Diagnostic, Workspace};

/// Repo root (two levels above this crate's manifest).
fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Scans the real workspace plus one fixture file classified as `krate`
/// `src/` code, returning only the diagnostics from the fixture.
fn scan_fixture(name: &str, krate: &str) -> Vec<Diagnostic> {
    let root = root();
    let mut ws = Workspace::load(&root).expect("scan workspace");
    let path = fixture_path(name);
    let rel = format!("crates/{krate}/src/{name}");
    let raw = std::fs::read_to_string(&path).expect("read fixture");
    ws.add_source_as(path, rel.clone(), raw, krate);
    run_all(&ws).into_iter().filter(|d| d.rel == rel).collect()
}

/// Line (1-indexed) of the first occurrence of `needle` in the fixture.
fn line_of(name: &str, needle: &str) -> usize {
    let text = std::fs::read_to_string(fixture_path(name)).unwrap();
    let off = text.find(needle).expect("needle present in fixture");
    text[..off].matches('\n').count() + 1
}

#[test]
fn workspace_self_scan_is_clean() {
    let ws = Workspace::load(&root()).expect("scan workspace");
    assert!(ws.files.len() > 50, "workspace walk found the sources");
    let diags = run_all(&ws);
    assert!(
        diags.is_empty(),
        "workspace must have zero unsuppressed violations:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn d001_fires_on_unordered_collections() {
    let diags = scan_fixture("d001_collections.rs", "mem");
    assert!(diags.iter().all(|d| d.rule == "D001"), "{diags:?}");
    // Import line, two field declarations, two constructors.
    assert!(diags.len() >= 5, "one finding per use: {diags:?}");
    let import = line_of("d001_collections.rs", "use std::collections");
    assert!(
        diags.iter().any(|d| d.line == import),
        "span points at the import: {diags:?}"
    );
    assert!(diags[0].msg.contains("BTreeMap"), "suggests the fix");
}

#[test]
fn d001_does_not_fire_outside_simulation_crates() {
    let diags = scan_fixture("d001_collections.rs", "lab");
    assert!(
        diags.iter().all(|d| d.rule != "D001"),
        "lab is orchestration, not sim path: {diags:?}"
    );
}

#[test]
fn d002_fires_on_wall_clock_and_randomness() {
    let diags = scan_fixture("d002_wallclock.rs", "engine");
    let rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
    assert!(rules.iter().all(|r| *r == "D002"), "{diags:?}");
    for needle in ["Instant::now", "SystemTime", "thread_rng"] {
        assert!(
            diags.iter().any(|d| d.msg.contains(needle)),
            "missing {needle}: {diags:?}"
        );
    }
    let now_line = line_of("d002_wallclock.rs", "Instant::now()");
    assert!(diags.iter().any(|d| d.line == now_line));
}

#[test]
fn d003_fires_on_binaryheap_and_orderless_arenas() {
    let diags = scan_fixture("d003_binaryheap.rs", "mem");
    assert!(diags.iter().all(|d| d.rule == "D003"), "{diags:?}");
    // Import, field declaration, two constructor/use sites — plus the
    // arena-without-iter_deterministic finding.
    assert!(diags.len() >= 4, "{diags:?}");
    let import = line_of("d003_binaryheap.rs", "use std::collections");
    assert!(
        diags.iter().any(|d| d.line == import),
        "span points at the import: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.msg.contains("EventQueue")),
        "suggests the engine queue: {diags:?}"
    );
    let slab = line_of("d003_binaryheap.rs", "slab: Vec<Option<u64>>");
    assert!(
        diags
            .iter()
            .any(|d| d.line == slab && d.msg.contains("iter_deterministic")),
        "orderless arena reported at its field: {diags:?}"
    );
}

#[test]
fn d003_does_not_fire_outside_simulation_crates() {
    let diags = scan_fixture("d003_binaryheap.rs", "lab");
    assert!(
        diags.iter().all(|d| d.rule != "D003"),
        "lab is orchestration, not sim path: {diags:?}"
    );
}

#[test]
fn t001_fires_on_unfinished_txn_walks() {
    let diags = scan_fixture("t001_txn_leak.rs", "proto");
    assert!(diags.iter().all(|d| d.rule == "T001"), "{diags:?}");
    assert_eq!(diags.len(), 2, "one per leak: {diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("t001_txn_leak.rs", "let mut tx = Txn::start"),
        "never-finished walk reported at its construction"
    );
    assert_eq!(
        diags[1].line,
        line_of("t001_txn_leak.rs", "return now;"),
        "early return reported at the return"
    );
}

#[test]
fn s001_fires_on_schema_drift() {
    let diags = scan_fixture("s001_schema_drift.rs", "core");
    assert!(diags.iter().all(|d| d.rule == "S001"), "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("`dropped_on_restore`") && d.msg.contains("from_json")));
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("`never_written`") && d.msg.contains("to_json")));
}

#[test]
fn o001_fires_on_unregistered_trace_vocabulary() {
    let diags = scan_fixture("o001_unknown_category.rs", "proto");
    assert!(diags.iter().all(|d| d.rule == "O001"), "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().any(|d| d.msg.contains("proto.hanlder")));
    assert!(diags.iter().any(|d| d.msg.contains("mystery")));
    let typo_line = line_of("o001_unknown_category.rs", "proto.hanlder");
    assert!(diags.iter().any(|d| d.line == typo_line));
}

#[test]
fn o001_covers_the_svc_crate_vocabulary() {
    let diags = scan_fixture("o001_svc_event.rs", "svc");
    assert!(diags.iter().all(|d| d.rule == "O001"), "{diags:?}");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("reqeust"), "{diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("o001_svc_event.rs", "reqeust"),
        "span points at the bad emission"
    );
}

#[test]
fn p001_fires_on_unregistered_phase_names() {
    let diags = scan_fixture("p001_unknown_phase.rs", "lab");
    assert!(diags.iter().all(|d| d.rule == "P001"), "{diags:?}");
    assert_eq!(diags.len(), 1, "only the typo fires: {diags:?}");
    assert!(diags[0].msg.contains("point.rnu"), "{diags:?}");
    assert_eq!(
        diags[0].line,
        line_of("p001_unknown_phase.rs", "point.rnu\");"),
        "span points at the bad invocation"
    );
}

#[test]
fn allow_escape_hatch_suppresses_with_reason() {
    let diags = scan_fixture("allow_ok.rs", "mem");
    assert!(
        diags.is_empty(),
        "justified allows suppress every finding: {diags:?}"
    );
}

#[test]
fn reasonless_allow_is_flagged_and_does_not_suppress() {
    let diags = scan_fixture("allow_bad.rs", "mem");
    assert!(
        diags.iter().any(|d| d.rule == "L000"),
        "malformed directive reported: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.rule == "D001"),
        "the underlying finding still fires: {diags:?}"
    );
}

#[test]
fn cli_exits_zero_on_clean_workspace_and_lists_rules() {
    let bin = env!("CARGO_BIN_EXE_pimdsm-lint");
    let out = std::process::Command::new(bin)
        .args(["--root"])
        .arg(root())
        .output()
        .expect("run pimdsm-lint");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    let list = std::process::Command::new(bin)
        .arg("--list")
        .output()
        .expect("run pimdsm-lint --list");
    let text = String::from_utf8_lossy(&list.stdout);
    for id in ["D001", "D002", "D003", "T001", "S001", "O001", "P001"] {
        assert!(text.contains(id), "--list names {id}");
    }
}
