//! Performance guard: the call-graph layer must not make the
//! pre-commit loop painful. A full workspace scan — load, symbol
//! table + call graph, every rule, plus the shared-state audit — has to
//! stay well under 5 seconds on the CI container.

use std::path::Path;
use std::time::Instant;

use pimdsm_lint::graph::CallGraph;
use pimdsm_lint::{run_all, semantic, Workspace};

#[test]
fn full_workspace_scan_stays_under_five_seconds() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();

    let t0 = Instant::now();
    let ws = Workspace::load(&root).expect("scan workspace");
    let diags = run_all(&ws);
    let graph = CallGraph::build(&ws);
    let audit = semantic::shared_state_audit(&ws, &graph);
    let elapsed = t0.elapsed();

    assert!(diags.is_empty(), "clean scan while timing: {diags:?}");
    assert!(!audit.is_empty());
    assert!(
        elapsed.as_secs_f64() < 5.0,
        "full scan + graph + rules + audit took {elapsed:?} (budget: 5s)"
    );
}
