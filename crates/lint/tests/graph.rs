//! Call-graph integration tests against the real workspace, plus the
//! `crate_deps`-vs-`Cargo.toml` sync check the map in `graph.rs`
//! promises.
//!
//! Scope note: the resolver does *no* trait dispatch. A method call
//! through a trait object (`dyn MemSystem`) resolves to every
//! dep-visible method of that name — deliberate over-approximation, so
//! reachability-based rules (D004/W001) never miss an implementor.
//! Precise per-receiver dispatch is documented out of scope; the
//! `machine_reaches_every_mem_system_implementor` test pins the
//! over-approximate behavior instead.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

use pimdsm_lint::graph::{crate_deps, CallGraph, SelfKind};
use pimdsm_lint::Workspace;

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn real_graph() -> (Workspace, CallGraph) {
    let ws = Workspace::load(&root()).expect("scan workspace");
    let g = CallGraph::build(&ws);
    (ws, g)
}

/// Parses the `[dependencies]` section of one crate manifest into the
/// set of workspace-crate directory names (`pimdsm` → `core`,
/// `pimdsm-x` → `x`; non-pimdsm deps are ignored).
fn declared_deps(manifest: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if name == "pimdsm" {
            out.insert("core".to_string());
        } else if let Some(rest) = name.strip_prefix("pimdsm-") {
            out.insert(rest.to_string());
        }
    }
    out
}

#[test]
fn crate_deps_matches_the_cargo_manifests() {
    let root = root();
    let mut declared: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir") {
        let dir = entry.expect("dir entry").path();
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let name = dir.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&manifest).expect("read manifest");
        declared.insert(name, declared_deps(&text));
    }

    // Transitive closure of the declared graph, for the no-stale check.
    let closure = |start: &str| -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::from([start.to_string()]);
        while let Some(k) = queue.pop_front() {
            if !seen.insert(k.clone()) {
                continue;
            }
            if let Some(ds) = declared.get(&k) {
                queue.extend(ds.iter().cloned());
            }
        }
        seen
    };

    for (krate, deps) in &declared {
        let Some(listed) = crate_deps(krate) else {
            continue; // lab & friends: unfiltered by design
        };
        let listed: BTreeSet<&str> = listed.iter().copied().collect();
        // A crate always sees itself.
        assert!(listed.contains(krate.as_str()), "{krate} missing itself");
        // Soundness: every declared dependency must be visible, or the
        // resolver would silently prune real call edges.
        for d in deps {
            assert!(
                listed.contains(d.as_str()),
                "crates/{krate}/Cargo.toml declares `{d}` but graph.rs::crate_deps(\"{krate}\") omits it — update the map"
            );
        }
        // No stale entries: everything listed must at least be reachable
        // through the declared dependency graph.
        let reach = closure(krate);
        for l in &listed {
            assert!(
                reach.contains(*l),
                "crate_deps(\"{krate}\") lists `{l}` but crates/{krate}/Cargo.toml's dependency closure cannot reach it — stale map entry"
            );
        }
    }
}

#[test]
fn machine_event_handlers_exist_and_call_into_proto() {
    let (_ws, g) = real_graph();
    let step = g
        .fns
        .iter()
        .position(|f| f.self_ty.as_deref() == Some("Machine") && f.name == "step" && !f.is_test)
        .expect("Machine::step in the symbol table");
    assert_eq!(g.fns[step].self_kind, SelfKind::RefMut);
    assert!(!g.calls_of[step].is_empty(), "Machine::step makes calls");
    // Cross-crate: some call from core's machine.rs resolves into proto.
    let into_proto = g.calls_of[step]
        .iter()
        .flat_map(|&c| &g.calls[c].callees)
        .any(|&callee| g.fns[callee].krate == "proto");
    assert!(into_proto, "core -> proto edges resolve");
}

#[test]
fn machine_reaches_every_mem_system_implementor() {
    // `self.system.sys().read(...)` goes through `dyn MemSystem`: the
    // resolver (no trait dispatch, by design) must land on ALL three
    // system implementations, not zero and not one.
    let (_ws, g) = real_graph();
    let read_impls: BTreeSet<&str> = g
        .fns
        .iter()
        .filter(|f| f.name == "read" && !f.is_test && f.krate == "proto")
        .filter_map(|f| f.self_ty.as_deref())
        .collect();
    for sys in ["AggSystem", "ComaSystem", "NumaSystem"] {
        assert!(read_impls.contains(sys), "{sys}::read in symbol table");
    }
    let reachable_read_tys: BTreeSet<&str> = g
        .calls
        .iter()
        .filter(|c| c.is_method && c.name == "read" && g.fns[c.caller].krate == "core")
        .flat_map(|c| &c.callees)
        .filter_map(|&i| g.fns[i].self_ty.as_deref())
        .collect();
    for sys in ["AggSystem", "ComaSystem", "NumaSystem"] {
        assert!(
            reachable_read_tys.contains(sys),
            "trait-object over-approximation reaches {sys}::read: {reachable_read_tys:?}"
        );
    }
}

#[test]
fn dependency_filter_keeps_lab_out_of_sim_call_edges() {
    let (_ws, g) = real_graph();
    for (i, f) in g.fns.iter().enumerate() {
        if !matches!(f.krate.as_str(), "engine" | "mem" | "proto" | "core") {
            continue;
        }
        for &c in &g.calls_of[i] {
            for &callee in &g.calls[c].callees {
                let k = &g.fns[callee].krate;
                assert!(
                    k != "lab" && k != "bench",
                    "{} resolved a call into tooling crate {k}: {:?}",
                    f.qual_name(),
                    g.calls[c]
                );
            }
        }
    }
}

#[test]
fn txn_finish_has_interprocedural_callers() {
    let (_ws, g) = real_graph();
    let finish = g
        .fns
        .iter()
        .position(|f| f.self_ty.as_deref() == Some("Txn") && f.name == "finish")
        .expect("Txn::finish in symbol table");
    assert_eq!(g.fns[finish].self_kind, SelfKind::Value, "finish consumes");
    let caller_crates: BTreeSet<&str> = g.callers_of[finish]
        .iter()
        .map(|&c| g.fns[c].krate.as_str())
        .collect();
    assert!(
        caller_crates.contains("proto"),
        "protocol walks finish transactions: {caller_crates:?}"
    );
}
