//! CLI driver: `cargo run -p pimdsm-lint [-- --root <dir>] [--list]`.
//!
//! Exits 0 when the workspace has zero unsuppressed violations, 1
//! otherwise (and 2 on usage/I/O errors). All rules are deny-level; the
//! only way to silence a finding is the inline
//! `// pimdsm-lint: allow(<rule>, "reason")` escape hatch.
//!
//! `--format json` swaps the human report for the stable
//! `pimdsm-lint-diagnostics-v1` document (CI uploads it as an artifact);
//! `--audit shared-state` skips the rules entirely and prints the
//! `pimdsm-lint-audit-v1` shared-state write inventory, the input
//! document for ROADMAP item 2's parallel engine.

use std::path::PathBuf;
use std::process::ExitCode;

use pimdsm_lint::{emit, find_workspace_root, graph, run_all, semantic, Workspace, RULES};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut json = false;
    let mut audit: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "--format requires `text` or `json` (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--audit" => match args.next().as_deref() {
                Some("shared-state") => audit = Some("shared-state".to_string()),
                other => {
                    eprintln!(
                        "--audit requires `shared-state` (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for (id, desc) in RULES {
                    println!("{id}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "pimdsm-lint: determinism & protocol-invariant static analysis\n\n\
                     USAGE: pimdsm-lint [--root <workspace-dir>] [--list] [--quiet]\n\
                            [--format text|json] [--audit shared-state]\n\n\
                     --root    workspace to scan (default: nearest [workspace] above cwd)\n\
                     --list    print the rule table and exit\n\
                     --quiet   suppress the per-finding lines, print only the summary\n\
                     --format  diagnostic output format: text (default) or the stable\n\
                               pimdsm-lint-diagnostics-v1 JSON document\n\
                     --audit   print an audit report instead of running the rules;\n\
                               `shared-state` emits the pimdsm-lint-audit-v1 JSON\n\
                               inventory of &mut paths from the engine event handlers"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate a [workspace] Cargo.toml; pass --root");
            return ExitCode::from(2);
        }
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(what) = audit {
        debug_assert_eq!(what, "shared-state");
        let graph = graph::CallGraph::build(&ws);
        print!("{}", semantic::shared_state_audit(&ws, &graph));
        return ExitCode::SUCCESS;
    }

    let diags = run_all(&ws);
    if json {
        print!("{}", emit::diagnostics_json(&ws, &diags));
        return if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if !quiet {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        println!(
            "pimdsm-lint: clean ({} files, {} rules)",
            ws.files.len(),
            RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("pimdsm-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
