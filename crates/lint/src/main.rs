//! CLI driver: `cargo run -p pimdsm-lint [-- --root <dir>] [--list]`.
//!
//! Exits 0 when the workspace has zero unsuppressed violations, 1
//! otherwise (and 2 on usage/I/O errors). All rules are deny-level; the
//! only way to silence a finding is the inline
//! `// pimdsm-lint: allow(<rule>, "reason")` escape hatch.

use std::path::PathBuf;
use std::process::ExitCode;

use pimdsm_lint::{find_workspace_root, run_all, Workspace, RULES};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list" => {
                for (id, desc) in RULES {
                    println!("{id}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "pimdsm-lint: determinism & protocol-invariant static analysis\n\n\
                     USAGE: pimdsm-lint [--root <workspace-dir>] [--list] [--quiet]\n\n\
                     --root   workspace to scan (default: nearest [workspace] above cwd)\n\
                     --list   print the rule table and exit\n\
                     --quiet  suppress the per-finding lines, print only the summary"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("could not locate a [workspace] Cargo.toml; pass --root");
            return ExitCode::from(2);
        }
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let diags = run_all(&ws);
    if !quiet {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        println!(
            "pimdsm-lint: clean ({} files, {} rules)",
            ws.files.len(),
            RULES.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("pimdsm-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
