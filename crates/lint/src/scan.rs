//! Lightweight structural model of one Rust source file.
//!
//! The analyzer does not parse Rust — it *masks* it. [`SourceFile::parse`]
//! produces a byte-for-byte copy of the source in which every comment and
//! every string/char-literal body is replaced by spaces (newlines kept),
//! so downstream rules can search for identifiers and match braces without
//! tripping over `"HashMap"` inside a string or a `{` inside a comment.
//! On top of the masked text it extracts just enough structure for the
//! rules: function bodies, `impl` blocks, struct fields, `#[cfg(test)]`
//! regions, string-literal spans, and inline allow-directive comments.

use std::collections::BTreeMap;
use std::path::PathBuf;

/// A recorded string literal: byte offset of the opening quote and the
/// raw (unescaped-as-written) contents between the quotes.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the opening `"` in the file.
    pub offset: usize,
    /// Literal contents, exactly as written (escapes not processed).
    pub value: String,
}

/// A `// pimdsm-lint: allow(RULE, "reason")` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-indexed line the directive comment sits on.
    pub line: usize,
    /// Rule id being suppressed, e.g. `D001`.
    pub rule: String,
    /// The justification string (may be empty if malformed).
    pub reason: String,
    /// Whether the directive's line holds only the comment, in which case
    /// it suppresses the *next* line instead of its own.
    pub own_line: bool,
}

/// Byte range of one function: `name`, and the `{}` body span
/// (exclusive of the braces themselves).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub start: usize,
    /// Byte offset just past the opening `{`.
    pub body_start: usize,
    /// Byte offset of the closing `}`.
    pub body_end: usize,
}

/// One `impl` block: the implementing type (last path segment, generics
/// stripped; for `impl Trait for T` this is `T`) and its body span.
#[derive(Debug, Clone)]
pub struct ImplSpan {
    /// Self type of the impl, e.g. `ProtoStats`.
    pub ty: String,
    /// Byte offset just past the opening `{`.
    pub body_start: usize,
    /// Byte offset of the closing `}`.
    pub body_end: usize,
}

/// A `pub struct` with named fields.
#[derive(Debug, Clone)]
pub struct StructSpan {
    /// Struct name.
    pub name: String,
    /// `pub` field names in declaration order.
    pub pub_fields: Vec<String>,
}

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Absolute path on disk.
    pub path: PathBuf,
    /// Workspace-relative path with forward slashes (used in diagnostics).
    pub rel: String,
    /// Original text.
    pub raw: String,
    /// Text with comments and literal bodies blanked.
    pub masked: String,
    /// Byte offsets of line starts (index 0 = line 1).
    line_starts: Vec<usize>,
    /// All string literals, in file order.
    pub strings: Vec<StrLit>,
    /// Allow directives, keyed by the line they *suppress*.
    pub allows: BTreeMap<usize, Vec<AllowDirective>>,
    /// Malformed allow directives (missing rule or empty reason).
    pub bad_allows: Vec<AllowDirective>,
    /// Byte ranges covered by `#[cfg(test)]` items (usually `mod tests`).
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Scans `raw`, producing the masked text and structural indexes.
    pub fn parse(path: PathBuf, rel: String, raw: String) -> SourceFile {
        let (masked, strings) = mask(&raw);
        let line_starts = line_starts(&raw);
        let mut f = SourceFile {
            path,
            rel,
            raw,
            masked,
            line_starts,
            strings,
            allows: BTreeMap::new(),
            bad_allows: Vec::new(),
            test_regions: Vec::new(),
        };
        f.collect_allows();
        f.test_regions = f.collect_test_regions();
        f
    }

    /// 1-indexed line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `offset` falls inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Whether a diagnostic for `rule` at `line` is suppressed by an
    /// allow directive on that line or on a directive-only line above it.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        let hit = |l: usize, require_own_line: bool| {
            self.allows.get(&l).is_some_and(|ds| {
                ds.iter()
                    .any(|d| d.rule == rule && (!require_own_line || d.own_line))
            })
        };
        hit(line, false) || (line > 1 && hit(line - 1, true))
    }

    /// Every function defined in the file (including nested/test ones).
    pub fn fns(&self) -> Vec<FnSpan> {
        let b = self.masked.as_bytes();
        let mut out = Vec::new();
        for start in find_keyword(&self.masked, "fn") {
            // Name follows the keyword (skip whitespace).
            let mut i = start + 2;
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            let name_start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            if i == name_start {
                continue; // `fn` in `Fn(..)` bounds never has a space+ident
            }
            let name = self.masked[name_start..i].to_string();
            // Body: first `{` at paren depth 0 after the signature.
            let mut depth = 0i32;
            let mut body_start = None;
            while i < b.len() {
                match b[i] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    b'{' if depth == 0 => {
                        body_start = Some(i + 1);
                        break;
                    }
                    b';' if depth == 0 => break, // trait method declaration
                    _ => {}
                }
                i += 1;
            }
            let Some(body_start) = body_start else {
                continue;
            };
            let Some(body_end) = match_brace(&self.masked, body_start - 1) else {
                continue;
            };
            out.push(FnSpan {
                name,
                start,
                body_start,
                body_end,
            });
        }
        out
    }

    /// Every `impl` block with its resolved self-type name.
    pub fn impls(&self) -> Vec<ImplSpan> {
        let b = self.masked.as_bytes();
        let mut out = Vec::new();
        for start in find_keyword(&self.masked, "impl") {
            let mut i = start + 4;
            // Skip generic parameters `<...>` directly after `impl`.
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            if i < b.len() && b[i] == b'<' {
                let mut angle = 0i32;
                while i < b.len() {
                    match b[i] {
                        b'<' => angle += 1,
                        b'>' => {
                            angle -= 1;
                            if angle == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            // Header runs to the opening `{` (angle-bracket aware so a
            // `Foo<Bar { .. }>` cannot occur; `where` clauses contain no
            // braces).
            let Some(open_rel) = self.masked[i..].find('{') else {
                continue;
            };
            let open = i + open_rel;
            let header = &self.masked[i..open];
            let ty_part = match header.rfind(" for ") {
                Some(p) => &header[p + 5..],
                None => header,
            };
            let ty_part = ty_part.split("where").next().unwrap_or(ty_part).trim();
            // Last path segment, generics stripped: `a::b::C<T>` -> `C`.
            let no_generics = ty_part.split('<').next().unwrap_or(ty_part).trim();
            let ty = no_generics
                .rsplit("::")
                .next()
                .unwrap_or(no_generics)
                .trim()
                .to_string();
            let Some(body_end) = match_brace(&self.masked, open) else {
                continue;
            };
            out.push(ImplSpan {
                ty,
                body_start: open + 1,
                body_end,
            });
        }
        out
    }

    /// Every `struct` with a braced body (any visibility), as
    /// `(name, body_start, body_end)` byte spans — the body is the text
    /// between the braces. Tuple and unit structs are skipped.
    pub fn struct_spans(&self) -> Vec<(String, usize, usize)> {
        let b = self.masked.as_bytes();
        let mut out = Vec::new();
        for start in find_keyword(&self.masked, "struct") {
            let mut i = start + 6;
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            let name_start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            let name = self.masked[name_start..i].to_string();
            if name.is_empty() {
                continue;
            }
            let mut open = None;
            let mut angle = 0i32;
            while i < b.len() {
                match b[i] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    b'(' | b';' if angle == 0 => break,
                    b'{' if angle == 0 => {
                        open = Some(i);
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            let Some(open) = open else { continue };
            let Some(close) = match_brace(&self.masked, open) else {
                continue;
            };
            out.push((name, open + 1, close));
        }
        out
    }

    /// Every `pub struct` with named fields, with its `pub` field names.
    pub fn pub_structs(&self) -> Vec<StructSpan> {
        let b = self.masked.as_bytes();
        let mut out = Vec::new();
        for start in find_keyword(&self.masked, "struct") {
            // Must itself be `pub` (look back over whitespace for `pub`).
            let before = self.masked[..start].trim_end();
            if !before.ends_with("pub") {
                continue;
            }
            let mut i = start + 6;
            while i < b.len() && (b[i] as char).is_whitespace() {
                i += 1;
            }
            let name_start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            let name = self.masked[name_start..i].to_string();
            if name.is_empty() {
                continue;
            }
            // Find `{` before any `;` or `(` (skip tuple/unit structs);
            // tolerate a generics list.
            let mut open = None;
            let mut angle = 0i32;
            while i < b.len() {
                match b[i] {
                    b'<' => angle += 1,
                    b'>' => angle -= 1,
                    b'(' | b';' if angle == 0 => break,
                    b'{' if angle == 0 => {
                        open = Some(i);
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
            let Some(open) = open else { continue };
            let Some(close) = match_brace(&self.masked, open) else {
                continue;
            };
            out.push(StructSpan {
                name,
                pub_fields: struct_fields(&self.masked[open + 1..close]),
            });
        }
        out
    }

    fn collect_allows(&mut self) {
        let mut off = 0usize;
        let raw = std::mem::take(&mut self.raw);
        for (idx, line_text) in raw.split('\n').enumerate() {
            let line = idx + 1;
            if let Some(pos) = line_text.find("pimdsm-lint:") {
                // The marker must live inside a line comment, and only
                // counts as a directive when an `allow(` follows — prose
                // mentions of the tool name are not directives.
                let in_comment = line_text[..pos].contains("//");
                let rest = &line_text[pos + "pimdsm-lint:".len()..];
                if in_comment && rest.trim_start().starts_with("allow(") {
                    let own_line = line_text.trim_start().starts_with("//");
                    match parse_allow(rest) {
                        Some((rule, reason)) if !reason.trim().is_empty() => {
                            let d = AllowDirective {
                                line,
                                rule,
                                reason,
                                own_line,
                            };
                            self.allows.entry(line).or_default().push(d);
                        }
                        other => {
                            let (rule, reason) = other.unwrap_or((String::new(), String::new()));
                            self.bad_allows.push(AllowDirective {
                                line,
                                rule,
                                reason,
                                own_line,
                            });
                        }
                    }
                }
            }
            off += line_text.len() + 1;
        }
        let _ = off;
        self.raw = raw;
    }

    /// `#[cfg(test)]` followed (over whitespace and further attributes)
    /// by a braced item marks that item's span as test-only.
    fn collect_test_regions(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut search = 0usize;
        while let Some(rel) = self.masked[search..].find("#[cfg(test)]") {
            let at = search + rel;
            let mut i = at + "#[cfg(test)]".len();
            let b = self.masked.as_bytes();
            // Skip whitespace and subsequent attributes.
            loop {
                while i < b.len() && (b[i] as char).is_whitespace() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'#' {
                    // Skip `#[...]`.
                    while i < b.len() && b[i] != b']' {
                        i += 1;
                    }
                    i += 1;
                } else {
                    break;
                }
            }
            // The guarded item runs to its closing brace (fn/mod/impl/…).
            if let Some(open_rel) = self.masked[i..].find('{') {
                let open = i + open_rel;
                if let Some(close) = match_brace(&self.masked, open) {
                    out.push((at, close + 1));
                    search = close + 1;
                    continue;
                }
            }
            search = at + 1;
        }
        out
    }
}

/// Parses ` allow(RULE, "reason")` (leading space optional). Returns the
/// rule id and reason; `None` when the shape is unrecognizable.
fn parse_allow(rest: &str) -> Option<(String, String)> {
    let rest = rest.trim_start();
    let body = rest.strip_prefix("allow(")?;
    let close = body.find(')')?;
    let inner = &body[..close];
    let (rule, reason) = match inner.find(',') {
        Some(c) => (&inner[..c], inner[c + 1..].trim()),
        None => (inner, ""),
    };
    let reason = reason.trim_matches('"').to_string();
    Some((rule.trim().to_string(), reason))
}

/// Field names of a struct body: `pub name: Type,` entries at depth 0.
fn struct_fields(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let b = body.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'{' | b'(' | b'[' | b'<' => depth += 1,
            b'}' | b')' | b']' | b'>' => depth -= 1,
            b'p' if depth == 0 && is_keyword_at(body, i, "pub") => {
                let mut j = i + 3;
                while j < b.len() && (b[j] as char).is_whitespace() {
                    j += 1;
                }
                let start = j;
                while j < b.len() && is_ident_char(b[j]) {
                    j += 1;
                }
                // A field is `pub name :` — `pub fn` etc. are not.
                let mut k = j;
                while k < b.len() && (b[k] as char).is_whitespace() {
                    k += 1;
                }
                if j > start && k < b.len() && b[k] == b':' {
                    out.push(body[start..j].to_string());
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Offsets of `word` appearing as a standalone keyword/identifier.
pub fn find_keyword(text: &str, word: &str) -> Vec<usize> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = text[search..].find(word) {
        let at = search + rel;
        let before_ok = at == 0 || !is_ident_char(b[at - 1]);
        let after = at + word.len();
        let after_ok = after >= b.len() || !is_ident_char(b[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        search = at + word.len();
    }
    out
}

/// Given the offset of a `{` in masked text, returns the offset of its
/// matching `}`.
pub fn match_brace(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    debug_assert_eq!(b[open], b'{');
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Given the offset of a `(` in masked text, returns the offset of its
/// matching `)`.
pub fn match_paren(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    debug_assert_eq!(b[open], b'(');
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Splits `args` (the text between a call's parentheses, masked) at
/// top-level commas, returning `(offset_in_args, text)` per argument.
pub fn split_args(args: &str) -> Vec<(usize, &str)> {
    let b = args.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push((start, &args[start..i]));
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < args.len() {
        out.push((start, &args[start..]));
    }
    out
}

pub fn is_ident_char(c: u8) -> bool {
    (c as char).is_alphanumeric() || c == b'_'
}

fn is_keyword_at(text: &str, at: usize, word: &str) -> bool {
    let b = text.as_bytes();
    if !text[at..].starts_with(word) {
        return false;
    }
    let before_ok = at == 0 || !is_ident_char(b[at - 1]);
    let after = at + word.len();
    before_ok && (after >= b.len() || !is_ident_char(b[after]))
}

fn line_starts(text: &str) -> Vec<usize> {
    let mut v = vec![0usize];
    for (i, c) in text.bytes().enumerate() {
        if c == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

/// Produces the masked copy of `raw` and the recorded string literals.
///
/// Comments (line and nested block) are blanked entirely; string, raw
/// string, byte string and char literal *bodies* are blanked but their
/// delimiters kept, so token boundaries survive. Newlines always survive,
/// keeping byte offsets and line numbers identical to the original.
fn mask(raw: &str) -> (String, Vec<StrLit>) {
    let b = raw.as_bytes();
    let n = b.len();
    let mut out = Vec::with_capacity(n);
    let mut strings = Vec::new();
    let mut i = 0usize;

    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };

    while i < n {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 0i32;
            while i < n {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (optionally b-prefixed).
        if (c == b'r' || (c == b'b' && i + 1 < n && b[i + 1] == b'r'))
            && looks_like_raw_string(b, i)
        {
            let mut j = i + if c == b'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // Copy prefix + opening quote.
            for &p in &b[i..=j] {
                out.push(p);
            }
            let body_start = j + 1;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            let mut k = body_start;
            while k < n && !b[k..].starts_with(&closer) {
                out.push(blank(b[k]));
                k += 1;
            }
            strings.push(StrLit {
                offset: j,
                value: raw[body_start..k].to_string(),
            });
            for &p in &b[k..(k + closer.len()).min(n)] {
                out.push(p);
            }
            i = (k + closer.len()).min(n);
            continue;
        }
        // Plain or byte string.
        if c == b'"' || (c == b'b' && i + 1 < n && b[i + 1] == b'"') {
            let q = if c == b'b' { i + 1 } else { i };
            if c == b'b' {
                out.push(b'b');
            }
            out.push(b'"');
            let mut k = q + 1;
            while k < n && b[k] != b'"' {
                if b[k] == b'\\' && k + 1 < n {
                    out.push(b' ');
                    out.push(blank(b[k + 1]));
                    k += 2;
                } else {
                    out.push(blank(b[k]));
                    k += 1;
                }
            }
            strings.push(StrLit {
                offset: q,
                value: raw[q + 1..k].to_string(),
            });
            if k < n {
                out.push(b'"');
                k += 1;
            }
            i = k;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let is_char = if i + 1 < n && b[i + 1] == b'\\' {
                true
            } else {
                // 'x' is a char; 'x<ident-char> is a lifetime.
                i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\''
            };
            if is_char {
                out.push(b'\'');
                let mut k = i + 1;
                if b[k] == b'\\' {
                    out.push(b' ');
                    out.push(b' ');
                    k += 2;
                    // Multi-char escapes (\u{...}, \x41).
                    while k < n && b[k] != b'\'' {
                        out.push(b' ');
                        k += 1;
                    }
                } else {
                    out.push(b' ');
                    k += 1;
                }
                if k < n {
                    out.push(b'\'');
                    k += 1;
                }
                i = k;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    (
        String::from_utf8(out).expect("masking preserves UTF-8 only at ASCII"),
        strings,
    )
}

/// Distinguishes `r"..."`/`r#"` raw strings from identifiers starting
/// with `r` (like `rel`) and from `r#raw_ident`.
fn looks_like_raw_string(b: &[u8], i: usize) -> bool {
    let mut j = i + if b[i] == b'b' { 2 } else { 1 };
    // Identifier chars before mean this `r` is inside a name — callers
    // only reach here at a token boundary, but be safe.
    if i > 0 && is_ident_char(b[i - 1]) {
        return false;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() {
        return false;
    }
    if b[j] == b'"' {
        return true;
    }
    // `r#ident` (raw identifier) has exactly one hash and no quote.
    let _ = hashes;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("/t.rs"), "t.rs".into(), src.to_string())
    }

    #[test]
    fn masking_blanks_comments_and_strings() {
        let f = file("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;");
        assert!(!f.masked.contains("HashMap"));
        assert!(f.raw.contains("HashMap"));
        assert_eq!(f.masked.len(), f.raw.len());
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].value, "HashMap");
    }

    #[test]
    fn masking_handles_escapes_and_chars_and_lifetimes() {
        let f = file(r#"let a = '"'; let b = "say \"hi\""; fn f<'x>(v: &'x str) {}"#);
        assert!(f.masked.contains("'x>"));
        assert_eq!(f.strings.len(), 1);
        assert_eq!(f.strings[0].value, "say \\\"hi\\\"");
        assert_eq!(f.fns().len(), 1);
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = file("let s = r#\"a { HashMap } b\"#; let t = r\"x\";");
        assert!(!f.masked.contains("HashMap"));
        assert_eq!(f.strings.len(), 2);
        assert_eq!(f.strings[1].value, "x");
    }

    #[test]
    fn fn_extraction_finds_bodies() {
        let f = file("fn alpha(x: u32) -> u32 { x + 1 }\nimpl T { fn beta(&self) { loop {} } }");
        let fns = f.fns();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "alpha");
        assert_eq!(fns[1].name, "beta");
        assert!(f.masked[fns[1].body_start..fns[1].body_end].contains("loop"));
    }

    #[test]
    fn impl_extraction_resolves_trait_impl_target() {
        let f = file(
            "impl pimdsm_obs::ToJson for ProtoStats { fn to_json(&self) {} }\nimpl<K: Ord> KeyedQueue<K> { }",
        );
        let imps = f.impls();
        assert_eq!(imps[0].ty, "ProtoStats");
        assert_eq!(imps[1].ty, "KeyedQueue");
    }

    #[test]
    fn struct_fields_extracted() {
        let f = file("pub struct S { pub a: u64, b: u32, pub c_d: Vec<(u8, u8)>, }\nstruct Priv { pub x: u8 }");
        let ss = f.pub_structs();
        assert_eq!(ss.len(), 1);
        assert_eq!(ss[0].pub_fields, vec!["a", "c_d"]);
    }

    #[test]
    fn cfg_test_regions_cover_mod_tests() {
        let f = file("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = 1; }\n}\n");
        assert_eq!(f.test_regions.len(), 1);
        let at = f.raw.find("let x").unwrap();
        assert!(f.in_test_region(at));
        assert!(!f.in_test_region(0));
    }

    #[test]
    fn allow_directives_parse_and_apply() {
        let f = file(
            "use foo; // pimdsm-lint: allow(D001, \"interned, never iterated\")\n// pimdsm-lint: allow(D002, \"bench only\")\nlet t = now();\nlet bad = 1; // pimdsm-lint: allow(D001)\n",
        );
        assert!(f.is_allowed("D001", 1));
        assert!(!f.is_allowed("D002", 1));
        assert!(f.is_allowed("D002", 3)); // own-line directive covers next line
        assert_eq!(f.bad_allows.len(), 1, "reason-less allow is malformed");
        assert_eq!(f.bad_allows[0].line, 4);
    }

    #[test]
    fn split_args_respects_nesting() {
        let args = "a, (b, c), [d, e], f(g, h)";
        let parts = split_args(args);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[1].1.trim(), "(b, c)");
        assert_eq!(parts[3].1.trim(), "f(g, h)");
    }
}
